//! The one-to-one determinism experiment (figure F5) as a test suite:
//! the optimised bit-packed core, in both evaluation strategies, the naive
//! golden model, and the chip runtime all produce bit-identical spike
//! rasters — and the relaxed-semantics ablation demonstrably diverges.

use brainsim::chip::{ChipBuilder, ChipConfig, TickSemantics};
use brainsim::core::{
    AxonTarget, AxonType, CoreBuilder, CoreOffset, Destination, EvalStrategy, NeurosynapticCore,
};
use brainsim::neuron::{Lfsr, NeuronConfig, Weight};
use brainsim::snn::golden::GoldenCore;

/// Builds a random core (and its golden twin) from a seed.
fn random_pair(seed: u32, strategy: EvalStrategy) -> (NeurosynapticCore, GoldenCore) {
    let axons = 48;
    let neurons = 48;
    let mut rng = Lfsr::new(seed);
    let mut builder = CoreBuilder::new(axons, neurons);
    let mut golden = GoldenCore::new(axons, neurons, seed.wrapping_mul(3));
    builder.seed(seed.wrapping_mul(3));
    builder.strategy(strategy);

    for a in 0..axons {
        let ty = AxonType::from_index((rng.next_u32() % 4) as usize).unwrap();
        builder.axon_type(a, ty).unwrap();
        golden.set_axon_type(a, ty);
    }
    for n in 0..neurons {
        let config = NeuronConfig::builder()
            .weight(
                AxonType::A0,
                Weight::new(3 + (rng.next_u32() % 5) as i32).unwrap(),
            )
            .weight(
                AxonType::A1,
                Weight::new((rng.next_u32() % 7) as i32).unwrap(),
            )
            .weight(
                AxonType::A2,
                Weight::new(-(2 + (rng.next_u32() % 4) as i32)).unwrap(),
            )
            .weight(AxonType::A3, Weight::new(-1).unwrap())
            .threshold(4 + rng.next_u32() % 12)
            .leak(((rng.next_u32() % 5) as i32) - 2)
            .leak_reversal(rng.next_u32().is_multiple_of(2))
            .negative_threshold(if rng.next_u32().is_multiple_of(2) {
                0
            } else {
                1 << 19
            })
            .build()
            .unwrap();
        builder
            .neuron(n, config.clone(), Destination::Disabled)
            .unwrap();
        golden.set_neuron(n, config);
        for a in 0..axons {
            let connected = rng.bernoulli_256(48);
            builder.synapse(a, n, connected).unwrap();
            golden.set_synapse(a, n, connected);
        }
    }
    (builder.build(), golden)
}

#[test]
fn optimized_core_is_bit_identical_to_golden_model() {
    for seed in 1..=8u32 {
        for strategy in [EvalStrategy::Dense, EvalStrategy::Sparse] {
            let (mut core, mut golden) = random_pair(seed, strategy);
            let mut stim = Lfsr::new(seed ^ 0xFFFF);
            for t in 0..300u64 {
                for a in 0..core.axons() {
                    if stim.bernoulli_256(32) {
                        core.deliver(a, t).unwrap();
                        golden.deliver(a, t);
                    }
                }
                assert_eq!(
                    core.tick(t),
                    golden.tick(),
                    "divergence at tick {t} (seed {seed}, {strategy:?})"
                );
            }
        }
    }
}

#[test]
fn dense_and_sparse_strategies_are_bit_identical_with_stochastic_modes() {
    // Stochastic synapse/leak/threshold all on: the canonical draw order
    // must make the strategies equal draw for draw.
    let build = |strategy| {
        let mut builder = CoreBuilder::new(24, 24);
        builder.seed(0xFEED);
        builder.strategy(strategy);
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::new(120).unwrap())
            .stochastic_synapse(AxonType::A0, true)
            .leak(40)
            .stochastic_leak(true)
            .threshold(3)
            .threshold_mask_bits(2)
            .build()
            .unwrap();
        for n in 0..24 {
            builder
                .neuron(n, config.clone(), Destination::Disabled)
                .unwrap();
            for a in 0..24 {
                builder.synapse(a, n, (a * 24 + n) % 3 != 0).unwrap();
            }
        }
        builder.build()
    };
    let mut dense = build(EvalStrategy::Dense);
    let mut sparse = build(EvalStrategy::Sparse);
    let mut stim = Lfsr::new(5);
    for t in 0..500u64 {
        for a in 0..24 {
            if stim.bernoulli_256(64) {
                dense.deliver(a, t).unwrap();
                sparse.deliver(a, t).unwrap();
            }
        }
        assert_eq!(dense.tick(t), sparse.tick(t), "tick {t}");
    }
    assert_eq!(dense.stats(), sparse.stats());
}

/// Builds a single-core chip whose neurons all report to output pads
/// (port = neuron index), with an explicitly seeded core so a [`GoldenCore`]
/// twin can be constructed, plus that twin.
fn golden_twin_chip(
    seed: u32,
    config_of: impl Fn(usize, &mut Lfsr) -> NeuronConfig,
) -> (brainsim::chip::Chip, GoldenCore) {
    use brainsim::chip::CoreScheduling;
    let axons = 24;
    let neurons = 24;
    let mut b = ChipBuilder::new(ChipConfig {
        width: 1,
        height: 1,
        core_axons: axons,
        core_neurons: neurons,
        scheduling: CoreScheduling::Active,
        ..ChipConfig::default()
    });
    let core_seed = seed.wrapping_mul(0x9E37);
    let mut golden = GoldenCore::new(axons, neurons, core_seed);
    let mut rng = Lfsr::new(seed);
    b.core_mut(0, 0).seed(core_seed);
    for a in 0..axons {
        let ty = AxonType::from_index((rng.next_u32() % 4) as usize).unwrap();
        b.core_mut(0, 0).axon_type(a, ty).unwrap();
        golden.set_axon_type(a, ty);
    }
    for n in 0..neurons {
        let config = config_of(n, &mut rng);
        b.core_mut(0, 0)
            .neuron(n, config.clone(), Destination::Output(n as u32))
            .unwrap();
        golden.set_neuron(n, config);
        for a in 0..axons {
            let connected = rng.bernoulli_256(48);
            b.core_mut(0, 0).synapse(a, n, connected).unwrap();
            golden.set_synapse(a, n, connected);
        }
    }
    (b.build().unwrap(), golden)
}

/// Drives chip and golden twin with identical bursty stimulus (idle gaps
/// give the active-core scheduler real skip windows) and asserts the spike
/// rasters match tick for tick. Returns an FNV-1a checksum of the raster.
fn assert_golden_twin_raster(
    chip: &mut brainsim::chip::Chip,
    golden: &mut GoldenCore,
    stim_seed: u32,
    ticks: u64,
) -> u64 {
    let mut stim = Lfsr::new(stim_seed);
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut fnv = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    };
    for t in 0..ticks {
        if t % 40 < 15 {
            for a in 0..chip.config().core_axons {
                if stim.bernoulli_256(40) {
                    chip.inject(0, 0, a, t).unwrap();
                    golden.deliver(a, t);
                }
            }
        }
        let summary = chip.tick();
        let expected: Vec<u32> = golden.tick().into_iter().map(u32::from).collect();
        assert_eq!(summary.outputs, expected, "raster divergence at tick {t}");
        fnv(t);
        for &p in &summary.outputs {
            fnv(p as u64);
        }
    }
    hash
}

#[test]
fn chip_with_active_scheduling_matches_golden_model_with_stochastic_modes() {
    // Stochastic synapses / leak / threshold keep the LFSR hot: the
    // quiescence predicate must refuse to skip (a skipped tick would lose
    // RNG draws and desynchronise from the reference), so the chip stays
    // draw-for-draw equal to the golden model, which is ticked every tick.
    for seed in 1..=6u32 {
        let (mut chip, mut golden) = golden_twin_chip(seed, |n, rng| {
            NeuronConfig::builder()
                .weight(
                    AxonType::A0,
                    Weight::new(60 + (rng.next_u32() % 64) as i32).unwrap(),
                )
                .weight(AxonType::A1, Weight::new(2).unwrap())
                .weight(AxonType::A2, Weight::new(-2).unwrap())
                .stochastic_synapse(AxonType::A0, n % 2 == 0)
                .threshold(3 + rng.next_u32() % 5)
                .threshold_mask_bits(if n % 3 == 0 { 2 } else { 0 })
                .leak(20)
                .stochastic_leak(n % 2 == 1)
                .build()
                .unwrap()
        });
        assert_golden_twin_raster(&mut chip, &mut golden, seed ^ 0xDEAD, 300);
    }
}

#[test]
fn chip_with_active_scheduling_matches_golden_model_across_idle_gaps() {
    // Deterministic neurons: the core genuinely goes quiescent between
    // bursts and is skipped, while the golden model is still evaluated
    // every tick — the skip must be observationally invisible.
    for seed in 1..=6u32 {
        let (mut chip, mut golden) = golden_twin_chip(seed, |_, rng| {
            NeuronConfig::builder()
                .weight(
                    AxonType::A0,
                    Weight::new(2 + (rng.next_u32() % 3) as i32).unwrap(),
                )
                .weight(AxonType::A1, Weight::new(1).unwrap())
                .weight(AxonType::A2, Weight::new(-1).unwrap())
                .threshold(2 + rng.next_u32() % 4)
                .leak(-1)
                .leak_reversal(true)
                .build()
                .unwrap()
        });
        assert_golden_twin_raster(&mut chip, &mut golden, seed ^ 0xBEEF, 300);
        // The skip actually happened: idle ticks evaluated zero cores.
        assert_eq!(
            chip.tick().cores_evaluated,
            0,
            "seed {seed}: chip never went idle"
        );
    }
}

#[test]
fn golden_twin_raster_checksum_is_pinned() {
    // Regression pin: the exact spike raster of a fixed stochastic
    // workload under active-core scheduling. Any change to LFSR draw
    // order, quiescence rules, or routing shows up here first.
    let (mut chip, mut golden) = golden_twin_chip(42, |n, rng| {
        NeuronConfig::builder()
            .weight(
                AxonType::A0,
                Weight::new(50 + (rng.next_u32() % 32) as i32).unwrap(),
            )
            .weight(AxonType::A1, Weight::new(3).unwrap())
            .stochastic_synapse(AxonType::A0, n % 2 == 0)
            .threshold(4 + rng.next_u32() % 4)
            .threshold_mask_bits(if n % 4 == 0 { 3 } else { 0 })
            .leak(15)
            .stochastic_leak(n % 3 == 0)
            .build()
            .unwrap()
    });
    let checksum = assert_golden_twin_raster(&mut chip, &mut golden, 0xF00D, 400);
    assert_eq!(
        checksum, 0x99C1_A5BE_6262_8473,
        "pinned raster checksum moved"
    );
}

/// A 1×n eastward relay chain chip.
fn relay_chain(n: usize, semantics: TickSemantics) -> brainsim::chip::Chip {
    let mut b = ChipBuilder::new(ChipConfig {
        width: n,
        height: 1,
        core_axons: 2,
        core_neurons: 2,
        semantics,
        ..ChipConfig::default()
    });
    let relay = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::new(1).unwrap())
        .threshold(1)
        .build()
        .unwrap();
    for x in 0..n {
        let dest = if x + 1 < n {
            Destination::Axon(AxonTarget {
                offset: CoreOffset::new(1, 0),
                axon: 0,
                delay: 1,
            })
        } else {
            Destination::Output(0)
        };
        b.core_mut(x, 0).neuron(0, relay.clone(), dest).unwrap();
        b.core_mut(x, 0).synapse(0, 0, true).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn deterministic_semantics_one_core_hop_per_tick() {
    let mut chip = relay_chain(6, TickSemantics::Deterministic);
    chip.inject(0, 0, 0, 0).unwrap();
    let (outputs, _) = chip.run(10);
    assert_eq!(outputs, vec![(5, 0)], "5 hops → output at tick 5");
}

#[test]
fn relaxed_ablation_breaks_tick_isolation() {
    // The ablation: with relaxed delivery the whole eastward chain rides
    // the sweep order and collapses into a single tick — order-dependent
    // behaviour the deterministic barrier exists to forbid.
    let mut chip = relay_chain(6, TickSemantics::Relaxed);
    chip.inject(0, 0, 0, 0).unwrap();
    let (outputs, _) = chip.run(10);
    assert_eq!(outputs, vec![(0, 0)]);
}

#[test]
fn chip_snapshot_resumes_identically() {
    // Cloning a chip mid-run is a full state snapshot (potentials,
    // schedulers, LFSRs, counters); both copies must continue identically.
    let mut chip = relay_chain(5, TickSemantics::Deterministic);
    for t in 0..10 {
        chip.inject(0, 0, 0, t).unwrap();
    }
    chip.run(4);
    let mut snapshot = chip.clone();
    let (a_out, a_spikes) = chip.run(12);
    let (b_out, b_spikes) = snapshot.run(12);
    assert_eq!(a_out, b_out);
    assert_eq!(a_spikes, b_spikes);
    assert_eq!(chip.census(), snapshot.census());
}

#[test]
fn chip_results_invariant_across_thread_counts() {
    let run = |threads| {
        let mut b = ChipBuilder::new(ChipConfig {
            width: 4,
            height: 4,
            core_axons: 16,
            core_neurons: 16,
            threads,
            ..ChipConfig::default()
        });
        let relay = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::new(1).unwrap())
            .threshold(2)
            .build()
            .unwrap();
        let mut rng = Lfsr::new(11);
        for y in 0..4 {
            for x in 0..4 {
                for n in 0..16usize {
                    let dx = (rng.next_u32() % 3) as i32 - 1;
                    let dy = (rng.next_u32() % 3) as i32 - 1;
                    let (tx, ty) = ((x as i32 + dx).clamp(0, 3), (y as i32 + dy).clamp(0, 3));
                    let dest = Destination::Axon(AxonTarget {
                        offset: CoreOffset::new(tx - x as i32, ty - y as i32),
                        axon: (rng.next_u32() % 16) as u16,
                        delay: 1 + (rng.next_u32() % 3) as u8,
                    });
                    b.core_mut(x, y).neuron(n, relay.clone(), dest).unwrap();
                    for a in 0..16 {
                        let bit = rng.bernoulli_256(64);
                        b.core_mut(x, y).synapse(a, n, bit).unwrap();
                    }
                }
            }
        }
        let mut chip = b.build().unwrap();
        let mut stim = Lfsr::new(77);
        let mut spike_trace = Vec::new();
        for t in 0..100u64 {
            for a in 0..16 {
                if stim.bernoulli_256(40) {
                    chip.inject(
                        (stim.next_u32() % 4) as usize,
                        (stim.next_u32() % 4) as usize,
                        a,
                        t,
                    )
                    .unwrap();
                }
            }
            spike_trace.push(chip.tick().spikes);
        }
        (spike_trace, chip.census())
    };
    let (trace1, census1) = run(1);
    let (trace4, census4) = run(4);
    assert_eq!(trace1, trace4);
    assert_eq!(census1, census4);
    assert!(trace1.iter().sum::<u64>() > 0, "workload must be active");
}
