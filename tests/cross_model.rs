//! Cross-model validation: the integer neuron's behaviour catalogue against
//! the Izhikevich floating-point reference — both models must exhibit the
//! same qualitative firing-pattern classes.

use brainsim::neuron::behavior;
use brainsim::snn::{IzhikevichNeuron, IzhikevichParams};

fn isis(raster: &[bool]) -> Vec<usize> {
    let times: Vec<usize> = raster
        .iter()
        .enumerate()
        .filter_map(|(t, &s)| s.then_some(t))
        .collect();
    times.windows(2).map(|w| w[1] - w[0]).collect()
}

#[test]
fn both_models_show_tonic_regularity() {
    // Integer model: the catalogue's tonic entry is CV ≈ 0 by its own check.
    let integer = behavior::tonic_spiking();
    assert!(integer.achieved);

    // Izhikevich RS under DC, discarding the adaptation transient, settles
    // to a near-constant ISI.
    let mut izh = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
    let raster = izh.run_dc(10.0, 800);
    let isis = isis(&raster);
    let tail = &isis[isis.len().saturating_sub(5)..];
    let mean = tail.iter().sum::<usize>() as f64 / tail.len() as f64;
    let spread = (tail.iter().max().unwrap() - tail.iter().min().unwrap()) as f64;
    assert!(
        spread / mean < 0.15,
        "settled ISIs should be near-constant: {tail:?}"
    );
}

#[test]
fn both_models_show_spike_frequency_adaptation() {
    let integer = behavior::spike_frequency_adaptation();
    assert!(integer.achieved, "{}", integer.metric);

    let mut izh = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
    let raster = izh.run_dc(10.0, 600);
    let isis = isis(&raster);
    assert!(
        isis.last().unwrap() > &isis[0],
        "Izhikevich RS must adapt: {isis:?}"
    );
}

#[test]
fn both_models_show_bursting() {
    let integer = behavior::tonic_bursting();
    assert!(integer.achieved, "{}", integer.metric);

    // Izhikevich chattering: short intra-burst ISIs and long inter-burst
    // gaps must coexist.
    let mut izh = IzhikevichNeuron::new(IzhikevichParams::chattering());
    let raster = izh.run_dc(10.0, 600);
    let isis = isis(&raster);
    let short = isis.iter().filter(|&&i| i <= 6).count();
    let long = isis.iter().filter(|&&i| i > 12).count();
    assert!(short >= 4 && long >= 2, "ISIs {isis:?}");
}

#[test]
fn both_models_show_class_one_rate_coding() {
    let integer = behavior::class_1_excitable();
    assert!(integer.achieved, "{}", integer.metric);

    // Izhikevich RS: firing rate strictly increases with drive.
    let rates: Vec<usize> = [4.0, 8.0, 14.0]
        .iter()
        .map(|&i| {
            let mut izh = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
            izh.run_dc(i, 500).iter().filter(|&&s| s).count()
        })
        .collect();
    assert!(rates[0] < rates[1] && rates[1] < rates[2], "{rates:?}");
}
