//! Differential proof that the batched many-chip backend is unobservable:
//! for every smoke corpus entry, every lane of a `ChipBatch` — each lane
//! consuming its own salted drive stream — produces the bit-identical
//! per-tick raster checksum and final event census of a solo `Chip` run
//! with the same seed, drive, and fault plan, at every Phase B worker
//! count, and lane 0 (the canonical stream) reproduces the entry's pinned
//! checksum. The force-scalar CI leg re-runs the suite with the fused
//! SWAR/SoA lane path compiled out, proving the solo-degraded batch walk
//! is equally faithful.
//!
//! Set `BRAINSIM_TEST_THREADS` to add an extra thread count to the matrix
//! (the CI batch-conformance job runs the suite with 1 and 8).

use brainsim::chip::{ChipBatch, TelemetryConfig};
use brainsim::faults::FaultPlan;
use brainsim_bench::corpus::{self, WorkloadDef};
use brainsim_bench::sweep;

/// The smoke subset, debug-trimmed exactly like `tests/conformance.rs`:
/// release CI covers every smoke entry, the default tier-1 run only the
/// 8×8 shapes.
fn smoke_defs() -> Vec<WorkloadDef> {
    corpus::corpus()
        .into_iter()
        .filter(|d| d.smoke && (!cfg!(debug_assertions) || d.cores() <= 64))
        .collect()
}

/// Thread counts under test: serial and a small pool, plus whatever the
/// CI matrix injects via `BRAINSIM_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2];
    if let Some(n) = std::env::var("BRAINSIM_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

#[test]
fn every_lane_matches_its_solo_twin_at_eight_lanes() {
    for def in smoke_defs() {
        let verified = sweep::verify_batch_workload(&def, 8)
            .unwrap_or_else(|e| panic!("batch conformance failure: {e}"));
        assert_eq!(
            Some(verified.lane_checksums[0]),
            def.checksum,
            "{}: lane 0 drifted from the pinned checksum",
            def.name
        );
        assert_eq!(verified.lane_checksums.len(), 8);
        // Salted drive streams must actually differ — identical lanes
        // would make the differential vacuous.
        assert!(
            verified.lane_checksums.windows(2).any(|w| w[0] != w[1]),
            "{}: all lanes produced identical runs",
            def.name
        );
    }
}

#[test]
fn lane_identity_is_thread_count_invariant() {
    // One representative entry per thread count keeps the suite
    // tier-1-sized; the 8-lane sweep above covers the whole smoke corpus.
    let def = smoke_defs().into_iter().next().expect("smoke corpus");
    for threads in thread_counts() {
        sweep::verify_batch_workload_threads(&def, 2, threads)
            .unwrap_or_else(|e| panic!("batch conformance failure at t{threads}: {e}"));
    }
}

#[test]
fn per_lane_fault_plans_diverge_without_breaking_identity() {
    // Distinct fault plans per lane: lane 0 clean, lane 1 crossbar-burning
    // synapse faults, lane 2 dead/stuck neurons + link drops. Every lane
    // must still equal a solo chip carrying the same plan and drive.
    let def = smoke_defs().into_iter().next().expect("smoke corpus");
    let plans: [Option<FaultPlan>; 3] = [
        None,
        Some(
            FaultPlan::new(u64::from(def.seed) ^ 0xD1F0)
                .with_synapse_stuck_one(0.03)
                .with_synapse_stuck_zero(0.03),
        ),
        Some(
            FaultPlan::new(u64::from(def.seed) ^ 0xD1F1)
                .with_dead_neuron(0.05)
                .with_stuck_neuron(0.01)
                .with_link_drop(0.05),
        ),
    ];

    let build = || {
        brainsim_bench::corpus::build_workload(
            &def,
            brainsim::core::EvalStrategy::Swar,
            brainsim::chip::CoreScheduling::Sweep,
            1,
        )
        .0
    };
    let proto = build();
    let mut batch = ChipBatch::new_replicas(&proto, plans.len()).expect("batch");
    let mut twins: Vec<brainsim::chip::Chip> = (0..plans.len()).map(|_| build()).collect();
    for (lane, plan) in plans.iter().enumerate() {
        if let Some(plan) = plan {
            batch.set_fault_plan_lane(lane, plan);
            twins[lane].set_fault_plan(plan);
        }
    }
    // Telemetry on one lane and its twin: projections must match too.
    batch
        .lane_mut(1)
        .enable_telemetry(TelemetryConfig::default());
    twins[1].enable_telemetry(TelemetryConfig::default());

    let mut noises: Vec<brainsim::neuron::Lfsr> = (0..plans.len())
        .map(|lane| brainsim::neuron::Lfsr::new(sweep::lane_drive_seed(&def, lane)))
        .collect();
    let mut twin_noises = noises.clone();
    let words = def.axons.div_ceil(64);
    let word_drive = |noise: &mut brainsim::neuron::Lfsr| -> Vec<u64> {
        (0..words)
            .map(|w| {
                let lanes = (def.axons - w * 64).min(64);
                let mut bits = 0u64;
                for b in 0..lanes {
                    bits |= u64::from(noise.bernoulli_256(def.drive_rate)) << b;
                }
                bits
            })
            .collect()
    };
    for _ in 0..def.ticks() {
        let t = batch.now();
        for lane in 0..plans.len() {
            for index in 0..def.structured() {
                let (x, y) = (index % def.width, index / def.width);
                for (w, bits) in word_drive(&mut noises[lane]).into_iter().enumerate() {
                    if bits != 0 {
                        batch.inject_word(lane, x, y, w, bits, t).expect("inject");
                    }
                }
                for (w, bits) in word_drive(&mut twin_noises[lane]).into_iter().enumerate() {
                    if bits != 0 {
                        twins[lane].inject_word(x, y, w, bits, t).expect("inject");
                    }
                }
            }
        }
        let summaries = batch.try_tick().expect("batch tick");
        for (lane, twin) in twins.iter_mut().enumerate() {
            assert_eq!(
                summaries[lane],
                twin.try_tick().expect("twin tick"),
                "lane {lane} at tick {t}"
            );
        }
    }
    assert!(batch.lane_diverged(1), "synapse faults must diverge lane 1");
    for (lane, twin) in twins.iter().enumerate() {
        assert_eq!(batch.lane(lane).census(), twin.census(), "lane {lane}");
        assert_eq!(
            batch.lane(lane).fault_stats(),
            twin.fault_stats(),
            "lane {lane}"
        );
        let (batch_tel, twin_tel) = (batch.lane(lane).telemetry(), twin.telemetry());
        assert_eq!(batch_tel.is_some(), twin_tel.is_some(), "lane {lane}");
        if let (Some(a), Some(b)) = (batch_tel, twin_tel) {
            let a: Vec<_> = a.records().cloned().collect();
            let b: Vec<_> = b.records().cloned().collect();
            assert_eq!(a, b, "lane {lane} telemetry records diverged");
        }
        assert_eq!(
            batch.checkpoint_lane(lane).to_bytes(),
            twin.checkpoint().to_bytes(),
            "lane {lane} full state diverged"
        );
    }
}
