//! Property-based tests (proptest) over the core data structures and
//! architectural invariants.

use brainsim::core::{
    AxonType, CoreBuilder, Crossbar, Destination, EvalStrategy, Scheduler, SwarKernel,
};
use brainsim::encoding::{PopulationCode, RateCode, TimeToSpikeCode};
use brainsim::neuron::{Lfsr, NegativeThresholdMode, Neuron, NeuronConfig, ResetMode, Weight};
use brainsim::neuron::{POTENTIAL_MAX, POTENTIAL_MIN};
use brainsim::noc::{MeshNoc, NocConfig, Packet};
use brainsim::snn::golden::GoldenCore;
use proptest::prelude::*;

fn arb_reset_mode() -> impl Strategy<Value = ResetMode> {
    prop_oneof![
        Just(ResetMode::Absolute),
        Just(ResetMode::Linear),
        Just(ResetMode::None),
    ]
}

fn arb_config() -> impl Strategy<Value = NeuronConfig> {
    (
        -256i32..=255,
        -256i32..=255,
        -64i32..=64,
        any::<bool>(),
        any::<bool>(),
        1u32..=4096,
        0u32..=8,
        prop_oneof![Just(0u32), Just(64), Just(1 << 19)],
        arb_reset_mode(),
        any::<bool>(),
    )
        .prop_map(
            |(w0, w3, leak, reversal, stoch_leak, threshold, mask, beta, reset, neg_reset)| {
                let mut b = NeuronConfig::builder();
                b.weight(AxonType::A0, Weight::new(w0).unwrap())
                    .weight(AxonType::A3, Weight::new(w3).unwrap())
                    .leak(leak)
                    .leak_reversal(reversal)
                    .stochastic_leak(stoch_leak)
                    .threshold(threshold)
                    .threshold_mask_bits(mask)
                    .negative_threshold(beta)
                    .negative_mode(if neg_reset {
                        NegativeThresholdMode::Reset
                    } else {
                        NegativeThresholdMode::Saturate
                    })
                    .reset_mode(reset)
                    .reset_potential(0);
                b.build().unwrap()
            },
        )
}

proptest! {
    /// The membrane potential never escapes the representable range, for
    /// any configuration and any input pattern.
    #[test]
    fn potential_always_in_bounds(
        config in arb_config(),
        seed in 1u32..u32::MAX,
        events in proptest::collection::vec(0u8..4, 0..200),
    ) {
        let mut neuron = Neuron::new(config);
        let mut rng = Lfsr::new(seed);
        for chunk in events.chunks(4) {
            for &ty in chunk {
                neuron.integrate(AxonType::from_index(ty as usize).unwrap(), &mut rng);
                prop_assert!(neuron.potential() >= POTENTIAL_MIN);
                prop_assert!(neuron.potential() <= POTENTIAL_MAX);
            }
            let out = neuron.finish_tick(&mut rng);
            prop_assert!(out.potential() >= POTENTIAL_MIN);
            prop_assert!(out.potential() <= POTENTIAL_MAX);
        }
    }

    /// Absolute reset always lands exactly on the reset potential.
    #[test]
    fn absolute_reset_lands_on_reset_potential(
        threshold in 1u32..1000,
        weight in 1i32..=255,
        seed in 1u32..u32::MAX,
    ) {
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::new(weight).unwrap())
            .threshold(threshold)
            .build()
            .unwrap();
        let mut neuron = Neuron::new(config);
        let mut rng = Lfsr::new(seed);
        for _ in 0..2000 {
            neuron.integrate(AxonType::A0, &mut rng);
            if neuron.finish_tick(&mut rng).fired() {
                prop_assert_eq!(neuron.potential(), 0);
                return Ok(());
            }
        }
        // weight ≥ 1 and threshold ≤ 1000 always fires within 1000 ticks.
        prop_assert!(false, "never fired");
    }

    /// Linear reset preserves charge: potential after = before − threshold.
    #[test]
    fn linear_reset_preserves_surplus(
        threshold in 1u32..500,
        surplus in 0i32..500,
    ) {
        let config = NeuronConfig::builder()
            .threshold(threshold)
            .reset_mode(ResetMode::Linear)
            .build()
            .unwrap();
        let mut neuron = Neuron::with_potential(config, threshold as i32 + surplus);
        let mut rng = Lfsr::new(1);
        let out = neuron.finish_tick(&mut rng);
        prop_assert!(out.fired());
        prop_assert_eq!(out.potential(), surplus);
    }

    /// Crossbar set/get round-trips and the row iterator reports exactly
    /// the set bits, in order.
    #[test]
    fn crossbar_row_iterator_is_exact(
        axons in 1usize..64,
        neurons in 1usize..200,
        bits in proptest::collection::vec((0usize..64, 0usize..200), 0..100),
    ) {
        let mut xb = Crossbar::new(axons, neurons);
        let mut expected = std::collections::BTreeSet::new();
        for (a, n) in bits {
            let (a, n) = (a % axons, n % neurons);
            xb.set(a, n, true);
            expected.insert((a, n));
        }
        prop_assert_eq!(xb.synapse_count(), expected.len());
        for a in 0..axons {
            let row: Vec<usize> = xb.row_neurons(a).collect();
            let want: Vec<usize> = expected
                .iter()
                .filter(|&&(ea, _)| ea == a)
                .map(|&(_, n)| n)
                .collect();
            prop_assert_eq!(row, want);
        }
    }

    /// Scheduler take() returns exactly what was scheduled for that tick.
    #[test]
    fn scheduler_delivers_exactly_once(
        axons in 1usize..300,
        events in proptest::collection::vec((0usize..300, 0u64..16), 0..64),
    ) {
        let mut s = Scheduler::new(axons);
        let mut expected: Vec<std::collections::BTreeSet<usize>> =
            vec![Default::default(); 16];
        for (a, t) in events {
            let a = a % axons;
            s.schedule(a, t);
            expected[t as usize].insert(a);
        }
        for t in 0..16u64 {
            let got: std::collections::BTreeSet<usize> =
                bitmap_to_indices(&s.take(t)).into_iter().collect();
            prop_assert_eq!(&got, &expected[t as usize], "tick {}", t);
        }
        prop_assert!(s.is_idle());
    }

    /// Packet wire format round-trips for every legal field combination.
    #[test]
    fn packet_codec_round_trip(
        dx in -2048i16..=2047,
        dy in -2048i16..=2047,
        axon in 0u16..=1023,
        slot in 0u8..=15,
    ) {
        let p = Packet::new(dx, dy, axon, slot).unwrap();
        let mut buf = bytes::BytesMut::new();
        p.encode(&mut buf);
        let q = Packet::decode(&mut buf).unwrap();
        prop_assert_eq!(p, q);
    }

    /// NoC conservation: every injected packet is delivered exactly once,
    /// at its destination, with hops = Manhattan distance; nothing is lost.
    #[test]
    fn noc_conserves_packets(
        targets in proptest::collection::vec((0usize..5, 0usize..5), 1..24),
    ) {
        let mut noc = MeshNoc::new(NocConfig { width: 5, height: 5, fifo_capacity: 64, ..NocConfig::default() });
        let mut sent = Vec::new();
        for (i, &(tx, ty)) in targets.iter().enumerate() {
            let (sx, sy) = (i % 5, (i / 5) % 5);
            let packet = Packet::new(
                tx as i16 - sx as i16,
                ty as i16 - sy as i16,
                i as u16 % 256,
                0,
            ).unwrap();
            if noc.inject(sx, sy, packet).is_ok() {
                sent.push(((sx, sy), (tx, ty)));
            }
        }
        let deliveries = noc.drain(10_000);
        prop_assert_eq!(deliveries.len(), sent.len());
        prop_assert_eq!(noc.buffered(), 0);
        let total_hops: u64 = sent
            .iter()
            .map(|&((sx, sy), (tx, ty))| (sx.abs_diff(tx) + sy.abs_diff(ty)) as u64)
            .sum();
        prop_assert_eq!(noc.stats().total_hops, total_hops);
    }

    /// Rate-code round trip error is bounded by half a quantum.
    #[test]
    fn rate_code_error_bound(value in 0.0f64..=1.0, window in 1usize..200) {
        let code = RateCode::new(window);
        let decoded = code.decode(&code.encode(value));
        prop_assert!((decoded - value).abs() <= 0.5 / window as f64 + 1e-12);
    }

    /// Time-to-spike code round trip error is bounded by one latency step.
    #[test]
    fn latency_code_error_bound(value in 0.0f64..=1.0, window in 2usize..200) {
        let code = TimeToSpikeCode::new(window);
        let decoded = code.decode(&code.encode(value));
        prop_assert!((decoded - value).abs() <= 0.5 / (window - 1) as f64 + 1e-12);
    }

    /// Population code round trip is within one channel spacing.
    #[test]
    fn population_code_error_bound(
        value in 0.0f64..=1.0,
        channels in 2usize..16,
    ) {
        let code = PopulationCode::new(channels, 64);
        let decoded = code.decode(&code.encode(value));
        let spacing = 1.0 / (channels - 1) as f64;
        prop_assert!((decoded - value).abs() <= spacing);
    }

    /// The bit-sliced SWAR kernel computes exactly the per-neuron per-type
    /// counts of the scalar row walk, for random crossbars, axon-type
    /// assignments and active-axon bitmaps — including ragged
    /// (non-multiple-of-64) widths and the all-axons-active edge — in both
    /// accumulation orders (rows ascending as the sparse event loop visits
    /// them, and descending, exercising the order-independence the dense
    /// column scan implicitly relies on).
    #[test]
    fn swar_kernel_counts_match_scalar_reference(
        axons in 1usize..80,
        neurons in 1usize..200,
        types in proptest::collection::vec(0usize..4, 80),
        bits in proptest::collection::vec((0usize..80, 0usize..200), 0..300),
        active_mask in proptest::collection::vec(any::<bool>(), 80),
        all_active in any::<bool>(),
    ) {
        let mut xb = Crossbar::new(axons, neurons);
        for (a, n) in bits {
            xb.set(a % axons, n % neurons, true);
        }
        let active: Vec<usize> = (0..axons)
            .filter(|&a| all_active || active_mask[a])
            .collect();
        // Scalar reference: per-bit row walk, the sparse strategy's loop.
        let mut want = vec![0u32; neurons * 4];
        for &a in &active {
            for n in xb.row_neurons(a) {
                want[n * 4 + types[a]] += 1;
            }
        }
        let mut kernel = SwarKernel::new(neurons);
        let mut got = vec![0u32; neurons * 4];
        for &a in &active {
            kernel.accumulate_row(types[a], xb.row_words(a));
        }
        kernel.flush_into(&mut got);
        prop_assert_eq!(&got, &want, "ascending row order");
        // Same kernel instance reversed: planes must have fully cleared.
        got.fill(0);
        for &a in active.iter().rev() {
            kernel.accumulate_row(types[a], xb.row_words(a));
        }
        kernel.flush_into(&mut got);
        prop_assert_eq!(&got, &want, "descending row order");
    }

    /// Random cores: the optimised implementation (all three strategies)
    /// agrees with the naive golden model, event for event.
    #[test]
    fn random_core_matches_golden(
        seed in 1u32..100_000,
        density in 8u32..128,
        drive in 8u32..128,
    ) {
        let axons = 16;
        let neurons = 16;
        let mut rng = Lfsr::new(seed);
        let mut dense = CoreBuilder::new(axons, neurons);
        let mut sparse = CoreBuilder::new(axons, neurons);
        let mut swar = CoreBuilder::new(axons, neurons);
        let mut golden = GoldenCore::new(axons, neurons, seed ^ 0xABCD);
        dense.seed(seed ^ 0xABCD).strategy(EvalStrategy::Dense);
        sparse.seed(seed ^ 0xABCD).strategy(EvalStrategy::Sparse);
        swar.seed(seed ^ 0xABCD).strategy(EvalStrategy::Swar);
        for a in 0..axons {
            let ty = AxonType::from_index((rng.next_u32() % 4) as usize).unwrap();
            dense.axon_type(a, ty).unwrap();
            sparse.axon_type(a, ty).unwrap();
            swar.axon_type(a, ty).unwrap();
            golden.set_axon_type(a, ty);
        }
        for n in 0..neurons {
            let config = NeuronConfig::builder()
                .weight(AxonType::A0, Weight::new((rng.next_u32() % 8) as i32).unwrap())
                .weight(AxonType::A1, Weight::new(2).unwrap())
                .weight(AxonType::A2, Weight::new(-3).unwrap())
                .weight(AxonType::A3, Weight::new(-(1 + (rng.next_u32() % 4) as i32)).unwrap())
                .threshold(1 + rng.next_u32() % 10)
                .leak(((rng.next_u32() % 3) as i32) - 1)
                .negative_threshold(0)
                .build()
                .unwrap();
            dense.neuron(n, config.clone(), Destination::Disabled).unwrap();
            sparse.neuron(n, config.clone(), Destination::Disabled).unwrap();
            swar.neuron(n, config.clone(), Destination::Disabled).unwrap();
            golden.set_neuron(n, config);
            for a in 0..axons {
                let connected = rng.bernoulli_256(density);
                dense.synapse(a, n, connected).unwrap();
                sparse.synapse(a, n, connected).unwrap();
                swar.synapse(a, n, connected).unwrap();
                golden.set_synapse(a, n, connected);
            }
        }
        let mut dense = dense.build();
        let mut sparse = sparse.build();
        let mut swar = swar.build();
        let mut stim = Lfsr::new(seed ^ 0x1234);
        for t in 0..60u64 {
            for a in 0..axons {
                if stim.bernoulli_256(drive) {
                    dense.deliver(a, t).unwrap();
                    sparse.deliver(a, t).unwrap();
                    swar.deliver(a, t).unwrap();
                    golden.deliver(a, t);
                }
            }
            let d = dense.tick(t);
            let s = sparse.tick(t);
            let w = swar.tick(t);
            let g = golden.tick();
            prop_assert_eq!(&d, &s, "dense vs sparse at tick {}", t);
            prop_assert_eq!(&d, &w, "dense vs swar at tick {}", t);
            prop_assert_eq!(&d, &g, "core vs golden at tick {}", t);
        }
        prop_assert_eq!(dense.stats(), swar.stats(), "stats identical across strategies");
    }

    /// The LFSR stream is deterministic and never hits the zero state.
    #[test]
    fn lfsr_deterministic_nonzero(seed in 0u32..u32::MAX) {
        let mut a = Lfsr::new(seed);
        let mut b = Lfsr::new(seed);
        for _ in 0..64 {
            let x = a.next_u32();
            prop_assert_eq!(x, b.next_u32());
            prop_assert_ne!(x, 0);
        }
    }

    /// Checkpoint round trip: for random chips under each of the three
    /// fault-plan shapes, run a random number of ticks, serialize through
    /// the wire format, restore, and demand (a) the restored chip's own
    /// checkpoint is the identical snapshot and (b) both chips produce
    /// bit-identical ticks from there on.
    #[test]
    fn checkpoint_round_trips_for_random_chips(
        seed in 1u32..100_000,
        plan_index in 0usize..3,
        warmup in 0u64..40,
    ) {
        let mut chip = random_snapshot_chip(seed);
        if let Some(plan) = snapshot_fault_plans(seed as u64)[plan_index] {
            chip.set_fault_plan(&plan);
        }
        chip.enable_telemetry(brainsim::telemetry::TelemetryConfig::default());
        let mut stim = Lfsr::new(seed ^ 0xF00D);
        for t in 0..warmup {
            for a in 0..SNAP_FANIN {
                if stim.bernoulli_256(64) {
                    chip.inject(
                        (stim.next_u32() as usize) % SNAP_GRID,
                        (stim.next_u32() as usize) % SNAP_GRID,
                        a,
                        t,
                    ).unwrap();
                }
            }
            chip.tick();
        }
        let snap = chip.checkpoint();
        let bytes = snap.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes);
        prop_assert_eq!(&decoded, &Ok(snap.clone()));
        let mut restored = Chip::restore(decoded.unwrap()).unwrap();
        prop_assert_eq!(&restored.checkpoint().cores, &snap.cores);
        for _ in 0..10 {
            prop_assert_eq!(restored.tick(), chip.tick());
        }
        prop_assert_eq!(restored.census(), chip.census());
        prop_assert_eq!(restored.fault_stats(), chip.fault_stats());
    }

    /// Adversarial corruption — single bit flips: every one-bit change to a
    /// valid snapshot yields a typed error somewhere in the
    /// decode-then-restore pipeline. Nothing panics, nothing is silently
    /// accepted.
    #[test]
    fn snapshot_bit_flips_yield_typed_errors(
        seed in 1u32..10_000,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let bytes = sample_snapshot_bytes(seed);
        let mut corrupt = bytes.clone();
        let index = ((byte_frac * corrupt.len() as f64) as usize).min(corrupt.len() - 1);
        corrupt[index] ^= 1 << bit;
        match Snapshot::from_bytes(&corrupt) {
            Err(_) => {} // typed rejection at the container/codec layer
            Ok(snap) => {
                // A re-tagged frame can decode structurally; the semantic
                // validation in restore must then refuse it.
                prop_assert!(
                    Chip::restore(snap).is_err(),
                    "bit {} of byte {} flipped unnoticed", bit, index
                );
            }
        }
    }

    /// Adversarial corruption — truncation: every proper prefix of a valid
    /// snapshot is rejected with a typed error.
    #[test]
    fn snapshot_truncations_yield_typed_errors(
        seed in 1u32..10_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = sample_snapshot_bytes(seed);
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        prop_assert!(Snapshot::from_bytes(&bytes[..cut]).is_err());
    }

    /// Adversarial corruption — section swaps: exchanging the tags of two
    /// frames leaves every CRC intact but cross-wires the payloads; the
    /// typed codecs must reject the result.
    #[test]
    fn snapshot_section_swaps_yield_typed_errors(seed in 1u32..10_000) {
        let bytes = sample_snapshot_bytes(seed);
        // Walk the frames and swap the first two section tags in place.
        let mut corrupt = bytes.clone();
        let mut offsets = Vec::new();
        let mut at = 12usize;
        while at + 16 <= corrupt.len() && offsets.len() < 2 {
            offsets.push(at);
            let len = u64::from_le_bytes(corrupt[at + 4..at + 12].try_into().unwrap());
            at += 16 + len as usize;
        }
        prop_assert_eq!(offsets.len(), 2);
        let (a, b) = (offsets[0], offsets[1]);
        for i in 0..4 {
            corrupt.swap(a + i, b + i);
        }
        let verdict = Snapshot::from_bytes(&corrupt).map(Chip::restore);
        prop_assert!(
            !matches!(verdict, Ok(Ok(_))),
            "cross-wired sections were accepted"
        );
    }

    /// Totality: `Snapshot::from_bytes` never panics on arbitrary input,
    /// with or without a plausible header grafted on.
    #[test]
    fn snapshot_decode_is_total(
        noise in proptest::collection::vec(any::<u8>(), 0..256),
        with_header in any::<bool>(),
    ) {
        let mut bytes = Vec::new();
        if with_header {
            bytes.extend_from_slice(&brainsim::snapshot::MAGIC);
            bytes.extend_from_slice(&brainsim::snapshot::VERSION.to_le_bytes());
        }
        bytes.extend_from_slice(&noise);
        let _ = Snapshot::from_bytes(&bytes); // must return, never panic
    }
}

use brainsim::chip::{Chip, ChipBuilder, ChipConfig, Snapshot};
use brainsim::core::{AxonTarget, CoreOffset};
use brainsim::faults::FaultPlan;

const SNAP_GRID: usize = 3;
const SNAP_FANIN: usize = 8;

/// A small random recurrent chip for the snapshot properties: the
/// `parallel_equivalence` recipe scaled down to keep proptest cases fast.
fn random_snapshot_chip(seed: u32) -> Chip {
    let mut b = ChipBuilder::new(ChipConfig {
        width: SNAP_GRID,
        height: SNAP_GRID,
        core_axons: SNAP_FANIN,
        core_neurons: SNAP_FANIN,
        seed,
        ..ChipConfig::default()
    });
    let mut rng = Lfsr::new(seed);
    for y in 0..SNAP_GRID {
        for x in 0..SNAP_GRID {
            for n in 0..SNAP_FANIN {
                let config = NeuronConfig::builder()
                    .weight(
                        AxonType::A0,
                        Weight::new(1 + (rng.next_u32() % 3) as i32).unwrap(),
                    )
                    .weight(AxonType::A1, Weight::new(-1).unwrap())
                    .threshold(1 + rng.next_u32() % 4)
                    .leak(if rng.bernoulli_256(64) { -1 } else { 0 })
                    .leak_reversal(true)
                    .build()
                    .unwrap();
                let dest = if n == 0 {
                    Destination::Output((y * SNAP_GRID + x) as u32)
                } else {
                    let dx = (rng.next_u32() % 3) as i32 - 1;
                    let dy = (rng.next_u32() % 3) as i32 - 1;
                    let tx = (x as i32 + dx).clamp(0, SNAP_GRID as i32 - 1);
                    let ty = (y as i32 + dy).clamp(0, SNAP_GRID as i32 - 1);
                    Destination::Axon(AxonTarget {
                        offset: CoreOffset::new(tx - x as i32, ty - y as i32),
                        axon: (rng.next_u32() as usize % SNAP_FANIN) as u16,
                        delay: 1 + (rng.next_u32() % 3) as u8,
                    })
                };
                b.core_mut(x, y).neuron(n, config, dest).unwrap();
                for a in 0..SNAP_FANIN {
                    let bit = rng.bernoulli_256(56);
                    b.core_mut(x, y).synapse(a, n, bit).unwrap();
                }
            }
        }
    }
    b.build().unwrap()
}

/// The three-plan corpus from the equivalence suite: benign, link chaos,
/// structural damage.
fn snapshot_fault_plans(seed: u64) -> [Option<FaultPlan>; 3] {
    [
        None,
        Some(
            FaultPlan::new(seed)
                .with_link_drop(0.15)
                .with_link_corrupt(0.2),
        ),
        Some(
            FaultPlan::new(seed ^ 0x5A5A)
                .with_link_delay(0.3, 2)
                .with_core_dropout(0.1)
                .with_stuck_neuron(0.02)
                .with_dead_neuron(0.05),
        ),
    ]
}

/// Serialized snapshot of a warmed-up random chip (with a fault plan and
/// telemetry, so every optional section is present) for the corruption
/// properties.
fn sample_snapshot_bytes(seed: u32) -> Vec<u8> {
    let mut chip = random_snapshot_chip(seed);
    chip.set_fault_plan(&snapshot_fault_plans(seed as u64)[1].unwrap());
    chip.enable_telemetry(brainsim::telemetry::TelemetryConfig::default());
    let mut stim = Lfsr::new(seed ^ 0xF00D);
    for t in 0..8 {
        for a in 0..SNAP_FANIN {
            if stim.bernoulli_256(96) {
                chip.inject(
                    (stim.next_u32() as usize) % SNAP_GRID,
                    (stim.next_u32() as usize) % SNAP_GRID,
                    a,
                    t,
                )
                .unwrap();
            }
        }
        chip.tick();
    }
    chip.checkpoint().to_bytes()
}

fn bitmap_to_indices(bitmap: &[u64]) -> Vec<usize> {
    let mut out = Vec::new();
    for (wi, &word) in bitmap.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            out.push(wi * 64 + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Barometer corpus generator (crates/bench): determinism and the NeMo-style
// 80/20 connectivity-split invariant. The corpus is the workload source for
// both the benchmark barometer and the differential suites, so its generator
// must be byte-deterministic per seed and honest about its stated topology.
// ---------------------------------------------------------------------------

use brainsim::chip::CoreScheduling;
use brainsim_bench::corpus::{build_workload, FaultOverlay, WorkloadDef};
use brainsim_bench::sweep::{run_variant, Variant};

/// A randomized corpus-shaped definition, small enough to build and run
/// many times per property.
fn arb_workload_def() -> impl Strategy<Value = WorkloadDef> {
    (
        1u32..=u32::MAX,
        2usize..=4,
        2usize..=4,
        prop_oneof![Just(16usize), Just(64)],
        8u32..=96,
        64u32..=230,
        8u32..=128,
        prop_oneof![
            Just(FaultOverlay::None),
            Just(FaultOverlay::LinkChaos),
            Just(FaultOverlay::Structural)
        ],
    )
        .prop_map(
            |(seed, width, height, size, density, intra, drive_rate, overlay)| WorkloadDef {
                name: "prop",
                seed,
                width,
                height,
                axons: size,
                neurons: size,
                density,
                intra,
                drive_rate,
                island: None,
                warmup: 2,
                measure: 8,
                overlay,
                smoke: true,
                batch: false,
                check_factor: 1.25,
                checksum: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same `WorkloadDef` always expands to the byte-identical network
    /// (checkpoint bytes) and, driven by its seeded stimulus, the identical
    /// census checksum — the property that makes a pinned corpus entry a
    /// meaningful cross-variant contract.
    #[test]
    fn corpus_generator_is_deterministic(def in arb_workload_def()) {
        let variant = Variant {
            strategy: EvalStrategy::Swar,
            scheduling: CoreScheduling::Sweep,
            threads: 1,
            telemetry: false,
        };
        let (a, stats_a) = build_workload(&def, variant.strategy, variant.scheduling, 1);
        let (b, stats_b) = build_workload(&def, variant.strategy, variant.scheduling, 1);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(a.checkpoint().to_bytes(), b.checkpoint().to_bytes());
        let run_a = run_variant(&def, &variant);
        let run_b = run_variant(&def, &variant);
        prop_assert_eq!(run_a.checksum, run_b.checksum);
        prop_assert_eq!(run_a.census, run_b.census);
    }

    /// The generated forward edges respect the def's declared intra/inter
    /// split: the measured intra-core fraction tracks `intra/256` (the
    /// corpus default 205/256 ≈ 80/20), and every neuron except the one
    /// output pad per structured core carries exactly one forward edge.
    #[test]
    fn corpus_connectivity_split_matches_declaration(def in arb_workload_def()) {
        let (_, stats) =
            build_workload(&def, EvalStrategy::Swar, CoreScheduling::Sweep, 1);
        let cores = (def.width * def.height) as u64;
        let edges = stats.intra_edges + stats.inter_edges;
        prop_assert_eq!(stats.output_neurons, cores);
        prop_assert_eq!(edges + cores, cores * def.neurons as u64);
        let measured = stats.intra_edges as f64 / edges as f64;
        let declared = f64::from(def.intra) / 256.0;
        prop_assert!(
            (measured - declared).abs() < 0.1,
            "intra fraction {} vs declared {} over {} edges",
            measured,
            declared,
            edges
        );
    }
}

use brainsim::chip::ChipBatch;
use brainsim_bench::sweep::lane_drive_seed;

/// One tick's Bernoulli drive words for one core, drawn in ascending axon
/// order from `noise` — the corpus drive protocol.
fn drive_words(noise: &mut Lfsr, axons: usize, rate: u32) -> Vec<u64> {
    (0..axons.div_ceil(64))
        .map(|w| {
            let lanes = (axons - w * 64).min(64);
            let mut bits = 0u64;
            for b in 0..lanes {
                bits |= u64::from(noise.bernoulli_256(rate)) << b;
            }
            bits
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random corpus-shaped chips, any lane count, and any fault
    /// overlay — plus one lane carrying an extra crossbar-burning plan of
    /// its own — every `ChipBatch` lane is bit-identical to a solo chip
    /// with the same seed, drive, and plans: per-tick summaries, final
    /// census, fault statistics, and full checkpoint bytes. Midway, every
    /// lane is round-tripped through `checkpoint_lane`/`restore_lane` and
    /// every twin through `checkpoint`/`restore`, which must neither
    /// break lockstep nor open any lane-vs-twin gap. (Both sides restore
    /// because a restore re-arms the link injector from the retained —
    /// i.e. last-applied — plan; a lane that stacked a second plan over
    /// the overlay must shed the overlay's link faults exactly as its
    /// solo twin does.)
    #[test]
    fn batched_lanes_are_bit_identical_to_solo_twins(
        def in arb_workload_def(),
        lanes in prop_oneof![Just(2usize), Just(3), Just(8)],
    ) {
        let (mut proto, _) =
            build_workload(&def, EvalStrategy::Swar, CoreScheduling::Sweep, 1);
        if let Some(plan) = def.fault_plan() {
            proto.set_fault_plan(&plan);
        }
        let mut batch = ChipBatch::new_replicas(&proto, lanes)
            .expect("lane count in 1..=64");
        let mut twins: Vec<Chip> = vec![proto.clone(); lanes];
        // The last lane additionally burns its own synapse faults — the
        // divergence case that must fall back to the solo path unfused.
        let extra = FaultPlan::new(u64::from(def.seed) ^ 0x0BAD_CAB1E)
            .with_synapse_stuck_one(0.02)
            .with_synapse_stuck_zero(0.02);
        batch.set_fault_plan_lane(lanes - 1, &extra);
        twins[lanes - 1].set_fault_plan(&extra);

        let mut noises: Vec<Lfsr> = (0..lanes)
            .map(|lane| Lfsr::new(lane_drive_seed(&def, lane)))
            .collect();
        let mut twin_noises = noises.clone();
        for tick in 0..def.ticks() {
            if tick == def.ticks() / 2 {
                for (lane, twin) in twins.iter_mut().enumerate() {
                    let snap = batch.checkpoint_lane(lane);
                    prop_assert!(batch.restore_lane(lane, snap).is_ok());
                    let twin_snap = twin.checkpoint();
                    *twin = Chip::restore(twin_snap).expect("twin restores");
                }
            }
            let t = batch.now();
            for lane in 0..lanes {
                for index in 0..def.structured() {
                    let (x, y) = (index % def.width, index / def.width);
                    for (w, bits) in
                        drive_words(&mut noises[lane], def.axons, def.drive_rate)
                            .into_iter()
                            .enumerate()
                    {
                        if bits != 0 {
                            batch.inject_word(lane, x, y, w, bits, t).expect("inject");
                        }
                    }
                    for (w, bits) in
                        drive_words(&mut twin_noises[lane], def.axons, def.drive_rate)
                            .into_iter()
                            .enumerate()
                    {
                        if bits != 0 {
                            twins[lane].inject_word(x, y, w, bits, t).expect("inject");
                        }
                    }
                }
            }
            let summaries = batch.try_tick().expect("batch tick");
            for (lane, twin) in twins.iter_mut().enumerate() {
                let solo = twin.try_tick().expect("twin tick");
                prop_assert_eq!(&summaries[lane], &solo, "lane {} tick {}", lane, t);
            }
        }
        for (lane, twin) in twins.iter().enumerate() {
            prop_assert_eq!(batch.lane(lane).census(), twin.census());
            prop_assert_eq!(batch.lane(lane).fault_stats(), twin.fault_stats());
            prop_assert_eq!(
                batch.checkpoint_lane(lane).to_bytes(),
                twin.checkpoint().to_bytes(),
                "lane {} full state diverged from its solo twin",
                lane
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Sparse residency (crates/core + chip): the copy-on-write dormant-core,
// arena-backed, quiescence-skipping memory layout is an optimisation, never
// semantics. A chip built sparse must be bit-identical — per-tick summaries,
// final census, fault statistics, telemetry, checkpoint bytes — to a twin of
// the same network built with every compression path defeated, across
// schedulers, thread counts, fault overlays, and a mid-run restore.
// ---------------------------------------------------------------------------

use brainsim_bench::corpus::build_workload_dense;

/// A corpus-shaped definition with a small structured island, so the grid
/// has genuinely dormant bulk cores for the sparse build to compress.
fn arb_residency_def() -> impl Strategy<Value = WorkloadDef> {
    (arb_workload_def(), 1usize..=4).prop_map(|(mut def, island)| {
        def.island = Some(island.min(def.width * def.height));
        def
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sparse-resident chips are bit-identical to their densified twins.
    /// `build_workload_dense` replays the identical RNG stream but defeats
    /// every storage-compression path, so any observable gap between the
    /// two runs is a residency bug, not a network difference.
    #[test]
    fn sparse_residency_is_bit_identical_to_dense_layout(
        def in arb_residency_def(),
        scheduling in prop_oneof![Just(CoreScheduling::Sweep), Just(CoreScheduling::Active)],
        threads in prop_oneof![Just(1usize), Just(8)],
        telemetry in any::<bool>(),
    ) {
        let (mut sparse, stats_s) =
            build_workload(&def, EvalStrategy::Swar, scheduling, threads);
        let (mut dense, stats_d) =
            build_workload_dense(&def, EvalStrategy::Swar, scheduling, threads);
        prop_assert_eq!(stats_s, stats_d);

        // The twins genuinely differ in residency: the sparse build keeps
        // its bulk cores dormant, the dense build materialises every core.
        let structured = def.structured();
        if structured < def.cores() {
            let (x, y) = (structured % def.width, structured / def.width);
            prop_assert!(sparse.core(x, y).unwrap().is_dormant());
        }
        for index in 0..def.cores() {
            let (x, y) = (index % def.width, index / def.width);
            prop_assert!(!dense.core(x, y).unwrap().is_dormant(), "core {}", index);
        }

        // Same logical machine before anything runs.
        prop_assert_eq!(sparse.checkpoint().to_bytes(), dense.checkpoint().to_bytes());

        if let Some(plan) = def.fault_plan() {
            sparse.set_fault_plan(&plan);
            dense.set_fault_plan(&plan);
        }
        if telemetry {
            sparse.enable_telemetry(brainsim::telemetry::TelemetryConfig::default());
            dense.enable_telemetry(brainsim::telemetry::TelemetryConfig::default());
        }
        let mut noise_s = Lfsr::new(lane_drive_seed(&def, 0));
        let mut noise_d = noise_s.clone();
        for tick in 0..def.ticks() {
            if tick == def.ticks() / 2 {
                // Mid-run: full-state equality, then restore both and keep
                // going — the restore path must not depend on residency.
                let snap_s = sparse.checkpoint();
                let snap_d = dense.checkpoint();
                prop_assert_eq!(snap_s.to_bytes(), snap_d.to_bytes());
                sparse = Chip::restore(snap_s).expect("sparse twin restores");
                dense = Chip::restore(snap_d).expect("dense twin restores");
            }
            let t = sparse.now();
            for index in 0..structured {
                let (x, y) = (index % def.width, index / def.width);
                for (w, bits) in drive_words(&mut noise_s, def.axons, def.drive_rate)
                    .into_iter()
                    .enumerate()
                {
                    if bits != 0 {
                        sparse.inject_word(x, y, w, bits, t).expect("inject");
                    }
                }
                for (w, bits) in drive_words(&mut noise_d, def.axons, def.drive_rate)
                    .into_iter()
                    .enumerate()
                {
                    if bits != 0 {
                        dense.inject_word(x, y, w, bits, t).expect("inject");
                    }
                }
            }
            let s = sparse.try_tick().expect("sparse tick");
            let d = dense.try_tick().expect("dense tick");
            prop_assert_eq!(&s, &d, "summaries diverged at tick {}", t);
        }
        prop_assert_eq!(sparse.census(), dense.census());
        prop_assert_eq!(sparse.fault_stats(), dense.fault_stats());
        prop_assert_eq!(
            sparse.checkpoint().to_bytes(),
            dense.checkpoint().to_bytes(),
            "full state diverged between sparse and dense layouts"
        );
    }
}
