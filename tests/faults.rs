//! Fault-injection invariants across the chip, NoC and application layers.
//!
//! The contract under test: a `FaultPlan` is *deterministic in its seed*
//! (same seed ⇒ bit-identical rasters and fault statistics), *transparent
//! at rate zero* (a benign plan leaves the simulation bit-identical to no
//! plan at all), and *total-failure safe* (a 100%-fault chip completes its
//! run gracefully instead of panicking).

use brainsim::chip::{Chip, ChipBuilder, ChipConfig};
use brainsim::core::Destination;
use brainsim::faults::{FaultInjector, FaultPlan, FaultStats};
use brainsim::neuron::{AxonType, NeuronConfig, Weight};
use brainsim::noc::{MeshNoc, NocConfig, Packet};
use proptest::prelude::*;

/// A `side × side` grid of relay cores: every core's neuron 0 forwards
/// east (wrapping rows) and the last core drives output port 7.
fn relay_grid(side: usize) -> Chip {
    use brainsim::core::{AxonTarget, CoreOffset};
    let mut b = ChipBuilder::new(ChipConfig {
        width: side,
        height: side,
        core_axons: 2,
        core_neurons: 2,
        ..ChipConfig::default()
    });
    let relay = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(1))
        .threshold(1)
        .build()
        .expect("relay config is valid");
    for y in 0..side {
        for x in 0..side {
            let dest = if x + 1 < side {
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(1, 0),
                    axon: 0,
                    delay: 1,
                })
            } else if y + 1 < side {
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(-(side as i32 - 1), 1),
                    axon: 0,
                    delay: 1,
                })
            } else {
                Destination::Output(7)
            };
            b.core_mut(x, y)
                .neuron(0, relay.clone(), dest)
                .expect("neuron fits");
            b.core_mut(x, y).synapse(0, 0, true).expect("synapse fits");
        }
    }
    b.build().expect("relay grid builds")
}

/// Drives `ticks` ticks with a fixed stimulus and returns the full
/// observable record: output raster, per-tick spike counts, fault totals.
fn drive(chip: &mut Chip, ticks: u64) -> (Vec<(u64, u32)>, Vec<u64>, FaultStats) {
    let mut outputs = Vec::new();
    let mut spikes = Vec::new();
    for t in 0..ticks {
        if t % 3 == 0 {
            chip.inject(0, 0, 0, t).expect("stimulus axon exists");
        }
        let summary = chip.tick();
        spikes.push(summary.spikes);
        outputs.extend(summary.outputs.iter().map(|&p| (t, p)));
    }
    (outputs, spikes, chip.fault_stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical seeds reproduce identical spike rasters and identical
    /// fault statistics, whatever the rates.
    #[test]
    fn same_seed_reproduces_raster_and_stats(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.6,
        corrupt in 0.0f64..0.3,
        dead in 0.0f64..0.4,
    ) {
        let plan = FaultPlan::new(seed)
            .with_link_drop(drop)
            .with_link_corrupt(corrupt)
            .with_dead_neuron(dead);
        let mut a = relay_grid(3);
        let mut b = relay_grid(3);
        a.set_fault_plan(&plan);
        b.set_fault_plan(&plan);
        prop_assert_eq!(drive(&mut a, 24), drive(&mut b, 24));
    }

    /// A plan with every rate at zero is bit-identical to running with no
    /// injector at all — the zero-cost default really is zero-cost.
    #[test]
    fn zero_rate_plan_is_transparent(seed in any::<u64>()) {
        let mut faulted = relay_grid(3);
        faulted.set_fault_plan(&FaultPlan::new(seed));
        let mut clean = relay_grid(3);
        let f = drive(&mut faulted, 24);
        let c = drive(&mut clean, 24);
        prop_assert_eq!(&f, &c);
        prop_assert!(f.2.is_empty(), "no fault may ever be counted: {:?}", f.2);
        prop_assert_eq!(faulted.census(), clean.census());
    }

    /// Different seeds at a mid fault rate diverge (sanity: the seed is
    /// actually feeding the decisions).
    #[test]
    fn different_seeds_diverge(seed in 0u64..1_000_000) {
        let run = |s: u64| {
            let mut chip = relay_grid(3);
            chip.set_fault_plan(&FaultPlan::new(s).with_link_drop(0.5));
            drive(&mut chip, 24)
        };
        prop_assert_ne!(run(seed), run(seed.wrapping_add(1)));
    }

    /// The NoC layer obeys the same seed-determinism contract.
    #[test]
    fn noc_fault_pattern_is_seed_deterministic(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.8,
    ) {
        let run = || {
            let mut noc = MeshNoc::new(NocConfig {
                width: 4,
                height: 4,
                ..NocConfig::default()
            });
            noc.set_fault_injector(FaultInjector::new(
                &FaultPlan::new(seed).with_link_drop(drop),
            ));
            let mut delivered: Vec<(usize, usize, u16)> = Vec::new();
            for step in 0..8i16 {
                let _ = noc.inject(
                    (step % 4) as usize,
                    0,
                    Packet::new(3 - step % 4, 3, 0, 0).expect("on-mesh route"),
                );
                delivered.extend(noc.cycle().into_iter().map(|d| (d.x, d.y, d.packet.axon)));
            }
            delivered.extend(noc.drain(40).into_iter().map(|d| (d.x, d.y, d.packet.axon)));
            delivered.sort_unstable();
            (delivered, *noc.stats())
        };
        prop_assert_eq!(run(), run());
    }
}

/// Acceptance check: a chip whose every link is faulted still completes
/// `Chip::run` without panicking — outputs are empty, every launched spike
/// is accounted as dropped.
#[test]
fn fully_faulted_chip_completes_gracefully() {
    let mut chip = relay_grid(4);
    chip.set_fault_plan(&FaultPlan::new(99).with_link_drop(1.0));
    for t in 0..8 {
        chip.inject(0, 0, 0, t).expect("stimulus axon exists");
    }
    let (outputs, spikes) = chip.run(20);
    assert!(outputs.is_empty(), "all traffic must be dropped");
    assert_eq!(spikes, 8, "only the stimulated core fires");
    let stats = chip.fault_stats();
    assert_eq!(stats.packets_dropped, 8);
    assert_eq!(chip.census().packets_dropped, 8);
}

/// Structural faults survive `reset` (defective silicon stays defective),
/// while event-level counters clear.
#[test]
fn reset_keeps_structural_faults() {
    let mut chip = relay_grid(3);
    chip.set_fault_plan(&FaultPlan::new(5).with_dead_neuron(0.5).with_link_drop(1.0));
    let before = chip.fault_stats();
    assert!(
        before.neurons_dead > 0,
        "a 50% rate over 18 neurons must hit"
    );
    chip.inject(0, 0, 0, 0).expect("stimulus axon exists");
    chip.run(6);
    chip.reset();
    let after = chip.fault_stats();
    assert_eq!(after.neurons_dead, before.neurons_dead);
    assert_eq!(after.packets_dropped, 0);
}
