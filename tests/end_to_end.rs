//! Cross-crate integration tests: the full stack from corelet description
//! through compilation to chip execution, checked against the interpreter
//! oracle and the encoding layer.

use brainsim::compiler::{compile, interp::Interpreter, CompileOptions};
use brainsim::corelet::{connectors, Corelet, NodeRef};
use brainsim::encoding::{PopulationCode, RateCode};
use brainsim::energy::EnergyModel;
use brainsim::neuron::{NeuronConfig, ResetMode};

fn threshold(t: u32) -> NeuronConfig {
    NeuronConfig::builder().threshold(t).build().unwrap()
}

#[test]
fn rate_division_through_the_whole_stack() {
    // A rate divider (threshold 4, linear reset) compiled to the chip must
    // produce exactly in/4 output spikes for a deterministic rate input.
    let mut corelet = Corelet::new("divider", 1);
    let divider = NeuronConfig::builder()
        .threshold(4)
        .reset_mode(ResetMode::Linear)
        .build()
        .unwrap();
    let n = corelet.add_neuron(divider);
    corelet.connect(NodeRef::Input(0), n, 1, 1).unwrap();
    corelet.mark_output(n).unwrap();

    let mut compiled = compile(corelet.network(), &CompileOptions::default()).unwrap();
    let code = RateCode::new(64);
    let train = code.encode(1.0); // spike every tick
    let raster = compiled.run(70, |t| {
        if (t as usize) < train.len() && train[t as usize] {
            vec![0]
        } else {
            Vec::new()
        }
    });
    let outputs = raster.iter().filter(|r| r[0]).count();
    assert_eq!(outputs, 16, "64 input spikes / threshold 4");
}

#[test]
fn population_code_round_trip_through_chip() {
    // Encode a value with a population code, pass each channel through a
    // relay on the chip, decode from the output rasters.
    let channels = 5;
    let window = 32;
    let mut corelet = Corelet::new("pop-relay", channels);
    for c in 0..channels {
        let n = corelet.add_neuron(threshold(1));
        corelet.connect(NodeRef::Input(c), n, 1, 1).unwrap();
        corelet.mark_output(n).unwrap();
    }
    let mut compiled = compile(corelet.network(), &CompileOptions::default()).unwrap();

    let code = PopulationCode::new(channels, window);
    for value in [0.0, 0.25, 0.5, 0.8, 1.0] {
        compiled.reset();
        let trains = code.encode(value);
        let raster = compiled.run(window as u64 + 2, |t| {
            (0..channels)
                .filter(|&c| (t as usize) < window && trains[c][t as usize])
                .collect()
        });
        // Re-assemble per-channel output trains (shifted by 1 tick of relay
        // latency; drop the first tick and take `window` ticks).
        let decoded_trains: Vec<Vec<bool>> = (0..channels)
            .map(|c| (1..=window).map(|t| raster[t][c]).collect())
            .collect();
        let decoded = code.decode(&decoded_trains);
        assert!(
            (decoded - value).abs() < 0.08,
            "value {value} decoded as {decoded}"
        );
    }
}

#[test]
fn recurrent_network_matches_interpreter_for_long_runs() {
    let mut corelet = Corelet::new("recurrent", 2);
    let pop = corelet.add_population(threshold(4), 18);
    let pres: Vec<NodeRef> = pop.iter().map(|&p| NodeRef::Neuron(p)).collect();
    connectors::random(&mut corelet, &pres, &pop, 3, 2, 48, 1234).unwrap();
    corelet.connect(NodeRef::Input(0), pop[0], 4, 1).unwrap();
    corelet.connect(NodeRef::Input(1), pop[9], 4, 1).unwrap();
    // Only output neurons without fan-out report at exact ticks; find two
    // sinks by adding dedicated readout neurons.
    let r1 = corelet.add_neuron(threshold(1));
    let r2 = corelet.add_neuron(threshold(1));
    corelet.connect(NodeRef::Neuron(pop[3]), r1, 1, 2).unwrap();
    corelet.connect(NodeRef::Neuron(pop[14]), r2, 1, 2).unwrap();
    corelet.mark_output(r1).unwrap();
    corelet.mark_output(r2).unwrap();

    let options = CompileOptions {
        core_axons: 32,
        core_neurons: 12,
        relay_reserve: 4,
        anneal_iters: 300,
        ..CompileOptions::default()
    };
    let stim = |t: u64| match t % 7 {
        0 => vec![0],
        3 => vec![1],
        5 => vec![0, 1],
        _ => Vec::new(),
    };
    let mut compiled = compile(corelet.network(), &options).unwrap();
    let chip_raster = compiled.run(200, stim);
    let mut oracle = Interpreter::new(corelet.network(), 1);
    let oracle_raster = oracle.run(200, stim);
    assert_eq!(chip_raster, oracle_raster);
    assert!(
        chip_raster.iter().any(|r| r[0] || r[1]),
        "network should produce some output"
    );
}

#[test]
fn aer_record_and_replay_round_trip() {
    use brainsim::chip::trace::OutputTrace;
    use brainsim::encoding::aer;

    // Record a run's outputs as AER, encode to the wire format, decode,
    // and replay the stream as stimulus into a second network — the
    // recorded and replayed rasters must line up exactly (shifted by the
    // relay latency).
    let mut producer = Corelet::new("producer", 1);
    let n = producer.add_neuron(threshold(2));
    producer.connect(NodeRef::Input(0), n, 1, 1).unwrap();
    producer.mark_output(n).unwrap();
    let mut compiled = compile(producer.network(), &CompileOptions::default()).unwrap();

    let mut trace = OutputTrace::new();
    for t in 0..40u64 {
        if t % 3 != 2 {
            compiled.inject(0, t).unwrap();
        }
        let fired = compiled.tick();
        if fired[0] {
            trace.record(&brainsim::chip::TickSummary {
                tick: t,
                spikes: 1,
                outputs: vec![0],
                faults: Default::default(),
                cores_evaluated: 1,
            });
        }
    }
    assert!(
        trace.len() >= 8,
        "producer must spike: {} events",
        trace.len()
    );

    // Wire round trip.
    let events: Vec<aer::AerEvent> = trace
        .events()
        .iter()
        .map(|&(tick, port)| aer::AerEvent { tick, port })
        .collect();
    let mut buf = bytes::BytesMut::new();
    aer::encode(&events, &mut buf).unwrap();
    let decoded = aer::decode(&mut buf).unwrap();
    assert_eq!(decoded, events);

    // Replay into a relay; its output must reproduce the stream 1 tick late.
    let mut relay = Corelet::new("replay", 1);
    let r = relay.add_neuron(threshold(1));
    relay.connect(NodeRef::Input(0), r, 1, 1).unwrap();
    relay.mark_output(r).unwrap();
    let mut replayed = compile(relay.network(), &CompileOptions::default()).unwrap();
    let raster = replayed.run(45, |t| {
        if decoded.iter().any(|e| e.tick == t) {
            vec![0]
        } else {
            Vec::new()
        }
    });
    let replay_ticks: Vec<u64> = raster
        .iter()
        .enumerate()
        .filter_map(|(t, out)| out[0].then_some(t as u64))
        .collect();
    let expected: Vec<u64> = decoded.iter().map(|e| e.tick + 1).collect();
    assert_eq!(replay_ticks, expected);
}

#[test]
fn energy_census_scales_with_activity() {
    let build = || {
        let mut corelet = Corelet::new("act", 1);
        let pop = corelet.add_population(threshold(1), 16);
        for &n in &pop {
            corelet.connect(NodeRef::Input(0), n, 1, 1).unwrap();
        }
        compile(corelet.network(), &CompileOptions::default()).unwrap()
    };
    let mut quiet = build();
    quiet.run(100, |_| Vec::new());
    let mut busy = build();
    busy.run(100, |t| if t % 2 == 0 { vec![0] } else { Vec::new() });

    let model = EnergyModel::default();
    let quiet_report = model.report(&quiet.chip().census());
    let busy_report = model.report(&busy.chip().census());
    // A quiet chip still pays the per-tick neuron (leak/threshold) sweep,
    // but no synaptic energy; activity adds the event-linear part.
    assert_eq!(quiet.chip().census().synaptic_events, 0);
    assert!(busy_report.active_energy_j > 1.5 * quiet_report.active_energy_j);
    assert_eq!(quiet_report.static_mw, busy_report.static_mw);
    // 50 input spikes × 16 synapses.
    assert_eq!(busy.chip().census().synaptic_events, 800);
}

#[test]
fn library_corelets_compile_and_run_on_chip() {
    use brainsim::corelet::library;
    // Compose: split the input two ways, delay one branch by 5, AND the
    // branches — the composite only fires when the delayed and direct
    // copies coincide, which a single pulse cannot achieve, but a pulse
    // pair spaced 5 apart can (delay-tuned coincidence).
    let mut top = Corelet::new("compose-on-chip", 1);
    let split = library::splitter(2);
    let outs = top.embed(&split, &[NodeRef::Input(0)]).unwrap();
    let delayed = library::delay_line(5).unwrap();
    let d = top.embed(&delayed, &[NodeRef::Neuron(outs[0])]).unwrap();
    let gate = library::coincidence(2);
    let g = top
        .embed(&gate, &[NodeRef::Neuron(d[0]), NodeRef::Neuron(outs[1])])
        .unwrap();
    top.mark_output(g[0]).unwrap();

    let mut compiled = compile(top.network(), &CompileOptions::default()).unwrap();
    // Single pulse: no output. Pulse pair spaced 5: the delayed copy of the
    // first pulse coincides with the direct copy of the second.
    let raster = compiled.run(40, |t| {
        if t == 3 || t == 8 || t == 25 {
            vec![0]
        } else {
            vec![]
        }
    });
    let fired: Vec<usize> = raster
        .iter()
        .enumerate()
        .filter_map(|(t, r)| r[0].then_some(t))
        .collect();
    // Chain: input@8 → split@9 (direct copy), input@3 → split@4 → delay@9
    // → gate sees both at 10, fires @10.
    assert_eq!(fired, vec![10]);

    // Compare against the interpreter oracle too.
    let mut oracle = Interpreter::new(top.network(), 1);
    let oracle_raster = oracle.run(40, |t| {
        if t == 3 || t == 8 || t == 25 {
            vec![0]
        } else {
            vec![]
        }
    });
    assert_eq!(raster, oracle_raster);
}

#[test]
fn winner_take_all_on_chip() {
    use brainsim::corelet::library;
    let wta = library::winner_take_all(4, 4, 8);
    let mut compiled = compile(wta.network(), &CompileOptions::default()).unwrap();
    // Channel 2 gets the strongest drive.
    let raster = compiled.run(80, |t| {
        let mut active = vec![2];
        if t % 3 == 0 {
            active.extend([0, 1, 3]);
        }
        active
    });
    let counts: Vec<usize> = (0..4)
        .map(|p| raster.iter().filter(|r| r[p]).count())
        .collect();
    let winner = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap();
    assert_eq!(winner, 2, "counts {counts:?}");
    assert!(counts[2] >= 2 * counts[0].max(counts[1]).max(counts[3]).max(1));
}

#[test]
fn multi_chip_scale_compilation() {
    // A network large enough to need a grid of cores: 400 neurons on
    // 64-neuron cores.
    let mut corelet = Corelet::new("large", 8);
    let pop = corelet.add_population(threshold(2), 400);
    for (i, &n) in pop.iter().enumerate() {
        corelet.connect(NodeRef::Input(i % 8), n, 2, 1).unwrap();
        if i >= 1 {
            corelet
                .connect(NodeRef::Neuron(pop[i - 1]), n, 2, 2)
                .unwrap();
        }
    }
    corelet.mark_output(pop[399]).unwrap();
    let options = CompileOptions {
        core_axons: 64,
        core_neurons: 64,
        relay_reserve: 8,
        anneal_iters: 2000,
        ..CompileOptions::default()
    };
    let compiled = compile(corelet.network(), &options).unwrap();
    let report = compiled.report();
    assert!(report.cores >= 7, "cores = {}", report.cores);
    assert!(report.grid.0 * report.grid.1 >= report.cores);
    assert!(report.annealed_cost <= report.greedy_cost);
}
