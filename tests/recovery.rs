//! Differential proof of the self-healing runtime: a mid-run structural
//! fault is detected from telemetry alone (the monitor never sees the
//! fault plan), the logical network is re-placed around the condemned
//! cell, the chip hot-migrates onto the repaired layout, and the run
//! completes deterministically — bit-identical across thread counts and
//! both core-scheduling modes. The recovered raster must beat degrading
//! in place, and on a healthy chip the whole loop must be a no-op.
//!
//! The workload is a relay chain with one logical neuron per physical
//! core (threshold 1, weight 1, continuous stimulus), so every healthy
//! core fires every tick — the silent-core detector has zero false
//! positives — and killing any one chain neuron silences exactly the core
//! that hosts it while it keeps consuming axon events: the textbook
//! silent-core signature.

use brainsim::chip::CoreScheduling;
use brainsim::compiler::{compile, CompileOptions, NetworkMap};
use brainsim::corelet::{Corelet, LogicalNetwork, NodeRef};
use brainsim::faults::{FaultInjector, FaultPlan};
use brainsim::neuron::NeuronConfig;
use brainsim::recovery::{RecoveryEvent, RecoveryPolicy, RecoveryStats, SelfHealingRunner};

const TICKS: u64 = 160;
/// Tick the fault plan is armed at, mid-run, on a warmed-up chip.
const ARM_AT: u64 = 40;
/// Late observation window: long after detection + migration settle.
fn window() -> std::ops::Range<usize> {
    100..160
}
const DEAD_RATE: f64 = 0.12;

/// A relay chain of `n` threshold-1 neurons: input → n0 → n1 → … → out.
/// With one packable slot per core it occupies exactly `n` cores.
fn chain_net(n: usize) -> LogicalNetwork {
    let mut c = Corelet::new("chain", 1);
    let t = NeuronConfig::builder()
        .threshold(1)
        .build()
        .expect("neuron config");
    let pop = c.add_population(t, n);
    c.connect(NodeRef::Input(0), pop[0], 1, 1).expect("connect");
    for w in pop.windows(2) {
        c.connect(NodeRef::Neuron(w[0]), w[1], 1, 2)
            .expect("connect");
    }
    c.mark_output(pop[n - 1]).expect("output");
    c.into_network()
}

/// One logical neuron per core (capacity `core_neurons - relay_reserve`),
/// explicit grid so the spare-cell budget is under test control.
fn options(grid: (usize, usize), threads: usize, scheduling: CoreScheduling) -> CompileOptions {
    CompileOptions {
        core_axons: 4,
        core_neurons: 2,
        relay_reserve: 1,
        grid: Some(grid),
        seed: 7,
        threads,
        scheduling,
        ..CompileOptions::default()
    }
}

/// Searches fault-plan seeds for a surgical strike: exactly one dead
/// neuron on the whole grid, located at the occupied slot of a used cell.
/// Every other cell — in particular every spare the repair could pick —
/// is completely clean, so a successful migration provably restores
/// function. The injector is used only to *construct* the scenario (and
/// later to assert the monitor fingered the right cell); the monitor
/// itself sees nothing but telemetry.
fn surgical_plan(map: &NetworkMap) -> (FaultPlan, (usize, usize)) {
    let (w, h) = map.grid;
    for seed in 0..10_000u64 {
        let plan = FaultPlan::new(seed).with_dead_neuron(DEAD_RATE);
        let inj = FaultInjector::new(&plan);
        let mut dead = Vec::new();
        for y in 0..h {
            for x in 0..w {
                for n in 0..2 {
                    if inj.neuron_fault(x, y, n).is_some() {
                        dead.push((x, y, n));
                    }
                }
            }
        }
        if let [(x, y, 0)] = dead[..] {
            if map.positions.contains(&(x, y)) {
                return (plan, (x, y));
            }
        }
    }
    panic!("no surgical fault-plan seed in range");
}

/// Everything observable about one self-healing run.
#[derive(Debug, PartialEq)]
struct HealOutcome {
    raster: Vec<Vec<bool>>,
    events: Vec<RecoveryEvent>,
    stats: RecoveryStats,
    condemned: Vec<(usize, usize)>,
    degraded: bool,
    positions: Vec<(usize, usize)>,
}

/// Drives the runner with continuous stimulus, arming `plan` at
/// [`ARM_AT`] when given.
fn heal(
    net: LogicalNetwork,
    opts: &CompileOptions,
    plan: Option<&FaultPlan>,
    policy: RecoveryPolicy,
) -> HealOutcome {
    let mut runner = SelfHealingRunner::new(net, opts.clone(), policy).expect("compile");
    let mut raster = Vec::with_capacity(TICKS as usize);
    for t in 0..TICKS {
        if t == ARM_AT {
            if let Some(plan) = plan {
                runner.arm_fault_plan(plan);
            }
        }
        raster.push(runner.step(&[0]));
    }
    HealOutcome {
        raster,
        events: runner.events().to_vec(),
        stats: runner.stats(),
        condemned: runner.monitor().condemned_cells(),
        degraded: runner.degraded(),
        positions: runner.compiled().network_map().positions.clone(),
    }
}

/// The same run without any recovery loop: plain compiled network, same
/// stimulus, optionally the same mid-run fault plan.
fn plain(net: &LogicalNetwork, opts: &CompileOptions, plan: Option<&FaultPlan>) -> Vec<Vec<bool>> {
    let mut compiled = compile(net, opts).expect("compile");
    let mut raster = Vec::with_capacity(TICKS as usize);
    for t in 0..TICKS {
        if t == ARM_AT {
            if let Some(plan) = plan {
                compiled.set_fault_plan(plan);
            }
        }
        compiled.inject(0, t).expect("inject");
        raster.push(compiled.tick());
    }
    raster
}

/// Ticks in [`window`] where the two rasters disagree.
fn divergence(a: &[Vec<bool>], b: &[Vec<bool>]) -> usize {
    window().filter(|&t| a[t] != b[t]).count()
}

#[test]
fn recovery_restores_function_and_beats_degrading_in_place() {
    // 6 cores on a 3x3 grid: three clean spare cells to migrate into.
    let net = chain_net(6);
    let opts = options((3, 3), 1, CoreScheduling::Sweep);
    let map = compile(&net, &opts).expect("compile").network_map().clone();
    let (plan, damaged) = surgical_plan(&map);

    let reference = plain(&net, &opts, None);
    let degraded = plain(&net, &opts, Some(&plan));
    let healed = heal(net, &opts, Some(&plan), RecoveryPolicy::default());

    // The workload is active and the injected fault actually bites.
    assert!(
        window().all(|t| reference[t] == vec![true]),
        "reference chain must fire every tick in the window"
    );
    let div_degraded = divergence(&degraded, &reference);
    assert!(div_degraded > 0, "the dead neuron must break the chain");

    // Detection from telemetry alone fingered exactly the damaged cell,
    // after the plan was armed, and one migration moved exactly that core
    // to a previously free cell.
    assert_eq!(
        healed.stats,
        RecoveryStats {
            cells_condemned: 1,
            migrations: 1,
            cores_moved: 1,
            failed_attempts: 0,
            link_alarms: 0,
        }
    );
    assert!(!healed.degraded);
    assert_eq!(healed.condemned, vec![damaged]);
    match &healed.events[..] {
        [RecoveryEvent::Condemned { tick: ct, cells }, RecoveryEvent::Migrated { tick: mt, moves }] =>
        {
            assert!(*ct > ARM_AT, "condemned before the fault existed");
            assert_eq!(mt, ct, "migration must run in the condemnation tick");
            assert_eq!(cells, &vec![damaged]);
            assert_eq!(moves.len(), 1);
            assert_eq!(moves[0].from, damaged);
            assert!(
                !map.positions.contains(&moves[0].to),
                "migration target must be a previously free cell"
            );
        }
        other => panic!("expected condemn + migrate, got {other:?}"),
    }
    // The final placement is the old one with only the damaged cell swapped.
    let moved_core = map
        .positions
        .iter()
        .position(|&p| p == damaged)
        .expect("damaged cell is used");
    for (i, (&old, &new)) in map.positions.iter().zip(&healed.positions).enumerate() {
        if i == moved_core {
            assert_ne!(new, damaged);
        } else {
            assert_eq!(old, new, "healthy core {i} must not move");
        }
    }

    // The healed run converges back onto the fault-free reference; the
    // degraded run never does.
    let div_healed = divergence(&healed.raster, &reference);
    assert_eq!(
        div_healed, 0,
        "recovered chain must match the fault-free reference in the late window"
    );
    assert!(div_healed < div_degraded);
}

#[test]
fn self_healing_run_is_bit_identical_across_threads_and_schedulers() {
    let net = chain_net(6);
    let base = options((3, 3), 1, CoreScheduling::Sweep);
    let map = compile(&net, &base).expect("compile").network_map().clone();
    let (plan, _) = surgical_plan(&map);

    let reference = heal(net.clone(), &base, Some(&plan), RecoveryPolicy::default());
    assert_eq!(reference.stats.migrations, 1, "scenario must recover");
    for threads in [1, 2, 8] {
        for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
            let opts = options((3, 3), threads, scheduling);
            let outcome = heal(net.clone(), &opts, Some(&plan), RecoveryPolicy::default());
            assert_eq!(
                outcome, reference,
                "self-healing run diverged: {threads} threads, {scheduling:?}"
            );
        }
    }
}

#[test]
fn recovery_on_a_healthy_chip_is_a_no_op() {
    let net = chain_net(6);
    for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
        let opts = options((3, 3), 1, scheduling);
        let reference = plain(&net, &opts, None);
        let outcome = heal(net.clone(), &opts, None, RecoveryPolicy::default());
        assert_eq!(
            outcome.raster, reference,
            "the recovery loop must not perturb a healthy run ({scheduling:?})"
        );
        assert!(outcome.events.is_empty(), "no events on a healthy chip");
        assert_eq!(outcome.stats, RecoveryStats::default());
        assert!(outcome.condemned.is_empty());
        assert!(!outcome.degraded);
        let map = compile(&net, &opts).expect("compile").network_map().clone();
        assert_eq!(outcome.positions, map.positions, "no core may move");
    }
}

#[test]
fn exhausted_retries_degrade_in_place_without_crashing() {
    // 9 cores fill the 3x3 grid exactly: there is no spare cell, so every
    // repair attempt fails with GridTooSmall and the runner must walk the
    // whole ladder — capped-backoff retries, then degrade in place — while
    // the run itself keeps ticking.
    let net = chain_net(9);
    let opts = options((3, 3), 1, CoreScheduling::Sweep);
    let map = compile(&net, &opts).expect("compile").network_map().clone();
    let (plan, damaged) = surgical_plan(&map);

    let outcome = heal(net, &opts, Some(&plan), RecoveryPolicy::default());
    assert_eq!(
        outcome.raster.len(),
        TICKS as usize,
        "the run must complete"
    );
    assert!(outcome.degraded, "no spare cell: the runner must give up");
    assert_eq!(outcome.condemned, vec![damaged]);
    assert_eq!(outcome.stats.migrations, 0);
    assert_eq!(outcome.stats.failed_attempts, 3);
    assert_eq!(outcome.positions, map.positions, "nothing may move");
    match &outcome.events[..] {
        [RecoveryEvent::Condemned { tick: t0, .. }, RecoveryEvent::AttemptFailed {
            tick: t1,
            retry_at: r1,
            error: e1,
        }, RecoveryEvent::AttemptFailed {
            tick: t2,
            retry_at: r2,
            ..
        }, RecoveryEvent::DegradedInPlace { tick: t3, error }] => {
            assert_eq!(t1, t0, "first attempt runs in the condemnation tick");
            assert!(e1.contains("re-placement failed"), "typed ladder: {e1}");
            // Capped exponential backoff, measured in ticks: 8 then 16.
            assert_eq!(*r1, t1 + 8);
            assert_eq!(*t2, *r1);
            assert_eq!(*r2, t2 + 16);
            assert_eq!(*t3, *r2);
            assert!(error.contains("abandoned after 3"), "final error: {error}");
        }
        other => panic!("expected condemn + 2 retries + degrade, got {other:?}"),
    }
}

#[test]
fn migration_persists_a_checkpoint_when_configured() {
    let net = chain_net(6);
    let opts = options((3, 3), 1, CoreScheduling::Sweep);
    let map = compile(&net, &opts).expect("compile").network_map().clone();
    let (plan, _) = surgical_plan(&map);

    let dir = std::env::temp_dir().join(format!("brainsim-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = RecoveryPolicy {
        checkpoint_dir: Some(dir.clone()),
        ..RecoveryPolicy::default()
    };
    let outcome = heal(net, &opts, Some(&plan), policy);
    assert_eq!(outcome.stats.migrations, 1);
    let saved = std::fs::read_dir(&dir)
        .expect("checkpoint dir exists")
        .count();
    assert!(saved >= 1, "pre-migration checkpoint must be persisted");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
