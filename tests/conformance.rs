//! Corpus-driven differential conformance: the `cargo test` smoke mode of
//! the benchmark barometer (ROADMAP item 3).
//!
//! Every corpus entry pins an FNV-1a checksum over its full run (per-tick
//! spike rasters + final event census). These tests run the smoke subset
//! of the corpus through the complete conformance matrix — {Swar, Sparse
//! scalar, Dense scalar} × {Sweep, Active} × threads {1, 8} + the
//! telemetry probe — and require every variant to be bit-identical AND to
//! match the pinned value, so a regression in any strategy, scheduler, or
//! the thread pipeline fails here before any benchmark number is trusted.
//! The force-scalar CI leg re-runs the same matrix with the SWAR fast
//! path compiled out.
//!
//! The full (non-smoke) corpus — including both 64×64 / 4096-core
//! entries — is verified by `barometer measure`/`check` in the bench CI
//! job, which refuses to emit timing records until the same matrix
//! agrees.

use brainsim_bench::corpus::{self, WorkloadDef};
use brainsim_bench::record::Host;
use brainsim_bench::sweep;

/// The smoke subset: every corpus entry cheap enough for `cargo test`.
/// Debug builds trim to the 8×8 entries so the default tier-1 suite stays
/// fast; release runs (CI's corpus-conformance job) cover all smoke
/// entries up to 32×32.
fn smoke_defs() -> Vec<WorkloadDef> {
    corpus::corpus()
        .into_iter()
        .filter(|d| d.smoke && (!cfg!(debug_assertions) || d.cores() <= 64))
        .collect()
}

#[test]
fn every_smoke_entry_is_bit_identical_across_the_matrix() {
    for def in smoke_defs() {
        let verified =
            sweep::verify_workload(&def).unwrap_or_else(|e| panic!("conformance failure: {e}"));
        assert!(
            verified.census.spikes > 0,
            "{}: workload must actually spike",
            def.name
        );
        assert_eq!(
            Some(verified.checksum),
            def.checksum,
            "{}: checksum drifted from pin",
            def.name
        );
        assert_eq!(
            verified.runs.len(),
            sweep::conformance_matrix().len(),
            "{}: matrix not fully swept",
            def.name
        );
    }
}

#[test]
fn corpus_is_fully_pinned_and_reaches_full_silicon_scale() {
    let defs = corpus::corpus();
    for def in &defs {
        assert!(
            def.checksum.is_some(),
            "{}: corpus entries must carry a pinned checksum",
            def.name
        );
    }
    assert!(
        defs.iter()
            .any(|d| d.cores() == 4096 && d.checksum.is_some()),
        "corpus must include a pinned 64×64 (4096-core) workload"
    );
}

#[test]
fn sweep_records_carry_honest_host_parallelism() {
    let def = corpus::find("nemo_8x8_lo").expect("corpus entry exists");
    // A deliberately tiny host: every multi-threaded variant must be
    // flagged as oversubscribed instead of masquerading as speedup.
    let host = Host {
        cpus: 1,
        os: "linux",
    };
    let records = sweep::sweep_workload(&def, host).expect("entry conforms");
    assert!(!records.is_empty());
    for r in &records {
        assert_eq!(r.host_cpus, 1);
        assert_eq!(r.oversubscribed, r.threads > 1, "{}", r.variant);
        assert_eq!(Some(r.census_checksum), def.checksum, "{}", r.variant);
        assert_eq!(r.workload, def.name);
    }
    assert!(
        records.iter().any(|r| r.threads == 8 && r.oversubscribed),
        "the threaded variants must carry the oversubscription flag"
    );
}
