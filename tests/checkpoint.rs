//! Kill–resume differential for the checkpoint/restore subsystem: a chip
//! checkpointed at an arbitrary tick boundary, serialized through the wire
//! format, dropped, and restored must produce the **bit-identical**
//! remainder of the event stream an uninterrupted run produces — at thread
//! counts 1 and 8, under both schedulers, with and without fault plans, on
//! the SWAR and (`--features force-scalar`) scalar kernels.
//!
//! The workload replicates the `tests/parallel_equivalence.rs` recipe:
//! random recurrent 4×4 chips, bursty seeded Bernoulli stimulus, and the
//! three-plan fault corpus (benign / link chaos / structural damage).

use brainsim::chip::{
    CheckpointPolicy, Chip, ChipBuilder, ChipConfig, CoreScheduling, Snapshot, TelemetryConfig,
    TickSemantics,
};
use brainsim::core::{AxonTarget, CoreOffset, Destination};
use brainsim::energy::EventCensus;
use brainsim::faults::{FaultPlan, FaultStats};
use brainsim::neuron::{AxonType, Lfsr, NeuronConfig, Weight};
use brainsim::telemetry::TickRecord as TelemetryRecord;

const TICKS: u64 = 220;
const GRID: usize = 4;
const FANIN: usize = 16;

/// Ticks at which the interrupted runs are killed and resumed: immediately
/// after startup, mid-burst, and deep into the run inside an idle window.
const CHECKPOINT_TICKS: [u64; 3] = [1, 50, 173];

/// One tick's observable record (as in `parallel_equivalence`).
type Record = (u64, u64, Vec<u32>, FaultStats);

/// Everything one run produces: the per-tick stream, the final census and
/// fault totals, and the telemetry log's records + summary.
struct RunOutput {
    records: Vec<Record>,
    census: EventCensus,
    faults: FaultStats,
    telemetry_records: Vec<TelemetryRecord>,
    telemetry_summary: brainsim::telemetry::RunSummary,
}

fn build_chip(
    seed: u32,
    semantics: TickSemantics,
    threads: usize,
    scheduling: CoreScheduling,
) -> Chip {
    let mut b = ChipBuilder::new(ChipConfig {
        width: GRID,
        height: GRID,
        core_axons: FANIN,
        core_neurons: FANIN,
        seed,
        semantics,
        threads,
        scheduling,
        ..ChipConfig::default()
    });
    let mut rng = Lfsr::new(seed);
    for y in 0..GRID {
        for x in 0..GRID {
            for n in 0..FANIN {
                let config = NeuronConfig::builder()
                    .weight(
                        AxonType::A0,
                        Weight::new(1 + (rng.next_u32() % 3) as i32).unwrap(),
                    )
                    .weight(AxonType::A1, Weight::new(-1).unwrap())
                    .threshold(1 + rng.next_u32() % 4)
                    .leak(if rng.bernoulli_256(64) { -1 } else { 0 })
                    .leak_reversal(true)
                    .build()
                    .unwrap();
                let dest = if n == 0 {
                    Destination::Output((y * GRID + x) as u32)
                } else {
                    let dx = (rng.next_u32() % 3) as i32 - 1;
                    let dy = (rng.next_u32() % 3) as i32 - 1;
                    let tx = (x as i32 + dx).clamp(0, GRID as i32 - 1);
                    let ty = (y as i32 + dy).clamp(0, GRID as i32 - 1);
                    Destination::Axon(AxonTarget {
                        offset: CoreOffset::new(tx - x as i32, ty - y as i32),
                        axon: (rng.next_u32() as usize % FANIN) as u16,
                        delay: 1 + (rng.next_u32() % 3) as u8,
                    })
                };
                b.core_mut(x, y).neuron(n, config, dest).unwrap();
                for a in 0..FANIN {
                    let bit = rng.bernoulli_256(56);
                    b.core_mut(x, y).synapse(a, n, bit).unwrap();
                }
            }
        }
    }
    b.build().unwrap()
}

fn fault_plans(seed: u64) -> Vec<Option<FaultPlan>> {
    vec![
        None,
        Some(
            FaultPlan::new(seed)
                .with_link_drop(0.15)
                .with_link_corrupt(0.2),
        ),
        Some(
            FaultPlan::new(seed ^ 0x5A5A)
                .with_link_delay(0.3, 2)
                .with_core_dropout(0.1)
                .with_stuck_neuron(0.02)
                .with_dead_neuron(0.05),
        ),
    ]
}

/// Injects the recipe's bursty stimulus for tick `t`.
fn drive(chip: &mut Chip, stim: &mut Lfsr, t: u64) {
    if t % 50 < 30 {
        for a in 0..FANIN {
            if stim.bernoulli_256(48) {
                let x = (stim.next_u32() as usize) % GRID;
                let y = (stim.next_u32() as usize) % GRID;
                chip.inject(x, y, a, t).unwrap();
            }
        }
    }
}

/// Reconstructs the stimulus generator as it stands after `ticks` ticks, by
/// replaying its draw pattern — what a resuming harness does to realign its
/// external input stream with the restored chip clock.
fn stim_at(seed: u32, ticks: u64) -> Lfsr {
    let mut stim = Lfsr::new(seed ^ 0x00C0_FFEE);
    for t in 0..ticks {
        if t % 50 < 30 {
            for _ in 0..FANIN {
                if stim.bernoulli_256(48) {
                    stim.next_u32();
                    stim.next_u32();
                }
            }
        }
    }
    stim
}

fn finish(mut chip: Chip, records: Vec<Record>) -> RunOutput {
    let census = chip.census();
    let faults = chip.fault_stats();
    let log = chip.take_telemetry().expect("telemetry was enabled");
    RunOutput {
        records,
        census,
        faults,
        telemetry_records: log.records().cloned().collect(),
        telemetry_summary: log.summary().clone(),
    }
}

/// The golden run: uninterrupted, telemetry on.
fn run_golden(
    seed: u32,
    threads: usize,
    scheduling: CoreScheduling,
    plan: Option<&FaultPlan>,
) -> RunOutput {
    let mut chip = build_chip(seed, TickSemantics::Deterministic, threads, scheduling);
    if let Some(plan) = plan {
        chip.set_fault_plan(plan);
    }
    chip.enable_telemetry(TelemetryConfig::unbounded());
    let mut stim = Lfsr::new(seed ^ 0x00C0_FFEE);
    let mut records = Vec::with_capacity(TICKS as usize);
    for t in 0..TICKS {
        drive(&mut chip, &mut stim, t);
        let s = chip.tick();
        records.push((s.tick, s.spikes, s.outputs, s.faults));
    }
    finish(chip, records)
}

/// The kill–resume run: checkpoint at `stop_at`, serialize through the wire
/// format, drop the chip, restore from bytes, and run out the remainder.
/// Returns the output plus the resume marker the restored telemetry carried.
fn run_interrupted(
    seed: u32,
    threads: usize,
    scheduling: CoreScheduling,
    plan: Option<&FaultPlan>,
    stop_at: u64,
) -> (RunOutput, Option<u64>) {
    let mut chip = build_chip(seed, TickSemantics::Deterministic, threads, scheduling);
    if let Some(plan) = plan {
        chip.set_fault_plan(plan);
    }
    chip.enable_telemetry(TelemetryConfig::unbounded());
    let mut stim = Lfsr::new(seed ^ 0x00C0_FFEE);
    let mut records = Vec::with_capacity(TICKS as usize);
    for t in 0..stop_at {
        drive(&mut chip, &mut stim, t);
        let s = chip.tick();
        records.push((s.tick, s.spikes, s.outputs, s.faults));
    }
    let bytes = chip.checkpoint().to_bytes();
    drop(chip); // the "kill": nothing survives but the snapshot bytes

    let snapshot = Snapshot::from_bytes(&bytes).expect("snapshot decodes");
    let mut chip = Chip::restore(snapshot).expect("snapshot restores");
    assert_eq!(chip.now(), stop_at);
    let marker = chip
        .telemetry()
        .expect("telemetry restored")
        .summary()
        .resumed_from_tick;
    let mut stim = stim_at(seed, stop_at);
    for t in stop_at..TICKS {
        drive(&mut chip, &mut stim, t);
        let s = chip.tick();
        records.push((s.tick, s.spikes, s.outputs, s.faults));
    }
    (finish(chip, records), marker)
}

#[test]
fn kill_resume_is_bit_identical_to_the_uninterrupted_run() {
    for seed in [0xA11CE, 0xB0B5EED] {
        for (p, plan) in fault_plans(seed as u64).iter().enumerate() {
            for &threads in &[1usize, 8] {
                for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
                    let golden = run_golden(seed, threads, scheduling, plan.as_ref());
                    assert!(
                        golden.records.iter().map(|r| r.1).sum::<u64>() > 0,
                        "workload must be active (seed {seed:#x}, plan {p})"
                    );
                    for &stop_at in &CHECKPOINT_TICKS {
                        let label = format!(
                            "seed {seed:#x}, plan {p}, {threads} threads, {scheduling:?}, \
                             killed at {stop_at}"
                        );
                        let (resumed, marker) =
                            run_interrupted(seed, threads, scheduling, plan.as_ref(), stop_at);
                        assert_eq!(resumed.records, golden.records, "tick stream: {label}");
                        assert_eq!(resumed.census, golden.census, "census: {label}");
                        assert_eq!(resumed.faults, golden.faults, "fault stats: {label}");
                        // The restored ring restarts empty, so the resumed
                        // log holds exactly the post-checkpoint records —
                        // and they match the golden tail bit for bit.
                        assert_eq!(marker, Some(stop_at), "resume marker: {label}");
                        assert_eq!(
                            resumed.telemetry_records,
                            golden.telemetry_records[stop_at as usize..],
                            "telemetry records: {label}"
                        );
                        let mut normalized = resumed.telemetry_summary.clone();
                        assert_eq!(normalized.resumed_from_tick, Some(stop_at));
                        normalized.resumed_from_tick = None;
                        assert_eq!(
                            normalized, golden.telemetry_summary,
                            "telemetry summary: {label}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn policy_fallback_resumes_from_the_newest_verifying_snapshot() {
    // Integration of the retention policy with restore: checkpoint every 25
    // ticks keeping 3, "crash" at tick 120, corrupt the newest snapshot on
    // disk, and verify the fallback snapshot (tick 75) resumes into the
    // golden stream.
    let seed = 0xA11CE;
    let dir = std::env::temp_dir().join(format!("brainsim-ckpt-fallback-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let policy = CheckpointPolicy::new(25, 3);

    let golden = run_golden(seed, 1, CoreScheduling::Active, None);

    let mut chip = build_chip(
        seed,
        TickSemantics::Deterministic,
        1,
        CoreScheduling::Active,
    );
    chip.enable_telemetry(TelemetryConfig::unbounded());
    let mut stim = Lfsr::new(seed ^ 0x00C0_FFEE);
    for t in 0..120 {
        drive(&mut chip, &mut stim, t);
        chip.tick();
        let tick = chip.now();
        if policy.due(tick) {
            policy
                .save(&dir, tick, &chip.checkpoint().to_bytes())
                .expect("checkpoint save");
        }
    }
    drop(chip); // the crash

    // Retention kept {50, 75, 100}; damage the newest so the fallback path
    // has to walk past it.
    let snapshots = CheckpointPolicy::list(&dir).expect("list");
    assert_eq!(
        snapshots.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
        vec![50, 75, 100]
    );
    let newest = &snapshots.last().unwrap().1;
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(newest, bytes).unwrap();

    let (tick, bytes) = CheckpointPolicy::load_newest_verifying(&dir)
        .expect("scan")
        .expect("a verifying snapshot survives");
    assert_eq!(tick, 75, "fallback must pick the newest intact snapshot");
    let mut chip = Chip::restore(Snapshot::from_bytes(&bytes).expect("decode")).expect("restore");
    let mut stim = stim_at(seed, tick);
    let mut records: Vec<Record> = Vec::new();
    for t in tick..TICKS {
        drive(&mut chip, &mut stim, t);
        let s = chip.tick();
        records.push((s.tick, s.spikes, s.outputs, s.faults));
    }
    assert_eq!(records, golden.records[tick as usize..]);
    assert_eq!(chip.census(), golden.census);
    std::fs::remove_dir_all(&dir).ok();
}
