//! Differential proof that the parallel spike-routing pipeline and the
//! active-core scheduler are unobservable: for random chips, random fault
//! plans, every thread count, and both tick semantics, the per-tick
//! `TickSummary` stream (spike counts, output rasters in order, fault
//! tallies), the final `EventCensus`, and the aggregate `FaultStats` are
//! bit-identical to the serial full-sweep reference.
//!
//! Set `BRAINSIM_TEST_THREADS` to add an extra thread count to the matrix
//! (the CI job runs the suite with 1 and 8).

use brainsim::chip::{
    Chip, ChipBuilder, ChipConfig, CoreScheduling, TelemetryConfig, TelemetryLog, TickSemantics,
};
use brainsim::core::{AxonTarget, CoreOffset, Destination};
use brainsim::energy::EventCensus;
use brainsim::faults::{FaultPlan, FaultStats};
use brainsim::neuron::{AxonType, Lfsr, NeuronConfig, Weight};

const TICKS: u64 = 220;
const GRID: usize = 4;
const FANIN: usize = 16;

/// One tick's observable record: everything in `TickSummary` except
/// `cores_evaluated` (which legitimately differs between scheduling modes
/// but is asserted thread-invariant separately).
type TickRecord = (u64, u64, Vec<u32>, FaultStats);

/// Generates a random recurrent chip from a seed: random nearest-ish
/// destinations and delays, random crossbars, one output neuron per core
/// so the raster is observable, and a mix of quiet and busy neuron
/// configurations so active-core scheduling has real skips to make.
fn build_chip(
    seed: u32,
    semantics: TickSemantics,
    threads: usize,
    scheduling: CoreScheduling,
) -> Chip {
    let mut b = ChipBuilder::new(ChipConfig {
        width: GRID,
        height: GRID,
        core_axons: FANIN,
        core_neurons: FANIN,
        seed,
        semantics,
        threads,
        scheduling,
        ..ChipConfig::default()
    });
    let mut rng = Lfsr::new(seed);
    for y in 0..GRID {
        for x in 0..GRID {
            for n in 0..FANIN {
                let config = NeuronConfig::builder()
                    .weight(
                        AxonType::A0,
                        Weight::new(1 + (rng.next_u32() % 3) as i32).unwrap(),
                    )
                    .weight(AxonType::A1, Weight::new(-1).unwrap())
                    .threshold(1 + rng.next_u32() % 4)
                    .leak(if rng.bernoulli_256(64) { -1 } else { 0 })
                    .leak_reversal(true)
                    .build()
                    .unwrap();
                // Neuron 0 exposes the raster on an output pad; the rest
                // recur into the grid.
                let dest = if n == 0 {
                    Destination::Output((y * GRID + x) as u32)
                } else {
                    let dx = (rng.next_u32() % 3) as i32 - 1;
                    let dy = (rng.next_u32() % 3) as i32 - 1;
                    let tx = (x as i32 + dx).clamp(0, GRID as i32 - 1);
                    let ty = (y as i32 + dy).clamp(0, GRID as i32 - 1);
                    Destination::Axon(AxonTarget {
                        offset: CoreOffset::new(tx - x as i32, ty - y as i32),
                        axon: (rng.next_u32() as usize % FANIN) as u16,
                        delay: 1 + (rng.next_u32() % 3) as u8,
                    })
                };
                b.core_mut(x, y).neuron(n, config, dest).unwrap();
                for a in 0..FANIN {
                    let bit = rng.bernoulli_256(56);
                    b.core_mut(x, y).synapse(a, n, bit).unwrap();
                }
            }
        }
    }
    b.build().unwrap()
}

/// The fault-plan corpus: benign, link-level chaos, and structural damage
/// stacked with delays. Link faults exercise the parallel router's
/// per-shard tallies; structural faults exercise quiescence vetoes
/// (stuck-firing) and skip accounting (dropped cores).
fn fault_plans(seed: u64) -> Vec<Option<FaultPlan>> {
    vec![
        None,
        Some(
            FaultPlan::new(seed)
                .with_link_drop(0.15)
                .with_link_corrupt(0.2),
        ),
        Some(
            FaultPlan::new(seed ^ 0x5A5A)
                .with_link_delay(0.3, 2)
                .with_core_dropout(0.1)
                .with_stuck_neuron(0.02)
                .with_dead_neuron(0.05),
        ),
    ]
}

/// Drives a chip with seeded Bernoulli noise over sparse bursts (long idle
/// gaps between bursts give the scheduler real quiescence windows) and
/// records every observable.
fn run(
    seed: u32,
    semantics: TickSemantics,
    threads: usize,
    scheduling: CoreScheduling,
    plan: Option<&FaultPlan>,
) -> (Vec<TickRecord>, Vec<u64>, EventCensus, FaultStats) {
    let mut chip = build_chip(seed, semantics, threads, scheduling);
    if let Some(plan) = plan {
        chip.set_fault_plan(plan);
    }
    let mut stim = Lfsr::new(seed ^ 0x00C0_FFEE);
    let mut records = Vec::with_capacity(TICKS as usize);
    let mut evaluated = Vec::with_capacity(TICKS as usize);
    for t in 0..TICKS {
        // Bursty stimulus: ~30 busy ticks, then ~20 silent ones.
        if t % 50 < 30 {
            for a in 0..FANIN {
                if stim.bernoulli_256(48) {
                    let x = (stim.next_u32() as usize) % GRID;
                    let y = (stim.next_u32() as usize) % GRID;
                    chip.inject(x, y, a, t).unwrap();
                }
            }
        }
        let s = chip.tick();
        assert_eq!(s.tick, t);
        records.push((s.tick, s.spikes, s.outputs, s.faults));
        evaluated.push(s.cores_evaluated);
    }
    (records, evaluated, chip.census(), chip.fault_stats())
}

/// Thread counts to test: the fixed matrix plus `BRAINSIM_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 3, 8];
    if let Ok(v) = std::env::var("BRAINSIM_TEST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 && !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

#[test]
fn deterministic_pipeline_is_bit_identical_across_threads_and_scheduling() {
    for seed in [0xA11CE, 0xB0B5EED] {
        for (p, plan) in fault_plans(seed as u64).iter().enumerate() {
            let (reference, ref_evaluated, ref_census, ref_faults) = run(
                seed,
                TickSemantics::Deterministic,
                1,
                CoreScheduling::Sweep,
                plan.as_ref(),
            );
            assert!(
                reference.iter().map(|r| r.1).sum::<u64>() > 0,
                "workload must be active (seed {seed:#x}, plan {p})"
            );
            for &threads in &thread_counts() {
                for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
                    let (records, evaluated, census, faults) = run(
                        seed,
                        TickSemantics::Deterministic,
                        threads,
                        scheduling,
                        plan.as_ref(),
                    );
                    let label =
                        format!("seed {seed:#x}, plan {p}, {threads} threads, {scheduling:?}");
                    assert_eq!(records, reference, "tick stream diverged: {label}");
                    assert_eq!(census, ref_census, "census diverged: {label}");
                    assert_eq!(faults, ref_faults, "fault stats diverged: {label}");
                    if scheduling == CoreScheduling::Sweep {
                        assert_eq!(
                            evaluated, ref_evaluated,
                            "cores_evaluated not thread-invariant: {label}"
                        );
                    }
                }
            }
        }
    }
}

/// Same drive loop as [`run`], but arming an escalating sequence of fault
/// plans at fixed mid-run ticks instead of one plan up front: link-level
/// chaos at `ARM_LINK`, then structural damage stacked on top at
/// `ARM_STRUCTURAL` (structural burn is cumulative by contract, which is
/// exactly what the escalation exercises).
fn run_escalating(
    seed: u32,
    threads: usize,
    scheduling: CoreScheduling,
) -> (Vec<TickRecord>, EventCensus, FaultStats) {
    const ARM_LINK: u64 = 40;
    const ARM_STRUCTURAL: u64 = 80;
    let mut chip = build_chip(seed, TickSemantics::Deterministic, threads, scheduling);
    let mut stim = Lfsr::new(seed ^ 0x00C0_FFEE);
    let mut records = Vec::with_capacity(TICKS as usize);
    for t in 0..TICKS {
        // Escalation schedule, keyed to the absolute tick so every thread
        // count and scheduler arms at the same barrier.
        if t == ARM_LINK {
            chip.set_fault_plan(
                &FaultPlan::new(seed as u64)
                    .with_link_drop(0.1)
                    .with_link_corrupt(0.1),
            );
        }
        if t == ARM_STRUCTURAL {
            chip.set_fault_plan(
                &FaultPlan::new(seed as u64 ^ 0xDEAD)
                    .with_link_delay(0.2, 2)
                    .with_dead_neuron(0.1)
                    .with_stuck_neuron(0.05),
            );
        }
        if t % 50 < 30 {
            for a in 0..FANIN {
                if stim.bernoulli_256(48) {
                    let x = (stim.next_u32() as usize) % GRID;
                    let y = (stim.next_u32() as usize) % GRID;
                    chip.inject(x, y, a, t).unwrap();
                }
            }
        }
        let s = chip.tick();
        records.push((s.tick, s.spikes, s.outputs, s.faults));
    }
    (records, chip.census(), chip.fault_stats())
}

#[test]
fn mid_run_armed_fault_plans_are_bit_identical_across_threads_and_scheduling() {
    // The self-healing runtime arms fault plans at arbitrary tick
    // boundaries on a running chip; this pins the contract it leans on —
    // mid-run arming (including escalation over an already-armed plan) is
    // as deterministic as arming at build time.
    for seed in [0xA11CE, 0xB0B5EED] {
        let (reference, ref_census, ref_faults) = run_escalating(seed, 1, CoreScheduling::Sweep);
        let pre_arm_faults: u64 = reference[..40].iter().map(|r| r.3.total()).sum();
        let post_arm_faults: u64 = reference[40..].iter().map(|r| r.3.total()).sum();
        assert_eq!(pre_arm_faults, 0, "no faults may fire before arming");
        assert!(post_arm_faults > 0, "escalation must actually bite");
        for &threads in &thread_counts() {
            for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
                let (records, census, faults) = run_escalating(seed, threads, scheduling);
                let label = format!("seed {seed:#x}, {threads} threads, {scheduling:?}");
                assert_eq!(records, reference, "tick stream diverged: {label}");
                assert_eq!(census, ref_census, "census diverged: {label}");
                assert_eq!(faults, ref_faults, "fault stats diverged: {label}");
            }
        }
    }
}

/// Same drive loop as [`run`], but with telemetry enabled; returns the
/// full `TelemetryLog` (per-tick records, eviction count, run summary).
fn run_telemetry(
    seed: u32,
    threads: usize,
    scheduling: CoreScheduling,
    plan: Option<&FaultPlan>,
) -> Box<TelemetryLog> {
    let mut chip = build_chip(seed, TickSemantics::Deterministic, threads, scheduling);
    if let Some(plan) = plan {
        chip.set_fault_plan(plan);
    }
    chip.enable_telemetry(TelemetryConfig::unbounded());
    let mut stim = Lfsr::new(seed ^ 0x00C0_FFEE);
    for t in 0..TICKS {
        if t % 50 < 30 {
            for a in 0..FANIN {
                if stim.bernoulli_256(48) {
                    let x = (stim.next_u32() as usize) % GRID;
                    let y = (stim.next_u32() as usize) % GRID;
                    chip.inject(x, y, a, t).unwrap();
                }
            }
        }
        chip.tick();
    }
    chip.take_telemetry().expect("telemetry was enabled")
}

#[test]
fn telemetry_stream_is_bit_identical_across_threads() {
    // The telemetry pipeline rides the same shard/merge machinery as the
    // tick pipeline, so it gets the same differential treatment: for each
    // scheduler and fault plan, the full log — every per-tick record
    // including per-core detail, hop histograms, and energy deltas — must
    // be bit-identical at every thread count to the serial run.
    let seed = 0xA11CE;
    for (p, plan) in fault_plans(seed as u64).iter().enumerate() {
        let mut per_scheduling = Vec::new();
        for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
            let reference = run_telemetry(seed, 1, scheduling, plan.as_ref());
            assert!(
                reference.summary().spikes > 0,
                "workload must be active (plan {p}, {scheduling:?})"
            );
            assert_eq!(reference.len() as u64, TICKS);
            for &threads in &thread_counts() {
                let log = run_telemetry(seed, threads, scheduling, plan.as_ref());
                assert_eq!(
                    log, reference,
                    "telemetry log diverged: plan {p}, {threads} threads, {scheduling:?}"
                );
            }
            per_scheduling.push(reference);
        }
        // Across schedulers the evaluation counts legitimately differ, but
        // the physical observables each record carries must not: spike and
        // output counts, routing work, fault tallies, and energy deltas
        // are scheduling-invariant tick by tick.
        let invariant = |log: &TelemetryLog| {
            log.records()
                .map(|r| {
                    (
                        r.tick,
                        r.spikes,
                        r.outputs,
                        r.deliveries,
                        r.hops,
                        r.link_crossings,
                        r.hop_histogram,
                        r.faults,
                        r.energy,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            invariant(&per_scheduling[0]),
            invariant(&per_scheduling[1]),
            "per-tick observables not scheduling-invariant: plan {p}"
        );
        assert_eq!(
            per_scheduling[0].summary().core_spikes,
            per_scheduling[1].summary().core_spikes,
            "per-core spike totals not scheduling-invariant: plan {p}"
        );
    }
}

#[test]
fn active_scheduling_evaluates_fewer_cores_on_bursty_input() {
    // Not just equal results — the scheduler must actually skip work
    // during the idle windows of the bursty stimulus.
    let seed = 0xA11CE;
    let (_, sweep_evaluated, ..) = run(
        seed,
        TickSemantics::Deterministic,
        1,
        CoreScheduling::Sweep,
        None,
    );
    let (_, active_evaluated, ..) = run(
        seed,
        TickSemantics::Deterministic,
        1,
        CoreScheduling::Active,
        None,
    );
    let sweep_total: u64 = sweep_evaluated.iter().sum();
    let active_total: u64 = active_evaluated.iter().sum();
    assert_eq!(sweep_total, (GRID * GRID) as u64 * TICKS);
    assert!(
        active_total < sweep_total,
        "active scheduling never skipped a core ({active_total} vs {sweep_total})"
    );
    // cores_evaluated is invariant across thread counts under Active too.
    let (_, active_t8, ..) = run(
        seed,
        TickSemantics::Deterministic,
        8,
        CoreScheduling::Active,
        None,
    );
    assert_eq!(active_evaluated, active_t8);
}

#[test]
fn relaxed_semantics_is_scheduling_invariant_serially() {
    // The relaxed ablation is serial-only by contract (the builder rejects
    // threads > 1), so its differential axis is the scheduler: inline
    // quiescence skips in sweep order must not change one observable bit.
    for seed in [0xA11CE, 0xB0B5EED] {
        for (p, plan) in fault_plans(seed as u64).iter().enumerate() {
            let (reference, _, ref_census, ref_faults) = run(
                seed,
                TickSemantics::Relaxed,
                1,
                CoreScheduling::Sweep,
                plan.as_ref(),
            );
            let (records, _, census, faults) = run(
                seed,
                TickSemantics::Relaxed,
                1,
                CoreScheduling::Active,
                plan.as_ref(),
            );
            let label = format!("seed {seed:#x}, plan {p}");
            assert_eq!(records, reference, "relaxed tick stream diverged: {label}");
            assert_eq!(census, ref_census, "relaxed census diverged: {label}");
            assert_eq!(faults, ref_faults, "relaxed fault stats diverged: {label}");
        }
    }
}

#[test]
fn relaxed_parallel_is_rejected_at_build() {
    // Contract pin for the `threads` vs `tick_relaxed` interaction: a
    // relaxed chip must refuse to build with more than one thread rather
    // than silently racing the sweep order.
    let err = ChipBuilder::new(ChipConfig {
        semantics: TickSemantics::Relaxed,
        threads: 4,
        ..ChipConfig::default()
    })
    .build()
    .unwrap_err();
    assert!(matches!(
        err,
        brainsim::chip::ChipBuildError::RelaxedParallel
    ));
}

/// The differential matrix and the benchmark barometer share one workload
/// source: this pulls a ≥16×16 corpus entry from the barometer's generator
/// (rather than the ad-hoc 4×4 builder above) and proves the run checksum
/// and census are bit-identical across every thread count, both schedulers,
/// and the scalar reference strategy — the same contract the bench harness
/// enforces before it trusts a timing.
#[test]
fn corpus_workload_is_bit_identical_across_threads_and_scheduling() {
    use brainsim::core::EvalStrategy;
    use brainsim_bench::corpus;
    use brainsim_bench::sweep::{run_variant, Variant};

    let mut def = corpus::find("nemo_16x16_mid").expect("corpus entry exists");
    assert!(def.cores() >= 256, "entry must be at least 16×16");
    // Shortened run: cross-variant identity is the property under test
    // here; the full-length pinned-checksum run is tests/conformance.rs.
    def.warmup = 5;
    def.measure = 40;
    def.checksum = None;

    let reference = run_variant(
        &def,
        &Variant {
            strategy: EvalStrategy::Swar,
            scheduling: CoreScheduling::Sweep,
            threads: 1,
            telemetry: false,
        },
    );
    assert!(reference.census.spikes > 0, "workload must be active");
    for &threads in &thread_counts() {
        for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
            for strategy in [EvalStrategy::Swar, EvalStrategy::Sparse] {
                let variant = Variant {
                    strategy,
                    scheduling,
                    threads,
                    telemetry: false,
                };
                let result = run_variant(&def, &variant);
                let label = variant.label();
                assert_eq!(
                    result.checksum, reference.checksum,
                    "checksum diverged: {label}"
                );
                assert_eq!(result.census, reference.census, "census diverged: {label}");
            }
        }
    }
}
