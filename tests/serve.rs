//! Differential chaos suite for the serving runtime.
//!
//! The load-bearing claims, each proven differentially:
//!
//! 1. **Worker-count invariance** — the fleet's complete supervision
//!    journal (demotions, quarantines, panics, recoveries, checkpoint
//!    failures) and every tenant's final `(ticks, checksum)` are
//!    bit-identical at `workers ∈ {1, 2, 8}`, even while one tenant's
//!    chip is crashing and its newest checkpoint is rotting on disk.
//! 2. **Crash isolation** — a tenant whose core panics, whose newest
//!    checkpoint is corrupt, and whose recovery replays logged
//!    injections ends bit-identical to a never-crashed solo twin; every
//!    *other* tenant ends bit-identical to its own solo twin.
//! 3. **Typed backpressure** — queue caps, fleet shed-load watermarks
//!    (with hysteresis), admission control and shutdown all refuse with
//!    the documented typed errors, deterministically.
//! 4. **Terminal failure** — when every checkpoint is corrupt, the
//!    recovery ladder climbs at the configured rounds and exhausts into
//!    a typed `SessionState::Failed` without disturbing bystanders.

use std::path::PathBuf;
use std::time::Duration;

use brainsim::chip::{
    CheckpointPolicy, Chip, ChipBuilder, ChipConfig, CoreScheduling, RetryPolicy,
};
use brainsim::core::Destination;
use brainsim::neuron::{AxonType, NeuronConfig, Weight};
use brainsim::serve::{
    AdmitError, BackoffLadder, BudgetMeter, DeadlinePolicy, Fleet, FleetEvent, InjectCmd,
    ServeConfig, SessionState, SubmitError,
};
use brainsim::snapshot::inject_write_failures;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fold_tick(hash: &mut u64, tick: u64, outputs: &[u32]) {
    fnv1a(hash, &tick.to_le_bytes());
    for port in outputs {
        fnv1a(hash, &port.to_le_bytes());
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("brainsim-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn relay_config() -> NeuronConfig {
    NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(1))
        .threshold(1)
        .build()
        .expect("neuron config")
}

/// A `grid`×`grid` chip of relay cores: axon `i` of core `c` drives
/// neuron `i` straight to output port `c*8 + i`. Every spike is a pure
/// echo of the stimulus, so checksums are an exact probe of *which*
/// injections were applied at *which* ticks.
fn echo_chip(grid: usize, seed: u32, scheduling: CoreScheduling) -> Chip {
    let mut b = ChipBuilder::new(ChipConfig {
        width: grid,
        height: grid,
        core_axons: 8,
        core_neurons: 8,
        seed,
        threads: 1,
        scheduling,
        ..ChipConfig::default()
    });
    for y in 0..grid {
        for x in 0..grid {
            let core = (y * grid + x) as u32;
            for i in 0..8 {
                b.core_mut(x, y)
                    .neuron(i, relay_config(), Destination::Output(core * 8 + i as u32))
                    .expect("neuron");
                b.core_mut(x, y).synapse(i, i, true).expect("synapse");
            }
        }
    }
    b.build().expect("build")
}

fn tenant_chip(seed: u32) -> Chip {
    echo_chip(2, seed, CoreScheduling::Active)
}

/// The deterministic per-tenant stimulus: a pure function of
/// `(seed, tick)`, so the fleet-side submit stream and the solo twin
/// apply byte-identical injections.
fn stim(seed: u64, tick: u64) -> Option<InjectCmd> {
    if tick.is_multiple_of(3) {
        return None;
    }
    let mixed = (seed ^ tick).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    Some(InjectCmd {
        x: (tick as usize) % 2,
        y: (mixed as usize >> 8) % 2,
        word: 0,
        bits: (mixed & 0xFF) | 1,
        target_tick: tick,
    })
}

/// Runs a fresh twin of a fleet tenant solo for `ticks` ticks and
/// returns the checksum the fleet must have produced.
fn solo_checksum(mut chip: Chip, seed: u64, ticks: u64, with_stim: bool) -> u64 {
    let mut checksum = FNV_OFFSET;
    for _ in 0..ticks {
        let now = chip.now();
        if with_stim {
            if let Some(cmd) = stim(seed, now) {
                chip.inject_word(cmd.x, cmd.y, cmd.word, cmd.bits, cmd.target_tick)
                    .expect("twin inject");
            }
        }
        let summary = chip.tick();
        fold_tick(&mut checksum, summary.tick, &summary.outputs);
    }
    checksum
}

/// Submits `name`'s stimulus for every tick in `[*upto, current+24)`,
/// advancing the monotonic high-water mark. Refusals (quarantine) leave
/// the mark unmoved so the ticks are retried next round.
fn top_up(fleet: &mut Fleet, name: &str, seed: u64, upto: &mut u64) {
    let Some(view) = fleet.session(name) else {
        return;
    };
    let horizon = view.ticks + 24;
    while *upto < horizon {
        if let Some(cmd) = stim(seed, *upto) {
            if fleet.submit(name, cmd).is_err() {
                return;
            }
        }
        *upto += 1;
    }
}

fn flip_last_byte(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).expect("read checkpoint");
    let n = bytes.len();
    bytes[n - 1] ^= 0xFF;
    std::fs::write(path, &bytes).expect("write corrupted checkpoint");
}

fn chaos_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_tenants: 8,
        queue_capacity: 256,
        ticks_per_round: 8,
        degraded_ticks_per_round: 2,
        shed_high_watermark: 100_000,
        shed_low_watermark: 50_000,
        deadline: DeadlinePolicy {
            budget: BudgetMeter::CostUnitsPerTick(60),
            demote_after: 2,
            promote_after: 4,
            quarantine_after: 3,
            quarantine_rounds: 6,
        },
        recovery: BackoffLadder::new(1, 4, 3),
        checkpoint_every: 16,
        checkpoint_keep: 2,
        checkpoint_retry: RetryPolicy::new(1, Duration::ZERO, Duration::ZERO),
    }
}

const HEALTHY: [(&str, u64); 4] = [("t0", 11), ("t1", 22), ("t2", 33), ("t3", 44)];
const VICTIM_SEED: u64 = 77;
const ROUNDS: u64 = 18;

/// One full chaos scenario at a given worker count: 4 healthy tenants,
/// one hostile cost hog, one tenant that is poisoned at round 6 with its
/// newest checkpoint corrupted, plus one injected checkpoint-write
/// failure at round 10. Returns the complete event journal and every
/// tenant's final `(ticks, checksum)`.
fn run_chaos(workers: usize) -> (Vec<FleetEvent>, Vec<(String, u64, u64)>) {
    let dir = tmpdir(&format!("chaos-w{workers}"));
    let mut fleet = Fleet::new(chaos_config(workers), &dir);
    for (name, seed) in HEALTHY {
        fleet
            .admit(name, tenant_chip(seed as u32))
            .expect("admit healthy");
    }
    fleet
        .admit("hog", echo_chip(8, 5, CoreScheduling::Sweep))
        .expect("admit hog");
    fleet
        .admit("victim", tenant_chip(VICTIM_SEED as u32))
        .expect("admit victim");

    let mut upto: Vec<u64> = vec![0; HEALTHY.len() + 1];
    for round in 0..ROUNDS {
        if round == 6 {
            // Rot the newest checkpoint on disk, then poison one core:
            // the next driven tick panics and recovery must fall back
            // past the damage.
            let ckpt_dir = fleet.tenant_state_dir("victim");
            let newest = CheckpointPolicy::list(&ckpt_dir)
                .expect("list victim checkpoints")
                .pop()
                .expect("victim has checkpoints");
            flip_last_byte(&newest.1);
            assert!(fleet.chaos_poison_core("victim", 0));
        }
        if round == 10 {
            // One transient write failure with a 1-attempt retry budget:
            // the next due checkpoint write (slot order: t0, round 11)
            // must fail without hurting the session.
            inject_write_failures(1);
        }
        for (i, (name, seed)) in HEALTHY.iter().enumerate() {
            top_up(&mut fleet, name, *seed, &mut upto[i]);
        }
        let n = HEALTHY.len();
        top_up(&mut fleet, "victim", VICTIM_SEED, &mut upto[n]);
        fleet.run_round();
    }

    // Mid-run probe: the hog must be quarantined right now, and a submit
    // against it must say so with the round it frees up.
    match fleet.submit(
        "hog",
        InjectCmd {
            x: 0,
            y: 0,
            word: 0,
            bits: 1,
            target_tick: 10_000,
        },
    ) {
        Err(SubmitError::Quarantined { until_round }) => assert!(until_round >= ROUNDS),
        other => panic!("expected hog quarantined, got {other:?}"),
    }

    let events = fleet.drain_events();
    let mut finals = Vec::new();
    for name in ["t0", "t1", "t2", "t3", "hog", "victim"] {
        let view = fleet.session(name).expect("view");
        finals.push((name.to_string(), view.ticks, view.checksum));
    }

    // Per-tenant supervision assertions (identical at every worker
    // count, so checked inside the scenario).
    let victim = fleet.session("victim").expect("victim view");
    assert_eq!(victim.metrics.panics, 1);
    assert_eq!(victim.metrics.recoveries, 1);
    assert!(victim.metrics.corrupt_checkpoints_skipped >= 1);
    assert!(victim.metrics.replayed_injections >= 1);
    assert_eq!(victim.metrics.deadline_misses, 0);

    let hog = fleet.session("hog").expect("hog view");
    assert!(hog.metrics.deadline_misses > 0);
    assert!(hog.metrics.demotions >= 1);
    assert!(hog.metrics.quarantines >= 1);
    assert!(matches!(hog.state, SessionState::Quarantined { .. }));

    let mut checkpoint_failures = 0;
    for (name, _) in HEALTHY {
        let view = fleet.session(name).expect("healthy view");
        assert_eq!(view.metrics.deadline_misses, 0, "{name} missed a deadline");
        assert_eq!(view.metrics.demotions, 0, "{name} was demoted");
        assert_eq!(view.metrics.panics, 0, "{name} panicked");
        checkpoint_failures += view.metrics.checkpoint_failures;
    }
    assert_eq!(
        checkpoint_failures, 1,
        "exactly one injected checkpoint write failure"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, FleetEvent::CheckpointFailed { .. })));

    let _ = std::fs::remove_dir_all(&dir);
    (events, finals)
}

#[test]
fn chaos_is_worker_count_invariant_and_crash_isolated() {
    let (baseline_events, baseline_finals) = run_chaos(1);

    // The journal must show the full story at least once.
    for probe in [
        "SessionPanicked",
        "CorruptCheckpointSkipped",
        "Recovered",
        "Demoted",
        "Quarantined",
        "Unquarantined",
        "CheckpointFailed",
    ] {
        assert!(
            baseline_events
                .iter()
                .any(|e| format!("{e:?}").starts_with(probe)),
            "journal is missing a {probe} event: {baseline_events:#?}"
        );
    }

    // Worker-count invariance: identical journal, identical finals.
    for workers in [2, 8] {
        let (events, finals) = run_chaos(workers);
        assert_eq!(
            events, baseline_events,
            "journal diverged at workers={workers}"
        );
        assert_eq!(
            finals, baseline_finals,
            "finals diverged at workers={workers}"
        );
    }

    // Crash isolation: every tenant — including the one that panicked,
    // lost its newest checkpoint, and replayed its inject log — ends
    // bit-identical to a solo twin that never shared the fleet.
    for (name, ticks, checksum) in &baseline_finals {
        let (twin, seed, with_stim) = match name.as_str() {
            "hog" => (echo_chip(8, 5, CoreScheduling::Sweep), 0, false),
            "victim" => (tenant_chip(VICTIM_SEED as u32), VICTIM_SEED, true),
            _ => {
                let seed = HEALTHY
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("known tenant")
                    .1;
                (tenant_chip(seed as u32), seed, true)
            }
        };
        assert_eq!(
            solo_checksum(twin, seed, *ticks, with_stim),
            *checksum,
            "{name} diverged from its solo twin after {ticks} ticks"
        );
    }
}

#[test]
fn backpressure_is_typed_and_hysteretic() {
    let dir = tmpdir("backpressure");
    let config = ServeConfig {
        workers: 2,
        max_tenants: 2,
        queue_capacity: 4,
        ticks_per_round: 4,
        degraded_ticks_per_round: 1,
        shed_high_watermark: 6,
        shed_low_watermark: 2,
        deadline: DeadlinePolicy::default(),
        checkpoint_every: 1_000,
        ..ServeConfig::default()
    };
    let mut fleet = Fleet::new(config, &dir);
    fleet.admit("a", tenant_chip(1)).expect("admit a");
    fleet.admit("b", tenant_chip(2)).expect("admit b");

    // Admission control.
    assert!(matches!(
        fleet.admit("a", tenant_chip(1)),
        Err(AdmitError::DuplicateTenant(_))
    ));
    assert!(matches!(
        fleet.admit("bad name", tenant_chip(3)),
        Err(AdmitError::InvalidTenant(_))
    ));
    assert!(matches!(
        fleet.admit("c", tenant_chip(3)),
        Err(AdmitError::FleetFull { max_tenants: 2 })
    ));
    assert!(matches!(
        fleet.submit(
            "ghost",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 1
            }
        ),
        Err(SubmitError::TenantUnknown(_))
    ));

    // Per-tenant queue bound.
    for t in 1..=4 {
        fleet
            .submit(
                "a",
                InjectCmd {
                    x: 0,
                    y: 0,
                    word: 0,
                    bits: 1,
                    target_tick: t,
                },
            )
            .expect("within capacity");
    }
    assert!(matches!(
        fleet.submit(
            "a",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 9
            }
        ),
        Err(SubmitError::QueueFull { capacity: 4 })
    ));

    // Fleet-wide shed-load: the 6th queued injection crosses the high
    // watermark; further submits are refused until the backlog drains to
    // the low watermark.
    fleet
        .submit(
            "b",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 1,
            },
        )
        .expect("5th");
    fleet
        .submit(
            "b",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 2,
            },
        )
        .expect("6th crosses the watermark");
    assert!(fleet.shedding());
    assert!(matches!(
        fleet.submit(
            "b",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 3
            }
        ),
        Err(SubmitError::Overloaded {
            backlog: 6,
            watermark: 2
        })
    ));

    // One round drains ticks 0..4: targets 1..=3 apply, target 4 stays
    // queued (tick 4 hasn't run) → backlog 1 ≤ low watermark → shedding
    // stops.
    let report = fleet.run_round();
    assert_eq!(report.backlog, 1);
    assert!(!report.shedding);
    fleet
        .submit(
            "b",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 6,
            },
        )
        .expect("shedding stopped");

    let events = fleet.drain_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, FleetEvent::SheddingStarted { backlog: 6, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, FleetEvent::SheddingStopped { backlog: 1, .. })));

    // Shutdown: no new admits or submits; reports are exported with the
    // chips' telemetry summaries.
    fleet.begin_shutdown();
    assert!(matches!(
        fleet.admit("late", tenant_chip(9)),
        Err(AdmitError::ShuttingDown)
    ));
    assert!(matches!(
        fleet.submit(
            "a",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 99
            }
        ),
        Err(SubmitError::ShuttingDown)
    ));
    let reports = fleet.shutdown();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].tenant, "a");
    assert_eq!(reports[1].tenant, "b");
    for report in &reports {
        assert_eq!(report.ticks, 4);
        let summary = report.summary.as_ref().expect("telemetry summary");
        assert_eq!(summary.ticks, 4);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_ladder_exhausts_to_typed_failure_without_hurting_bystanders() {
    let dir = tmpdir("ladder");
    let config = ServeConfig {
        workers: 2,
        ticks_per_round: 4,
        recovery: BackoffLadder::new(1, 2, 2),
        checkpoint_every: 8,
        checkpoint_keep: 2,
        ..ServeConfig::default()
    };
    let mut fleet = Fleet::new(config, &dir);
    fleet.admit("victim", tenant_chip(7)).expect("admit victim");
    fleet.admit("buddy", tenant_chip(8)).expect("admit buddy");

    let (mut v_upto, mut b_upto) = (0, 0);
    for _ in 0..4 {
        top_up(&mut fleet, "victim", 7, &mut v_upto);
        top_up(&mut fleet, "buddy", 8, &mut b_upto);
        fleet.run_round();
    }

    // Corrupt *every* retained checkpoint: recovery has nowhere to land.
    let ckpt_dir = fleet.tenant_state_dir("victim");
    let files = CheckpointPolicy::list(&ckpt_dir).expect("list");
    assert!(files.len() >= 2);
    for (_, path) in &files {
        flip_last_byte(path);
    }
    assert!(fleet.chaos_poison_core("victim", 1));

    // Round 4: panic + attempt 1 (fails, retry at round 5).
    // Round 5: attempt 2 (fails) → ladder exhausted → Failed.
    for _ in 0..2 {
        top_up(&mut fleet, "victim", 7, &mut v_upto);
        top_up(&mut fleet, "buddy", 8, &mut b_upto);
        fleet.run_round();
    }

    let victim = fleet.session("victim").expect("view");
    match &victim.state {
        SessionState::Failed(failure) => {
            assert_eq!(failure.attempts, 2);
            assert!(failure.reason.contains("no verifying checkpoint"));
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert!(matches!(
        fleet.submit(
            "victim",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 999
            }
        ),
        Err(SubmitError::SessionFailed)
    ));
    let events = fleet.drain_events();
    assert!(events.iter().any(|e| matches!(
        e,
        FleetEvent::RecoveryAttemptFailed {
            attempt: 1,
            retry_round: 5,
            ..
        }
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, FleetEvent::SessionFailed { .. })));

    // The bystander sailed through: bit-identical to its solo twin, with
    // a full six rounds of service.
    let buddy = fleet.session("buddy").expect("buddy view");
    assert_eq!(buddy.ticks, 24);
    assert_eq!(buddy.checksum, solo_checksum(tenant_chip(8), 8, 24, true));
    assert_eq!(buddy.metrics.panics, 0);

    // Eviction exports the terminal state; the slot is gone afterwards.
    let report = fleet.evict("victim").expect("report");
    assert!(matches!(report.state, SessionState::Failed(_)));
    assert_eq!(report.metrics.panics, 1);
    assert!(fleet.evict("victim").is_none());
    assert!(matches!(
        fleet.submit(
            "victim",
            InjectCmd {
                x: 0,
                y: 0,
                word: 0,
                bits: 1,
                target_tick: 1
            }
        ),
        Err(SubmitError::TenantUnknown(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_then_resume_continues_bit_identically() {
    let dir = tmpdir("resume");
    let config = ServeConfig {
        workers: 2,
        ticks_per_round: 4,
        degraded_ticks_per_round: 2,
        checkpoint_every: 8,
        ..ServeConfig::default()
    };

    // Life 1: 20 ticks of stimulus, then an orderly shutdown (which
    // takes a final checkpoint).
    let mut fleet = Fleet::new(config.clone(), &dir);
    fleet.admit("phoenix", tenant_chip(9)).expect("admit");
    let mut upto = 0;
    for _ in 0..5 {
        top_up(&mut fleet, "phoenix", 9, &mut upto);
        fleet.run_round();
    }
    let reports = fleet.shutdown();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].ticks, 20);
    let parked_checksum = reports[0].checksum;

    // Life 2: resume from disk. The fallback chip must NOT be used.
    let mut fleet = Fleet::new(config, &dir);
    fleet
        .resume("phoenix", tenant_chip(999))
        .expect("resume from checkpoint");
    let view = fleet.session("phoenix").expect("view");
    assert_eq!(view.ticks, 20);
    assert_eq!(view.checksum, parked_checksum);
    assert!(
        matches!(view.state, SessionState::Degraded),
        "resume re-enters on probation"
    );
    let events = fleet.drain_events();
    assert!(events.iter().any(|e| matches!(
        e,
        FleetEvent::Admitted {
            resumed_from: Some(20),
            ..
        }
    )));

    // Continue the stimulus; the resumed session must stay bit-identical
    // to one uninterrupted solo run. Queued-but-unapplied injections are
    // not persisted across shutdown (clients resubmit), so the stimulus
    // mark rewinds to the restored tick.
    upto = view.ticks;
    for _ in 0..3 {
        top_up(&mut fleet, "phoenix", 9, &mut upto);
        fleet.run_round();
    }
    let view = fleet.session("phoenix").expect("view");
    assert_eq!(view.ticks, 26);
    assert_eq!(view.checksum, solo_checksum(tenant_chip(9), 9, 26, true));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The measured tenant class for the overhead experiment: an 8×8
/// full-sweep echo chip, heavy enough (64 cores/tick) that real tick
/// work swamps the session bookkeeping and the host timer's noise
/// floor, which on this 1-CPU host sits near the 2×2 chip's ~400 ns.
fn measured_chip(seed: u64) -> Chip {
    echo_chip(8, seed as u32, CoreScheduling::Sweep)
}

/// Drives one fleet with the given tenants for `ticks + warmup` ticks
/// (unlimited budget, workers = 1, checkpoints off) and returns each
/// tenant's steady-state metered ns/tick, warmup excluded.
fn measure_fleet(tag: &str, tenants: &[(String, u64)], ticks: u64, warmup: u64) -> Vec<u64> {
    let dir = tmpdir(tag);
    let mut fleet = Fleet::new(
        ServeConfig {
            workers: 1,
            ticks_per_round: 64,
            checkpoint_every: u64::MAX,
            deadline: DeadlinePolicy {
                budget: BudgetMeter::Unlimited,
                ..DeadlinePolicy::default()
            },
            ..ServeConfig::default()
        },
        &dir,
    );
    for (name, seed) in tenants {
        fleet.admit(name, measured_chip(*seed)).expect("admit");
    }
    let mut upto = vec![0u64; tenants.len()];
    let mut warm_ns = vec![0u64; tenants.len()];
    let mut warm_ticks = vec![0u64; tenants.len()];
    while fleet.session(&tenants[0].0).expect("session").ticks < ticks + warmup {
        for (i, (name, seed)) in tenants.iter().enumerate() {
            let view = fleet.session(name).expect("session");
            let horizon = view.ticks + 80;
            while upto[i] < horizon {
                if let Some(cmd) = stim(*seed, upto[i]) {
                    fleet.submit(name, cmd).expect("submit");
                }
                upto[i] += 1;
            }
            // Snapshot the meter at the warmup boundary so the steady
            // state is measured alone.
            let m = view.metrics;
            if m.ticks <= warmup {
                warm_ns[i] = m.wall_nanos;
                warm_ticks[i] = m.ticks;
            }
        }
        fleet.run_round();
    }
    let out = tenants
        .iter()
        .enumerate()
        .map(|(i, (name, seed))| {
            let view = fleet.session(name).expect("session");
            let m = view.metrics;
            assert_eq!(
                view.checksum,
                solo_checksum(measured_chip(*seed), *seed, view.ticks, true),
                "overhead run must still be bit-identical"
            );
            (m.wall_nanos - warm_ns[i]) / (m.ticks - warm_ticks[i])
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Not a CI gate — a recorded experiment (EXPERIMENTS.md § Multi-tenant
/// serving). Measures the per-tick latency a tenant observes inside a
/// fully loaded 8-tenant fleet against the same session hosted alone in
/// a fleet-of-1 (identical metering, identical machinery — the ratio
/// isolates *cross-tenant* interference, the acceptance bar, ≤ 1.5×),
/// plus a raw `Chip::try_tick` loop as context for the fixed session
/// bookkeeping cost. Minimum estimator over 3 reps throughout.
///
/// Run with: `cargo test --release --test serve -- --ignored --nocapture`
#[test]
#[ignore = "experiment: prints solo vs in-fleet latency for EXPERIMENTS.md"]
fn experiment_fleet_overhead() {
    const SEEDS: [u64; 8] = [11, 22, 33, 44, 55, 66, 77, 88];
    const TICKS: u64 = 2048;
    const WARMUP: u64 = 256;
    const REPS: usize = 3;

    // Context baseline: the bare chip, wall time summed over exactly
    // the `try_tick` calls (the same probe `SessionMetrics::wall_nanos`
    // uses), no session machinery at all.
    let mut raw_ns = vec![u64::MAX; SEEDS.len()];
    for _ in 0..REPS {
        for (i, &seed) in SEEDS.iter().enumerate() {
            let mut chip = measured_chip(seed);
            let mut nanos = 0u64;
            for tick in 0..TICKS + WARMUP {
                if let Some(cmd) = stim(seed, tick) {
                    chip.inject_word(cmd.x, cmd.y, cmd.word, cmd.bits, cmd.target_tick)
                        .expect("solo inject");
                }
                let started = std::time::Instant::now();
                chip.try_tick().expect("solo tick");
                if tick >= WARMUP {
                    nanos += started.elapsed().as_nanos() as u64;
                }
            }
            raw_ns[i] = raw_ns[i].min(nanos / TICKS);
        }
    }

    let tenants: Vec<(String, u64)> = SEEDS.iter().map(|&s| (format!("m{s}"), s)).collect();
    let mut fleet1_ns = vec![u64::MAX; SEEDS.len()];
    let mut fleet8_ns = vec![u64::MAX; SEEDS.len()];
    for rep in 0..REPS {
        for (i, tenant) in tenants.iter().enumerate() {
            let ns = measure_fleet(
                &format!("ovh1-{rep}-{i}"),
                std::slice::from_ref(tenant),
                TICKS,
                WARMUP,
            );
            fleet1_ns[i] = fleet1_ns[i].min(ns[0]);
        }
        let ns = measure_fleet(&format!("ovh8-{rep}"), &tenants, TICKS, WARMUP);
        for (slot, sample) in fleet8_ns.iter_mut().zip(ns) {
            *slot = (*slot).min(sample);
        }
    }

    println!("tenant  raw chip  fleet-of-1  fleet-of-8  8/1 ratio");
    let mut worst = 0.0f64;
    for (i, (name, _)) in tenants.iter().enumerate() {
        let ratio = fleet8_ns[i] as f64 / fleet1_ns[i] as f64;
        worst = worst.max(ratio);
        println!(
            "{name:>6}  {:>8}  {:>10}  {:>10}  {ratio:.3}",
            raw_ns[i], fleet1_ns[i], fleet8_ns[i]
        );
    }
    println!("worst cross-tenant ratio (fleet-of-8 / fleet-of-1): {worst:.3} (bar: 1.5)");
}
