//! The neuron behaviour catalogue: one parameterised integer neuron (plus
//! the occasional helper neuron and axonal delay) reproduces the canonical
//! repertoire of biological spiking behaviours. Prints each behaviour's
//! spike raster and measured signature.
//!
//! Run with: `cargo run --example neuron_behaviors`

use brainsim::neuron::behavior;

fn main() {
    let results = behavior::run_all();
    let achieved = results.iter().filter(|r| r.achieved).count();
    println!(
        "behaviour catalogue: {achieved}/{} signatures achieved\n",
        results.len()
    );
    for result in &results {
        let mark = if result.achieved { "ok " } else { "FAIL" };
        println!("[{mark}] {:<32} {}", result.name, result.metric);
        if !result.raster.is_empty() {
            println!("       {}", result.raster.ascii());
        }
        println!("       circuit: {}\n", result.description);
    }
}
