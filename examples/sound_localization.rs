//! Sound-localisation kernel: a Jeffress delay-line array on the chip
//! estimates the inter-channel time difference (ITD) of pulse pairs.
//!
//! Run with: `cargo run --example sound_localization`

use brainsim::apps::coincidence::ItdEstimator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_itd = 4;
    let mut estimator = ItdEstimator::build(max_itd)?;
    println!(
        "delay-line array for ITD in -{max_itd}..={max_itd} ticks, {} cores",
        estimator.compiled().report().cores
    );
    println!("{:>10} {:>10}", "true ITD", "estimated");
    let mut correct = 0;
    for itd in -max_itd..=max_itd {
        let estimate = estimator.estimate(itd);
        let shown = estimate.map_or("-".to_string(), |e| e.to_string());
        println!("{itd:>10} {shown:>10}");
        if estimate == Some(itd) {
            correct += 1;
        }
    }
    println!(
        "decoded {correct}/{} ITDs exactly",
        (2 * max_itd + 1) as usize
    );
    Ok(())
}
