//! Digit classification on the chip: float perceptron training, 4-level
//! quantisation onto the axon-type weight scheme, deployment, accuracy and
//! energy-per-classification reporting.
//!
//! Run with: `cargo run --release --example digit_classifier`

use brainsim::apps::classifier::{
    float_accuracy, quantize_row, suggest_threshold, train_perceptron, ChipClassifier,
    LifClassifier,
};
use brainsim::apps::digits;
use brainsim::energy::EnergyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = digits::generate(20, 0.02, 21);
    let test = digits::generate(8, 0.05, 99);
    println!(
        "train: {} samples, test: {} samples",
        train.len(),
        test.len()
    );

    // Floating-point training and reference accuracy.
    let weights = train_perceptron(&train, 15);
    let float_acc = float_accuracy(&weights, &test);

    // Quantise to 4 signed levels per class — the axon-type budget.
    let quantized: Vec<Vec<i32>> = weights.iter().map(|row| quantize_row(row, 32)).collect();
    let window = 16;
    let threshold = suggest_threshold(&quantized, &train, window);

    // Deploy on the chip.
    let mut chip = ChipClassifier::build(&quantized, threshold, window)?;
    println!(
        "mapped onto {} cores ({} physical neurons, {} axons)",
        chip.compiled().report().cores,
        chip.compiled().report().physical_neurons,
        chip.compiled().report().axons_used,
    );
    let chip_acc = chip.accuracy(&test);

    // Floating-point LIF baseline (clock-driven simulator, full precision).
    let mut lif = LifClassifier::build(&weights, threshold as f64, window);
    let lif_acc = lif.accuracy(&test);

    println!("float dot-product accuracy : {float_acc:.3}");
    println!("float LIF baseline accuracy: {lif_acc:.3}");
    println!("quantised chip accuracy    : {chip_acc:.3}");

    // Energy per classification from the event census.
    let census = chip.compiled().chip().census();
    let report = EnergyModel::default().report(&census);
    let per_image_uj = report.active_energy_j * 1e6 / test.len() as f64;
    println!(
        "energy: {:.3} µJ/classification ({:.1} mW equivalent chip power)",
        per_image_uj, report.total_mw
    );
    Ok(())
}
