//! Chip power vs activity: a miniature version of the power experiment
//! (figure F2) — random cores at increasing firing rates, reporting the
//! event-census power split.
//!
//! Run with: `cargo run --release --example chip_power`

use brainsim::chip::{ChipBuilder, ChipConfig};
use brainsim::core::{AxonTarget, AxonType, CoreOffset, Destination};
use brainsim::energy::EnergyModel;
use brainsim::neuron::{Lfsr, NeuronConfig, Weight};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (width, height) = (4, 4);
    let (axons, neurons) = (64, 64);
    let density_percent = 12;
    let ticks = 500;

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "rate (Hz)", "active mW", "static mW", "total mW", "GSOPS/W"
    );
    for rate_hz in [0, 10, 20, 50, 100, 200] {
        // Build a fresh random chip: each neuron forwards to a random axon
        // of a neighbouring core; external noise drives the input axons.
        let mut builder = ChipBuilder::new(ChipConfig {
            width,
            height,
            core_axons: axons,
            core_neurons: neurons,
            ..ChipConfig::default()
        });
        let mut rng = Lfsr::new(7);
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::new(4)?)
            .threshold(12)
            .leak(-1)
            .leak_reversal(true)
            .negative_threshold(0)
            .build()?;
        for y in 0..height {
            for x in 0..width {
                let core = builder.core_mut(x, y);
                for a in 0..axons {
                    for n in 0..neurons {
                        if rng.bernoulli_256((256 * density_percent / 100) as u32) {
                            core.synapse(a, n, true)?;
                        }
                    }
                }
                for n in 0..neurons {
                    let dx = if x + 1 < width { 1 } else { -1 };
                    let target = AxonTarget {
                        offset: CoreOffset::new(dx, 0),
                        axon: (rng.next_u32() as usize % axons) as u16,
                        delay: 1 + (rng.next_u32() % 4) as u8,
                    };
                    core.neuron(n, config.clone(), Destination::Axon(target))?;
                }
            }
        }
        let mut chip = builder.build()?;

        // Poisson-ish external drive at the requested mean rate (ticks are
        // 1 ms, so rate in Hz = probability × 1000).
        let p_numerator = (rate_hz as u32 * 256) / 1000;
        let mut noise = Lfsr::new(99);
        for t in 0..ticks {
            for y in 0..height {
                for x in 0..width {
                    for a in 0..axons {
                        if noise.bernoulli_256(p_numerator) {
                            chip.inject(x, y, a, t)?;
                        }
                    }
                }
            }
            chip.tick();
        }

        let report = EnergyModel::default().report(&chip.census());
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3} {:>14.2}",
            rate_hz, report.active_mw, report.static_mw, report.total_mw, report.gsops_per_watt
        );
    }
    Ok(())
}
