//! Two-layer network on the chip: random 8×8 patch features (binary ±1
//! weights — cheap on a binary crossbar) feeding a trained readout layer,
//! the EEDN-style deployment pattern.
//!
//! Run with: `cargo run --release --example deep_network`

use brainsim::apps::deep::{
    float_feature_accuracy, suggest_readout_threshold, train_readout, DeepClassifier, FeatureBank,
};
use brainsim::apps::digits;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = digits::generate(20, 0.02, 41);
    let test = digits::generate(5, 0.05, 77);

    let bank = FeatureBank::random(80, 8, 8, 13);
    println!("feature layer: {} random 8x8-patch detectors", bank.len());

    let readout = train_readout(&bank, &train, 25);
    let float_acc = float_feature_accuracy(&bank, &readout, &test);
    println!("float accuracy on emulated feature rates: {float_acc:.3}");

    let threshold = suggest_readout_threshold(&bank, &readout, &train);
    let mut deep = DeepClassifier::build(&bank, &readout, threshold, 24)?;
    let report = *deep.compiled().report();
    println!(
        "compiled: {} cores ({}x{} grid), {} axons, {} relay neurons",
        report.cores, report.grid.0, report.grid.1, report.axons_used, report.relays
    );

    let chip_acc = deep.accuracy(&test);
    println!("on-chip accuracy (quantised, rate-coded): {chip_acc:.3}");
    Ok(())
}
