//! Self-healing demo: a relay-chain network loses a neuron to a
//! structural fault mid-run, the health monitor condemns the silent core
//! from telemetry alone, the compiler re-places the network around the
//! condemned cell, and the chip hot-migrates onto the repaired layout
//! without losing a tick.
//!
//! ```text
//! cargo run --release --example self_healing -- [flags]
//!   --ticks N              ticks to run (default 240)
//!   --checkpoint-dir PATH  persist the pre-migration checkpoint here
//!                          (retry-guarded writes; see
//!                          BRAINSIM_SNAPSHOT_FAIL_WRITES in brainsim::snapshot)
//! ```
//!
//! The run is fully deterministic: the fault-plan seed is found by a
//! deterministic search for a "surgical" plan (exactly one dead neuron,
//! on an occupied cell, every spare cell clean), so the printed raster
//! checksum is stable and the `fault-recovery-soak` CI job pins it.
//!
//! Three runs are compared over the final 60 ticks: the fault-free
//! reference, a degraded run that never recovers, and the self-healing
//! run — which must converge back onto the reference.

use brainsim::compiler::{compile, CompileOptions, CompiledNetwork, NetworkMap};
use brainsim::corelet::{Corelet, LogicalNetwork, NodeRef};
use brainsim::faults::{FaultInjector, FaultPlan};
use brainsim::neuron::NeuronConfig;
use brainsim::recovery::{RecoveryEvent, RecoveryPolicy, SelfHealingRunner};

const CHAIN: usize = 8;
const GRID: (usize, usize) = (4, 4);
const ARM_AT: u64 = 60;
const DEAD_RATE: f64 = 0.12;

/// A relay chain of threshold-1 neurons, one logical neuron per core.
fn chain_net() -> Result<LogicalNetwork, Box<dyn std::error::Error>> {
    let mut c = Corelet::new("chain", 1);
    let t = NeuronConfig::builder().threshold(1).build()?;
    let pop = c.add_population(t, CHAIN);
    c.connect(NodeRef::Input(0), pop[0], 1, 1)?;
    for w in pop.windows(2) {
        c.connect(NodeRef::Neuron(w[0]), w[1], 1, 2)?;
    }
    c.mark_output(pop[CHAIN - 1])?;
    Ok(c.into_network())
}

fn options() -> CompileOptions {
    CompileOptions {
        core_axons: 4,
        core_neurons: 2,
        relay_reserve: 1,
        grid: Some(GRID),
        seed: 7,
        ..CompileOptions::default()
    }
}

/// Deterministic search for a surgical fault plan: exactly one dead
/// neuron on the whole grid, at the occupied slot of a used cell, so the
/// damage is guaranteed detectable and the repair provably curative.
fn surgical_plan(map: &NetworkMap) -> Option<(FaultPlan, (usize, usize))> {
    let (w, h) = map.grid;
    for seed in 0..10_000u64 {
        let plan = FaultPlan::new(seed).with_dead_neuron(DEAD_RATE);
        let inj = FaultInjector::new(&plan);
        let mut dead = Vec::new();
        for y in 0..h {
            for x in 0..w {
                for n in 0..2 {
                    if inj.neuron_fault(x, y, n).is_some() {
                        dead.push((x, y, n));
                    }
                }
            }
        }
        if let [(x, y, 0)] = dead[..] {
            if map.positions.contains(&(x, y)) {
                return Some((plan, (x, y)));
            }
        }
    }
    None
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn checksum(raster: &[Vec<bool>]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325;
    for row in raster {
        let bits: Vec<u8> = row.iter().map(|&b| b as u8).collect();
        fnv1a(&mut hash, &bits);
    }
    hash
}

/// Runs a plain compiled network with continuous stimulus, optionally
/// arming `plan` at [`ARM_AT`].
fn plain(mut compiled: CompiledNetwork, ticks: u64, plan: Option<&FaultPlan>) -> Vec<Vec<bool>> {
    let mut raster = Vec::with_capacity(ticks as usize);
    for t in 0..ticks {
        if t == ARM_AT {
            if let Some(plan) = plan {
                compiled.set_fault_plan(plan);
            }
        }
        compiled.inject(0, t).expect("port 0 exists");
        raster.push(compiled.tick());
    }
    raster
}

/// Ticks in the final 60 where the two rasters disagree.
fn divergence(a: &[Vec<bool>], b: &[Vec<bool>]) -> usize {
    let start = a.len().saturating_sub(60);
    (start..a.len()).filter(|&t| a[t] != b[t]).count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ticks: u64 = 240;
    let mut checkpoint_dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--ticks" => {
                ticks = it
                    .next()
                    .ok_or("--ticks requires a value")?
                    .parse()
                    .map_err(|e| format!("--ticks: {e}"))?;
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(std::path::PathBuf::from(
                    it.next().ok_or("--checkpoint-dir requires a value")?,
                ));
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    if ticks <= ARM_AT {
        return Err(format!("--ticks must exceed {ARM_AT} (the fault-arming tick)").into());
    }

    let net = chain_net()?;
    let opts = options();
    let map = compile(&net, &opts)?.network_map().clone();
    let (plan, damaged) = surgical_plan(&map).ok_or("no surgical fault-plan seed in range")?;
    println!(
        "chain of {CHAIN} cores on a {}x{} grid; fault plan kills the neuron at cell {damaged:?} at tick {ARM_AT}",
        GRID.0, GRID.1
    );

    let reference = plain(compile(&net, &opts)?, ticks, None);
    let degraded = plain(compile(&net, &opts)?, ticks, Some(&plan));
    println!(
        "fault-free reference: checksum {:#018x}",
        checksum(&reference)
    );
    println!(
        "degraded in place:    checksum {:#018x}, late-window divergence {} ticks",
        checksum(&degraded),
        divergence(&degraded, &reference)
    );

    let policy = RecoveryPolicy {
        checkpoint_dir,
        ..RecoveryPolicy::default()
    };
    let mut runner = SelfHealingRunner::new(net, opts, policy)?;
    let mut raster = Vec::with_capacity(ticks as usize);
    let mut reported = 0;
    for t in 0..ticks {
        if t == ARM_AT {
            runner.arm_fault_plan(&plan);
        }
        raster.push(runner.step(&[0]));
        for event in &runner.events()[reported..] {
            match event {
                RecoveryEvent::Condemned { tick, cells } => {
                    println!("tick {tick}: monitor condemned {cells:?}");
                }
                RecoveryEvent::Migrated { tick, moves } => {
                    for m in moves {
                        println!(
                            "tick {tick}: hot-migrated core {} from {:?} to {:?}",
                            m.core, m.from, m.to
                        );
                    }
                }
                RecoveryEvent::AttemptFailed {
                    tick,
                    error,
                    retry_at,
                } => {
                    println!("tick {tick}: recovery attempt failed ({error}); retry at {retry_at}");
                }
                RecoveryEvent::DegradedInPlace { tick, error } => {
                    println!("tick {tick}: degraded in place ({error})");
                }
            }
        }
        reported = runner.events().len();
    }

    println!(
        "self-healing:         checksum {:#018x}, late-window divergence {} ticks",
        checksum(&raster),
        divergence(&raster, &reference)
    );
    let stats = runner.stats();
    println!(
        "condemned {} cell(s), moved {} core(s), {} failed attempt(s)",
        stats.cells_condemned, stats.cores_moved, stats.failed_attempts
    );
    println!("recovery engaged: {}", stats.migrations);
    println!("raster checksum: {:#018x}", checksum(&raster));
    Ok(())
}
