//! Telemetry tour: instrument a chip, run it, and read the observability
//! surface — per-tick records, the cumulative run summary with its
//! per-core heatmap, and the JSONL export stream.
//!
//! Run with: `cargo run --example chip_report`

use brainsim::chip::{ChipBuilder, ChipConfig, TelemetryConfig};
use brainsim::core::{AxonTarget, AxonType, CoreOffset, Destination, NeuronConfig, Weight};
use brainsim::energy::EnergyModel;
use brainsim::telemetry::{render_heatmap, JsonlExporter, RunSummary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 4×2 relay grid: the top row forwards spikes east, the last core
    //    reports to output port 7; the bottom row stays silent (so the
    //    heatmap has something to show).
    let width = 4;
    let height = 2;
    let mut builder = ChipBuilder::new(ChipConfig {
        width,
        height,
        core_axons: 4,
        core_neurons: 4,
        ..ChipConfig::default()
    });
    let relay = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::new(1)?)
        .threshold(1)
        .build()?;
    for x in 0..width {
        let dest = if x + 1 < width {
            Destination::Axon(AxonTarget {
                offset: CoreOffset::new(1, 0),
                axon: 0,
                delay: 1,
            })
        } else {
            Destination::Output(7)
        };
        builder.core_mut(x, 0).neuron(0, relay.clone(), dest)?;
        builder.core_mut(x, 0).synapse(0, 0, true)?;
    }
    let mut chip = builder.build()?;

    // 2. Turn on telemetry before the run: every tick now appends a typed
    //    record to a ring-buffered log on the chip.
    chip.enable_telemetry(TelemetryConfig::unbounded());

    // 3. Drive it tick by tick: three widely spaced input spikes (injected
    //    as they fall due — the scheduler horizon is 16 ticks).
    for t in 0..24u64 {
        if t % 8 == 0 {
            chip.inject(0, 0, 0, t)?;
        }
        chip.tick();
    }

    // 4. Read the per-tick stream and the run-level aggregates.
    let log = chip.telemetry().expect("telemetry was enabled");
    let active_ticks = log.records().filter(|r| r.spikes > 0).count();
    println!(
        "{} records, {} ticks with spikes, mean quiescence {:.0}%",
        log.len(),
        active_ticks,
        log.summary().quiescence_rate() * 100.0
    );
    println!("{}", log.summary().render_table(&EnergyModel::default()));
    if let Some(map) = RunSummary::heatmap(&log.summary().core_spikes, width, height) {
        println!("per-core spike heatmap:");
        println!("{}", render_heatmap(&map));
    }

    // 5. Export the record stream as JSON Lines (here to a string; any
    //    `io::Write` sink works the same way).
    let mut exporter = JsonlExporter::new(Vec::new());
    log.replay(&mut exporter);
    let jsonl = String::from_utf8(exporter.finish()?)?;
    let first_line = jsonl.lines().next().unwrap_or_default();
    println!(
        "jsonl: {} lines, first: {first_line}",
        jsonl.lines().count()
    );
    Ok(())
}
