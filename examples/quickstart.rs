//! Quickstart: describe a small spiking network logically, compile it onto
//! the neurosynaptic chip, drive it with input spikes and read the output
//! raster.
//!
//! Run with: `cargo run --example quickstart`

use brainsim::compiler::{compile, CompileOptions};
use brainsim::corelet::{Corelet, NodeRef};
use brainsim::energy::EnergyModel;
use brainsim::neuron::NeuronConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the network with a corelet: a 3-stage relay chain with a
    //    leaky-integrator tail that only fires on bursts.
    let mut corelet = Corelet::new("quickstart", 1);
    let relay = NeuronConfig::builder().threshold(1).build()?;
    let integrator = NeuronConfig::builder()
        .threshold(3)
        .leak(-1)
        .leak_reversal(true)
        .negative_threshold(0)
        .build()?;

    let a = corelet.add_neuron(relay.clone());
    let b = corelet.add_neuron(relay);
    let c = corelet.add_neuron(integrator);
    corelet.connect(NodeRef::Input(0), a, 1, 1)?;
    corelet.connect(NodeRef::Neuron(a), b, 1, 1)?;
    corelet.connect(NodeRef::Neuron(b), c, 2, 1)?;
    corelet.mark_output(c)?;

    // 2. Compile onto the chip.
    let mut compiled = compile(corelet.network(), &CompileOptions::default())?;
    println!("compiled: {:?}", compiled.report());

    // 3. Drive it: a burst of 3 input spikes, then silence, then a lone
    //    spike (which the integrator ignores).
    let raster = compiled.run(24, |t| {
        if (4..7).contains(&t) || t == 16 {
            vec![0]
        } else {
            Vec::new()
        }
    });

    // 4. Read the output raster.
    println!(
        "tick:   {}",
        (0..24)
            .map(|t| format!("{:>2}", t % 10))
            .collect::<String>()
    );
    let line: String = raster
        .iter()
        .map(|out| if out[0] { " |" } else { " ." })
        .collect();
    println!("output: {line}");

    // 5. Energy accounting comes for free from the event census.
    let report = EnergyModel::default().report(&compiled.chip().census());
    println!(
        "energy: {:.3} µJ active, {:.2} mW total (simulated time)",
        report.active_energy_j * 1e6,
        report.total_mw
    );
    Ok(())
}
