//! Quickstart: a deterministic recurrent chip driven tick by tick, with
//! crash-consistent checkpointing and deterministic resume.
//!
//! ```text
//! cargo run --release --example quickstart -- [flags]
//!   --ticks N             ticks to run (default 240)
//!   --checkpoint-every N  checkpoint cadence in ticks (0 = off; default 0)
//!   --snapshot-dir PATH   checkpoint directory (default target/quickstart-ckpt)
//!   --resume              resume from the newest verifying snapshot
//!   --tick-sleep-ms N     sleep per tick, to give a crash harness a window
//! ```
//!
//! The run folds every tick's output raster into a running FNV-1a
//! checksum, carried inside each snapshot's application section; the final
//! line prints it. Kill the process at any instant — mid-run or mid-write
//! (see `BRAINSIM_SNAPSHOT_HOLD_WRITE` in `brainsim::snapshot`) — and a
//! `--resume` run finishes with the identical checksum an uninterrupted
//! run prints: that is the crash-consistency contract, and the
//! `checkpoint-crash` CI job enforces it.

use std::path::PathBuf;

use brainsim::chip::{CheckpointPolicy, Chip, ChipBuilder, ChipConfig, CoreScheduling, Snapshot};
use brainsim::core::{AxonTarget, CoreOffset, Destination};
use brainsim::energy::EnergyModel;
use brainsim::neuron::{AxonType, Lfsr, NeuronConfig, Weight};

const GRID: usize = 4;
const FANIN: usize = 16;
const SEED: u32 = 0xB5A1;

struct Args {
    ticks: u64,
    checkpoint_every: u64,
    snapshot_dir: PathBuf,
    resume: bool,
    tick_sleep_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ticks: 240,
        checkpoint_every: 0,
        snapshot_dir: PathBuf::from("target/quickstart-ckpt"),
        resume: false,
        tick_sleep_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--ticks" => args.ticks = value("--ticks")?.parse().map_err(|e| format!("{e}"))?,
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--snapshot-dir" => args.snapshot_dir = PathBuf::from(value("--snapshot-dir")?),
            "--resume" => args.resume = true,
            "--tick-sleep-ms" => {
                args.tick_sleep_ms = value("--tick-sleep-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// A deterministic recurrent 4×4 chip: per-core relays plus nearest-cell
/// recurrence seeded from a fixed LFSR, one output pad per core so the
/// raster (and its checksum) observes every core.
fn build_chip() -> Chip {
    let mut b = ChipBuilder::new(ChipConfig {
        width: GRID,
        height: GRID,
        core_axons: FANIN,
        core_neurons: FANIN,
        seed: SEED,
        threads: 2,
        scheduling: CoreScheduling::Active,
        ..ChipConfig::default()
    });
    let mut rng = Lfsr::new(SEED);
    for y in 0..GRID {
        for x in 0..GRID {
            for n in 0..FANIN {
                let config = NeuronConfig::builder()
                    .weight(
                        AxonType::A0,
                        Weight::new(1 + (rng.next_u32() % 3) as i32).expect("static weight"),
                    )
                    .weight(AxonType::A1, Weight::new(-1).expect("static weight"))
                    .threshold(1 + rng.next_u32() % 4)
                    .leak(if rng.bernoulli_256(64) { -1 } else { 0 })
                    .leak_reversal(true)
                    .build()
                    .expect("static neuron parameters");
                let dest = if n == 0 {
                    Destination::Output((y * GRID + x) as u32)
                } else {
                    let dx = (rng.next_u32() % 3) as i32 - 1;
                    let dy = (rng.next_u32() % 3) as i32 - 1;
                    let tx = (x as i32 + dx).clamp(0, GRID as i32 - 1);
                    let ty = (y as i32 + dy).clamp(0, GRID as i32 - 1);
                    Destination::Axon(AxonTarget {
                        offset: CoreOffset::new(tx - x as i32, ty - y as i32),
                        axon: (rng.next_u32() as usize % FANIN) as u16,
                        delay: 1 + (rng.next_u32() % 3) as u8,
                    })
                };
                b.core_mut(x, y)
                    .neuron(n, config, dest)
                    .expect("static wiring");
                for a in 0..FANIN {
                    let bit = rng.bernoulli_256(56);
                    b.core_mut(x, y).synapse(a, n, bit).expect("static wiring");
                }
            }
        }
    }
    b.build().expect("static chip is valid")
}

/// Folds bytes into a running 64-bit FNV-1a hash.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| {
        eprintln!("usage error: {e}");
        e
    })?;

    // The checksum travels in the snapshot's application section, so a
    // resumed run continues folding the same raster stream.
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    let (mut chip, mut checksum) =
        if args.resume {
            match CheckpointPolicy::load_newest_verifying(&args.snapshot_dir)? {
                Some((tick, bytes)) => {
                    let snapshot = Snapshot::from_bytes(&bytes)?;
                    let checksum =
                        u64::from_le_bytes(snapshot.app.as_slice().try_into().map_err(|_| {
                            "snapshot application section is not an 8-byte checksum"
                        })?);
                    let chip = Chip::restore(snapshot)?;
                    eprintln!("resumed from tick {tick}");
                    (chip, checksum)
                }
                None => {
                    eprintln!("no verifying snapshot found; starting fresh");
                    (build_chip(), FNV_OFFSET)
                }
            }
        } else {
            (build_chip(), FNV_OFFSET)
        };

    let policy = CheckpointPolicy::new(args.checkpoint_every.max(1), 3);
    for t in chip.now()..args.ticks {
        // Periodic stimulus, a pure function of the tick number: 12 busy
        // ticks out of every 24, each axon striding its own phase. A pure
        // schedule needs no generator state in the snapshot.
        if t % 24 < 12 {
            for a in 0..FANIN {
                if (t + a as u64).is_multiple_of(3) {
                    chip.inject(a % GRID, (a / GRID) % GRID, a, t)?;
                }
            }
        }
        let summary = chip.tick();
        fnv1a(&mut checksum, &summary.tick.to_le_bytes());
        for port in &summary.outputs {
            fnv1a(&mut checksum, &port.to_le_bytes());
        }
        if args.tick_sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(args.tick_sleep_ms));
        }
        if args.checkpoint_every > 0 && policy.due(chip.now()) {
            let mut snapshot = chip.checkpoint();
            snapshot.app = checksum.to_le_bytes().to_vec();
            policy.save(&args.snapshot_dir, chip.now(), &snapshot.to_bytes())?;
        }
    }

    let report = EnergyModel::default().report(&chip.census());
    println!(
        "ticks: {}  outputs: {}  energy: {:.3} µJ",
        chip.now(),
        chip.outputs_total(),
        report.active_energy_j * 1e6,
    );
    println!("raster checksum: {checksum:#018x}");
    Ok(())
}
