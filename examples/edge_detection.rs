//! Orientation-selective edge detection: the filter-bank corelet applied to
//! a composite test image, printing per-orientation ASCII response maps.
//!
//! Run with: `cargo run --release --example edge_detection`

use brainsim::apps::edge::{EdgeFilterBank, Orientation};
use brainsim::encoding::Frame;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 12;
    // Composite scene: a horizontal bar (y = 3) and a vertical bar (x = 8).
    let mut pixels = vec![0.0; side * side];
    for x in 1..side - 1 {
        pixels[3 * side + x] = 1.0;
    }
    for y in 1..side - 1 {
        pixels[y * side + 8] = 1.0;
    }
    let frame = Frame::new(side, side, pixels);

    println!("input scene:");
    print_map(
        &frame
            .pixels()
            .iter()
            .map(|&p| (p * 9.0) as u32)
            .collect::<Vec<_>>(),
        side,
    );

    let mut bank = EdgeFilterBank::build(side, 6, 8)?;
    println!(
        "filter bank mapped onto {} cores",
        bank.compiled().report().cores
    );
    let maps = bank.respond(&frame);
    for (orientation, map) in Orientation::ALL.into_iter().zip(maps.iter()) {
        println!("\n{orientation:?} response (spike counts):");
        print_map(map, bank.out_side());
    }
    Ok(())
}

fn print_map(map: &[u32], side: usize) {
    for y in 0..side {
        let row: String = (0..side)
            .map(|x| {
                let v = map[y * side + x];
                if v == 0 {
                    " .".to_string()
                } else {
                    format!("{:>2}", v.min(99))
                }
            })
            .collect();
        println!("  {row}");
    }
}
