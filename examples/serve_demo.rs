//! Multi-tenant serving demo: eight tenants on one supervised fleet —
//! six well-behaved, one hostile cost hog (quarantined by the deadline
//! policy), one poisoned mid-run (its core panics; the supervisor
//! restores the newest verifying checkpoint and replays its injections).
//!
//! Every tenant is driven to exactly `--ticks` ticks and evicted, and
//! each prints one line:
//!
//! ```text
//! tenant t0: ticks=96 checksum=0x… state=running
//! ```
//!
//! The checksum folds every tick's output raster (the quickstart's
//! FNV-1a), and the stimulus is a pure function of the tick, so the
//! lines are a *pure function of `--ticks`*: kill this process at any
//! instant (`kill -9`), run again with `--resume`, and the surviving
//! tenants print the identical lines an uninterrupted run prints. The
//! `serve-soak` CI job enforces exactly that.

use std::path::PathBuf;

use brainsim::chip::{Chip, ChipBuilder, ChipConfig, CoreScheduling};
use brainsim::core::Destination;
use brainsim::neuron::{AxonType, NeuronConfig, Weight};
use brainsim::serve::{
    BackoffLadder, BudgetMeter, DeadlinePolicy, Fleet, FleetEvent, InjectCmd, ServeConfig,
    SessionState, TenantReport,
};

const HEALTHY: [(&str, u32); 6] = [
    ("t0", 101),
    ("t1", 102),
    ("t2", 103),
    ("t3", 104),
    ("t4", 105),
    ("t5", 106),
];
const HOG_SEED: u32 = 200;
const WILD_SEED: u32 = 300;
/// The tick at which the wild tenant's core is desynchronised.
const POISON_TICK: u64 = 48;

struct Args {
    ticks: u64,
    state_dir: PathBuf,
    resume: bool,
    workers: usize,
    round_sleep_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ticks: 96,
        state_dir: PathBuf::from("target/serve-demo"),
        resume: false,
        workers: 2,
        round_sleep_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--ticks" => args.ticks = value("--ticks")?.parse().map_err(|e| format!("{e}"))?,
            "--state-dir" => args.state_dir = PathBuf::from(value("--state-dir")?),
            "--resume" => args.resume = true,
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--round-sleep-ms" => {
                args.round_sleep_ms = value("--round-sleep-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // Tick plans advance tenants in steps of 8 (healthy) and 2
    // (degraded/probation); a multiple-of-8 target is hit exactly on
    // every path, which is what makes the kill/resume lines comparable.
    if args.ticks == 0 || !args.ticks.is_multiple_of(8) {
        return Err("--ticks must be a positive multiple of 8".to_string());
    }
    Ok(args)
}

fn relay_config() -> NeuronConfig {
    NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(1))
        .threshold(1)
        .build()
        .expect("static neuron parameters")
}

/// A grid of relay cores: axon `i` of core `c` echoes to output port
/// `c*8 + i`, so the checksum observes exactly which injections landed.
fn echo_chip(grid: usize, seed: u32, scheduling: CoreScheduling) -> Chip {
    let mut b = ChipBuilder::new(ChipConfig {
        width: grid,
        height: grid,
        core_axons: 8,
        core_neurons: 8,
        seed,
        threads: 1,
        scheduling,
        ..ChipConfig::default()
    });
    for y in 0..grid {
        for x in 0..grid {
            let core = (y * grid + x) as u32;
            for i in 0..8 {
                b.core_mut(x, y)
                    .neuron(i, relay_config(), Destination::Output(core * 8 + i as u32))
                    .expect("static wiring");
                b.core_mut(x, y).synapse(i, i, true).expect("static wiring");
            }
        }
    }
    b.build().expect("static chip is valid")
}

/// The deterministic stimulus: a pure function of `(seed, tick)`, so a
/// resumed process regenerates exactly the injections a killed one lost.
fn stim(seed: u64, tick: u64) -> Option<InjectCmd> {
    if tick.is_multiple_of(3) {
        return None;
    }
    let mixed = (seed ^ tick).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    Some(InjectCmd {
        x: (tick as usize) % 2,
        y: (mixed as usize >> 8) % 2,
        word: 0,
        bits: (mixed & 0xFF) | 1,
        target_tick: tick,
    })
}

fn state_name(state: &SessionState) -> String {
    match state {
        SessionState::Running => "running".to_string(),
        SessionState::Degraded => "degraded".to_string(),
        SessionState::Quarantined { .. } => "quarantined".to_string(),
        SessionState::Recovering { .. } => "recovering".to_string(),
        SessionState::Failed(_) => "failed".to_string(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| {
        eprintln!("usage error: {e}");
        e
    })?;

    let config = ServeConfig {
        workers: args.workers,
        max_tenants: 8,
        queue_capacity: 256,
        ticks_per_round: 8,
        degraded_ticks_per_round: 2,
        shed_high_watermark: 100_000,
        shed_low_watermark: 50_000,
        deadline: DeadlinePolicy {
            // Cost units are deterministic, so every demotion/quarantine
            // decision replays identically across runs and worker counts.
            budget: BudgetMeter::CostUnitsPerTick(60),
            demote_after: 2,
            promote_after: 4,
            quarantine_after: 3,
            quarantine_rounds: 6,
        },
        recovery: BackoffLadder::new(1, 4, 3),
        checkpoint_every: 16,
        checkpoint_keep: 3,
        checkpoint_retry: Default::default(),
    };
    let mut fleet = Fleet::new(config, &args.state_dir);

    let mut tenants: Vec<(String, u64, bool)> = Vec::new(); // (name, seed, stimulated)
    for (name, seed) in HEALTHY {
        tenants.push((name.to_string(), seed as u64, true));
    }
    tenants.push(("hog".to_string(), HOG_SEED as u64, false));
    tenants.push(("wild".to_string(), WILD_SEED as u64, true));

    for (name, seed, _) in &tenants {
        let chip = match name.as_str() {
            // 8×8 under full-sweep scheduling: ≥ 64 cost units every
            // tick, permanently over the 60-unit budget — the hostile
            // tenant the deadline policy must contain.
            "hog" => echo_chip(8, *seed as u32, CoreScheduling::Sweep),
            _ => echo_chip(2, *seed as u32, CoreScheduling::Active),
        };
        if args.resume {
            fleet.resume(name, chip)?;
        } else {
            fleet.admit(name, chip)?;
        }
        let view = fleet.session(name).expect("admitted session");
        eprintln!(
            "admitted {name} at tick {}{}",
            view.ticks,
            if view.ticks > 0 { " (resumed)" } else { "" }
        );
    }

    let mut upto: Vec<u64> = tenants
        .iter()
        .map(|(name, _, _)| fleet.session(name).map_or(0, |v| v.ticks))
        .collect();
    let mut poisoned = false;
    let mut reports: Vec<TenantReport> = Vec::new();

    let fuse = 64 + args.ticks * 4; // quarantine cycles make the hog slow
    for _round in 0..fuse {
        // Evict every tenant that has reached the target exactly — before
        // driving, so a resumed session already at the target is not
        // driven past it.
        for (name, _, _) in &tenants {
            let Some(view) = fleet.session(name) else {
                continue;
            };
            if view.ticks >= args.ticks {
                if let Some(report) = fleet.evict(name) {
                    reports.push(report);
                }
            }
        }
        if fleet.tenants().is_empty() {
            break;
        }
        // Poison the wild tenant the first time it crosses the poison
        // tick in this process: its next driven tick panics, and the
        // supervisor must restore + replay.
        if !poisoned {
            if let Some(view) = fleet.session("wild") {
                if view.ticks >= POISON_TICK && view.ticks < args.ticks {
                    assert!(fleet.chaos_poison_core("wild", 0));
                    poisoned = true;
                    eprintln!("poisoned tenant wild at tick {}", view.ticks);
                }
            }
        }
        for (i, (name, seed, stimulated)) in tenants.iter().enumerate() {
            if !stimulated {
                continue;
            }
            let Some(view) = fleet.session(name) else {
                continue;
            };
            let horizon = view.ticks.saturating_add(24).min(args.ticks);
            while upto[i] < horizon {
                if let Some(cmd) = stim(*seed, upto[i]) {
                    if fleet.submit(name, cmd).is_err() {
                        break;
                    }
                }
                upto[i] += 1;
            }
        }
        fleet.run_round();
        for event in fleet.drain_events() {
            match event {
                FleetEvent::SessionPanicked { tenant, tick, .. } => {
                    eprintln!("contained panic: tenant {tenant} at tick {tick}");
                }
                FleetEvent::Recovered {
                    tenant,
                    from_tick,
                    replayed,
                    corrupt_skipped,
                    ..
                } => {
                    eprintln!(
                        "recovered: tenant {tenant} from tick {from_tick} \
                         ({replayed} injections replayed, {corrupt_skipped} corrupt skipped)"
                    );
                }
                FleetEvent::Quarantined {
                    tenant,
                    until_round,
                    ..
                } => {
                    eprintln!("quarantined: tenant {tenant} until round {until_round}");
                }
                FleetEvent::SessionFailed {
                    tenant, failure, ..
                } => {
                    eprintln!("FAILED: tenant {tenant}: {}", failure.reason);
                }
                _ => {}
            }
        }
        if args.round_sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(args.round_sleep_ms));
        }
    }

    for (name, _, _) in &tenants {
        let Some(view) = fleet.session(name) else {
            continue;
        };
        if view.ticks >= args.ticks {
            if let Some(report) = fleet.evict(name) {
                reports.push(report);
            }
        }
    }
    // Anything still in the fleet after the fuse is a bug in the demo.
    for name in fleet.tenants() {
        eprintln!("warning: tenant {name} never reached tick {}", args.ticks);
    }

    reports.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let mut total_ticks = 0u64;
    let mut total_nanos = 0u64;
    for report in &reports {
        println!(
            "tenant {}: ticks={} checksum={:#018x} state={}",
            report.tenant,
            report.ticks,
            report.checksum,
            state_name(&report.state),
        );
        total_ticks += report.metrics.ticks;
        total_nanos += report.metrics.wall_nanos;
    }
    if let Some(mean) = total_nanos.checked_div(total_ticks) {
        eprintln!("drove {total_ticks} tenant-ticks, mean {mean} ns/tick");
    }
    Ok(())
}
