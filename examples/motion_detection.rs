//! Reichardt motion detection on the chip: delay-line/coincidence
//! detectors (composed from the corelet standard library) decode the
//! direction of a travelling flash.
//!
//! Run with: `cargo run --example motion_detection`

use brainsim::apps::motion::MotionDetector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pixels = 8;
    let lag = 3;
    let mut detector = MotionDetector::build(pixels, lag)?;
    println!(
        "{pixels}-pixel Reichardt array tuned to {lag} ticks/pixel, {} cores",
        detector.compiled().report().cores
    );
    println!(
        "{:>12} {:>12} {:>8} {:>8}",
        "sweep", "decoded", "R votes", "L votes"
    );
    for sweep in [3, -3, 2, -5] {
        let (direction, right, left) = detector.perceive(sweep);
        let label = if sweep > 0 { "rightward" } else { "leftward" };
        println!(
            "{:>9} x{} {:>12} {:>8} {:>8}",
            label,
            sweep.abs(),
            format!("{direction:?}"),
            right,
            left
        );
    }
    Ok(())
}
