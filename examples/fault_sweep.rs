//! F9 (reconstructed) — graceful degradation: classification accuracy vs
//! silicon defect rate.
//!
//! Trains the digit classifier once, deploys it on the chip, then sweeps a
//! uniform defect rate (dead neurons + stuck-at-0 synapses + link drops)
//! over several seeds per rate. The published claim for the architecture
//! family is *graceful* degradation: accuracy decays smoothly with yield
//! loss rather than cliff-dropping, because classification rides redundant
//! population rate codes.
//!
//! Run with: `cargo run --release --example fault_sweep`

use brainsim::apps::classifier::{
    quantize_row, suggest_threshold, train_perceptron, ChipClassifier,
};
use brainsim::apps::digits;
use brainsim::faults::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = digits::generate(20, 0.02, 21);
    let test = digits::generate(8, 0.05, 99);

    let weights = train_perceptron(&train, 15);
    let quantized: Vec<Vec<i32>> = weights.iter().map(|row| quantize_row(row, 32)).collect();
    let window = 16;
    let threshold = suggest_threshold(&quantized, &train, window);

    let mut clean = ChipClassifier::build(&quantized, threshold, window)?;
    let clean_acc = clean.accuracy(&test);
    println!(
        "clean chip accuracy {:.3} on {} cores ({} test samples, chance = 0.100)",
        clean_acc,
        clean.compiled().report().cores,
        test.len()
    );
    println!();
    println!(
        "{:>8}  {:>9}  {:>9}  {:>9}  {:>12}",
        "rate", "seed 1", "seed 2", "seed 3", "mean faults"
    );

    let rates = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50];
    let seeds = [101u64, 202, 303];
    for &rate in &rates {
        let mut accs = Vec::new();
        let mut fault_total = 0u64;
        for &seed in &seeds {
            // A fresh deployment per trial: fault plans burn structural
            // defects into the crossbars, so each seed gets its own chip.
            let mut chip = ChipClassifier::build(&quantized, threshold, window)?;
            chip.compiled_mut()
                .set_fault_plan(&FaultPlan::uniform(seed, rate));
            accs.push(chip.accuracy(&test));
            fault_total += chip.compiled().fault_stats().total();
        }
        println!(
            "{:>7.0}%  {:>9.3}  {:>9.3}  {:>9.3}  {:>12}",
            rate * 100.0,
            accs[0],
            accs[1],
            accs[2],
            fault_total / seeds.len() as u64
        );
    }
    println!();
    println!(
        "degradation is graceful: the rate-coded population argmax tolerates\n\
         single-digit defect rates with little accuracy loss and decays toward\n\
         chance (0.100) without ever failing to complete a run"
    );
    Ok(())
}
