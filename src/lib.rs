//! # brainsim
//!
//! A TrueNorth-class neurosynaptic-core architecture simulator: a
//! full-stack, from-scratch reproduction of the ASPLOS-era brain-inspired
//! computing system — digital spiking neuron, 256×256 crossbar core, mesh
//! network-on-chip, tick-deterministic chip runtime, corelet programming
//! model, mapping compiler, event-census energy model, reference SNN
//! baselines, and application kernels.
//!
//! This facade crate re-exports the workspace's public API under one roof.
//! The layer cake, bottom-up:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`neuron`] | `brainsim-neuron` | augmented integer LIF neuron, LFSR, behaviour catalogue |
//! | [`core`] | `brainsim-core` | crossbar, scheduler, the neurosynaptic core |
//! | [`noc`] | `brainsim-noc` | spike packets, DOR mesh routers, saturation model |
//! | [`chip`] | `brainsim-chip` | core array under the global tick barrier |
//! | [`energy`] | `brainsim-energy` | event-census power/efficiency model |
//! | [`corelet`] | `brainsim-corelet` | composable logical networks |
//! | [`compiler`] | `brainsim-compiler` | placement/routing/typing toolchain + interpreter oracle |
//! | [`snn`] | `brainsim-snn` | float LIF baseline + golden core |
//! | [`encoding`] | `brainsim-encoding` | rate/latency/population codecs |
//! | [`apps`] | `brainsim-apps` | classifier, edge filter bank, ITD estimator |
//! | [`telemetry`] | `brainsim-telemetry` | per-tick probes, ring sinks, JSONL/CSV exporters |
//! | [`snapshot`] | `brainsim-snapshot` | crash-consistent checkpoint container, codecs, retention policy |
//! | [`recovery`] | `brainsim-recovery` | self-healing runtime: fault detection, re-placement, hot migration |
//! | [`serve`] | `brainsim-serve` | multi-tenant serving runtime: deadlines, backpressure, crash-isolated recovery |
//!
//! ## Quickstart
//!
//! ```
//! use brainsim::compiler::{compile, CompileOptions};
//! use brainsim::corelet::{Corelet, NodeRef};
//! use brainsim::neuron::NeuronConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-neuron chain described logically...
//! let mut corelet = Corelet::new("chain", 1);
//! let template = NeuronConfig::builder().threshold(1).build()?;
//! let a = corelet.add_neuron(template.clone());
//! let b = corelet.add_neuron(template);
//! corelet.connect(NodeRef::Input(0), a, 1, 1)?;
//! corelet.connect(NodeRef::Neuron(a), b, 1, 2)?;
//! corelet.mark_output(b)?;
//!
//! // ...compiled onto the chip and driven tick by tick.
//! let mut compiled = compile(corelet.network(), &CompileOptions::default())?;
//! compiled.inject(0, 0)?;
//! let raster = compiled.run(5, |_| Vec::new());
//! assert!(raster[3][0]); // input@0 → a@1 → (delay 2) → b@3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One-stop imports for the common workflow: describe (corelet), compile,
/// run, account (energy).
///
/// ```
/// use brainsim::prelude::*;
///
/// let mut c = Corelet::new("p", 1);
/// let n = c.add_neuron(NeuronConfig::builder().threshold(1).build().unwrap());
/// c.connect(NodeRef::Input(0), n, 1, 1).unwrap();
/// c.mark_output(n).unwrap();
/// let mut compiled = compile(c.network(), &CompileOptions::default()).unwrap();
/// compiled.inject(0, 0).unwrap();
/// assert!(compiled.run(3, |_| Vec::new())[1][0]);
/// ```
pub mod prelude {
    pub use brainsim_compiler::{compile, CompileOptions, CompiledNetwork};
    pub use brainsim_corelet::{connectors, library, Corelet, NeuronId, NodeRef};
    pub use brainsim_encoding::{Frame, PopulationCode, RateCode, TimeToSpikeCode};
    pub use brainsim_energy::{EnergyModel, EventCensus};
    pub use brainsim_neuron::{AxonType, Lfsr, NeuronConfig, ResetMode, Weight};
}

pub use brainsim_apps as apps;
pub use brainsim_chip as chip;
pub use brainsim_compiler as compiler;
pub use brainsim_core as core;
pub use brainsim_corelet as corelet;
pub use brainsim_encoding as encoding;
pub use brainsim_energy as energy;
pub use brainsim_faults as faults;
pub use brainsim_neuron as neuron;
pub use brainsim_noc as noc;
pub use brainsim_recovery as recovery;
pub use brainsim_serve as serve;
pub use brainsim_snapshot as snapshot;
pub use brainsim_snn as snn;
pub use brainsim_telemetry as telemetry;
