//! Offline deterministic stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the [`Strategy`] composition algebra (`prop_map`, tuples,
//! ranges, [`Just`], `prop_oneof!`, `collection::vec`), the [`proptest!`]
//! test macro and the `prop_assert*` family — on top of a small
//! deterministic PRNG. There is no shrinking: a failing case panics with
//! the sampled inputs so it can be reproduced (the stream is a pure
//! function of the test name and case index).

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic xorshift64* stream used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived deterministically from a label (the test name).
    pub fn deterministic(label: &str) -> TestRng {
        // FNV-1a over the label, splitmix-finalised, never zero.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: splitmix(h) | 1,
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire multiply-shift; the slight bias is irrelevant for tests.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A failed property; produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A composable value generator.
///
/// Object safe: only [`Strategy::sample`] is dynamically dispatched; the
/// combinators require `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy yielding one constant value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

/// Types with a canonical unconstrained strategy ([`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span_m1 = (end as i128 - start as i128) as u128;
                    if span_m1 >= u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span_m1 as u64 + 1) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        // next_f64 is in [0, 1); stretch slightly so `end` is reachable.
        let t = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + t * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11),
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let boxed: ::std::boxed::Box<dyn $crate::Strategy<Value = _>> =
                    ::std::boxed::Box::new($option);
                boxed
            }),+
        ])
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: {:?} == {:?}: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Declares deterministic property tests.
///
/// Supports the proptest surface used in this workspace: an optional
/// leading `#![proptest_config(...)]`, then `#[test]` functions whose
/// arguments are drawn from strategies via `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Render the inputs before the body runs: the body may
                    // consume them, and on failure we want them printable.
                    let inputs = format!("{:#?}", ($(&$arg,)+));
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            error,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::sample(&(-5i16..=5), &mut rng);
            assert!((-5..=5).contains(&w));
            let f = Strategy::sample(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strategy = prop_oneof![Just(1u32), Just(2), Just(3)].prop_map(|v| v * 10);
        let mut rng = TestRng::deterministic("compose");
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let strategy = crate::collection::vec(0u8..4, 2..5);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 4));
        }
        let fixed = crate::collection::vec(0u8..4, 3);
        assert_eq!(fixed.sample(&mut rng).len(), 3);
    }

    proptest! {
        #[test]
        fn macro_smoke(a in 0u32..100, flag in any::<bool>()) {
            prop_assert!(a < 100);
            if flag {
                prop_assert_ne!(a, 1000);
            }
            prop_assert_eq!(a, a, "tick {}", a);
        }
    }
}
