//! Collection strategies (subset: `vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// A length constraint for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// See [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for `Vec`s of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_inclusive - self.size.min + 1;
        let len = self.size.min + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
