//! Offline minimal stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API the workspace uses — the
//! [`Buf`]/[`BufMut`] cursor traits and a growable [`BytesMut`] buffer —
//! with identical observable semantics for that subset. The build
//! environment is sealed (no registry access), so the wire-format code
//! links against this stub instead of crates.io.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read cursor over a contiguous byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt` exceeds [`Buf::remaining`].
    fn advance(&mut self, cnt: usize);

    /// Copies bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian unsigned integer of `nbytes` bytes (1..=8).
    fn get_uint(&mut self, nbytes: usize) -> u64 {
        assert!((1..=8).contains(&nbytes), "get_uint supports 1..=8 bytes");
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b[8 - nbytes..]);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends the low `nbytes` bytes of `v`, big-endian (1..=8).
    fn put_uint(&mut self, v: u64, nbytes: usize) {
        assert!((1..=8).contains(&nbytes), "put_uint supports 1..=8 bytes");
        self.put_slice(&v.to_be_bytes()[8 - nbytes..]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer with a read cursor (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
            read: 0,
        }
    }

    /// Unread bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns the first `at` unread bytes as a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if `at` exceeds [`BytesMut::len`].
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.data[self.read..self.read + at].to_vec();
        self.read += at;
        BytesMut {
            data: head,
            read: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.read..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.read += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_uint(0x1_2345_6789, 5);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.get_uint(5), 0x1_2345_6789);
        assert!(buf.is_empty());
    }

    #[test]
    fn u32_and_slice_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"AER1");
        buf.put_u32(7);
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"AER1");
        assert_eq!(buf.get_u32(), 7);
    }

    #[test]
    fn split_to_takes_prefix() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[1, 2, 3, 4, 5]);
        let mut head = buf.split_to(2);
        assert_eq!(head.get_u8(), 1);
        assert_eq!(head.get_u8(), 2);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.get_u8(), 3);
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[0, 0, 0, 9];
        assert_eq!(s.remaining(), 4);
        assert_eq!(s.get_u32(), 9);
        assert_eq!(s.remaining(), 0);
    }
}
