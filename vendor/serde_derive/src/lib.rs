//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace builds in a sealed environment with no registry access,
//! and nothing in the tree actually serialises data yet — the derives are
//! forward-looking annotations. These macros accept the same attribute
//! grammar and expand to nothing, so `#[derive(Serialize, Deserialize)]`
//! stays source-compatible with the real crate.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
