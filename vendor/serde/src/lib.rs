//! Offline trait-marker stand-in for `serde`.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so a real serialisation backend can be dropped in later,
//! but the sealed build environment has no registry access and nothing in
//! the tree serialises yet. This stub keeps the annotations compiling: the
//! traits are markers and the derives (re-exported from the sibling
//! `serde_derive` stub) expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
