//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `black_box`) with
//! a simple timed-batch measurement loop printing mean time per iteration.
//! It has no statistics engine; it exists so the benches compile and give
//! ballpark numbers in the sealed (registry-less) build environment.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement budget per benchmark (kept small: this is a smoke harness).
const TARGET_TIME: Duration = Duration::from_millis(200);
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }
}

/// A named collection of benchmarks (subset of criterion's).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Labels a benchmark with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Labels a benchmark by parameter value only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            f.write_str(&self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Runs the closure under measurement; handed to benchmark bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f`, batching calls until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TIME {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters.max(1) as u32);
        let batch = match per_iter {
            Some(d) if !d.is_zero() => {
                (TARGET_TIME.as_nanos() / d.as_nanos().max(1)).clamp(1, 10_000_000) as u64
            }
            _ => 10_000,
        };
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iterations = batch;
    }

    fn per_iteration(&self) -> Duration {
        self.elapsed
            .checked_div(self.iterations.max(1) as u32)
            .unwrap_or_default()
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    println!(
        "bench {label:<48} {:>12.3?}/iter ({} iters)",
        bencher.per_iteration(),
        bencher.iterations
    );
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
