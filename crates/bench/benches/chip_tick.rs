//! Tick-pipeline bench: the serial full-sweep seed path vs the active-core
//! scheduler at 1/2/4/8 threads, on a dense 8×8 workload (every core busy)
//! and a 95%-quiescent sparse island workload (3 of 64 cores busy).
//!
//! `src/bin/barometer.rs` sweeps the generated workload corpus (8×8 up to
//! the full-silicon 64×64) across a wider variant matrix, proves
//! bit-identity, and writes the committed `BENCH_barometer.jsonl` records.

use brainsim_bench::{drive_random, drive_random_cores, random_chip, RandomChipSpec};
use brainsim_chip::CoreScheduling;
use criterion::{criterion_group, criterion_main, Criterion};

const ISLAND: usize = 3;

fn dense_spec(threads: usize, scheduling: CoreScheduling) -> RandomChipSpec {
    RandomChipSpec {
        width: 8,
        height: 8,
        threads,
        scheduling,
        ..RandomChipSpec::default()
    }
}

fn sparse_spec(threads: usize, scheduling: CoreScheduling) -> RandomChipSpec {
    RandomChipSpec {
        island: Some(ISLAND),
        ..dense_spec(threads, scheduling)
    }
}

fn bench_chip_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip_tick");
    group.sample_size(10);

    group.bench_function("dense/sweep_t1", |b| {
        let mut chip = random_chip(&dense_spec(1, CoreScheduling::Sweep));
        b.iter(|| drive_random(&mut chip, 5, 32, 3));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("dense/active_t{threads}"), |b| {
            let mut chip = random_chip(&dense_spec(threads, CoreScheduling::Active));
            b.iter(|| drive_random(&mut chip, 5, 32, 3));
        });
    }

    group.bench_function("sparse/sweep_t1", |b| {
        let mut chip = random_chip(&sparse_spec(1, CoreScheduling::Sweep));
        b.iter(|| drive_random_cores(&mut chip, 5, 32, 3, ISLAND));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("sparse/active_t{threads}"), |b| {
            let mut chip = random_chip(&sparse_spec(threads, CoreScheduling::Active));
            b.iter(|| drive_random_cores(&mut chip, 5, 32, 3, ISLAND));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_chip_tick);
criterion_main!(benches);
