//! T3 bench: compile-time cost of greedy-only vs annealed placement (the
//! quality comparison is produced by `figures t3`).

use brainsim_compiler::{compile, CompileOptions};
use brainsim_corelet::{connectors, Corelet, NodeRef};
use brainsim_neuron::NeuronConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn workload() -> Corelet {
    let mut corelet = Corelet::new("placement-bench", 4);
    let template = NeuronConfig::builder().threshold(4).build().unwrap();
    let pop = corelet.add_population(template, 120);
    let pres: Vec<NodeRef> = pop.iter().map(|&p| NodeRef::Neuron(p)).collect();
    // Delay-3 links leave the splitter chains headroom on small cores.
    connectors::random(&mut corelet, &pres, &pop, 2, 3, 24, 5).unwrap();
    for i in 0..4 {
        corelet
            .connect(NodeRef::Input(i), pop[i * 17], 4, 1)
            .unwrap();
    }
    corelet
}

fn bench_placement(c: &mut Criterion) {
    let corelet = workload();
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    for (name, iters) in [("greedy_only", 0u32), ("annealed", 5_000)] {
        group.bench_with_input(BenchmarkId::new("compile", name), &iters, |b, &iters| {
            let options = CompileOptions {
                core_axons: 64,
                core_neurons: 24,
                relay_reserve: 8,
                anneal_iters: iters,
                ..CompileOptions::default()
            };
            b.iter(|| compile(corelet.network(), &options).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
