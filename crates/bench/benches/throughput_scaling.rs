//! F3 bench: event-driven chip simulation vs the clock-driven float
//! baseline at low and high activity — the event-driven advantage at low
//! rates and the clock-driven cost floor are the figure's shape.

use brainsim_bench::{
    drive_float_baseline, drive_random, hz_to_numerator, random_chip, random_float_baseline,
    RandomChipSpec,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for cores in [1usize, 4, 16] {
        for rate_hz in [10u32, 100] {
            let spec = RandomChipSpec {
                width: cores.min(4),
                height: cores.div_ceil(4),
                ..RandomChipSpec::default()
            };
            group.bench_with_input(
                BenchmarkId::new("chip", format!("{cores}c_{rate_hz}hz")),
                &(),
                |b, _| {
                    let mut chip = random_chip(&spec);
                    b.iter(|| drive_random(&mut chip, 10, hz_to_numerator(rate_hz), 3));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("float_baseline", format!("{cores}c_{rate_hz}hz")),
                &(),
                |b, _| {
                    let mut net = random_float_baseline(&spec);
                    let inputs = spec.width * spec.height * spec.axons;
                    b.iter(|| {
                        drive_float_baseline(&mut net, 10, hz_to_numerator(rate_hz), 3, inputs)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
