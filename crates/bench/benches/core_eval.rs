//! Ablation bench: dense vs sparse (event-driven) core evaluation as a
//! function of input activity. The event-driven path's cost tracks actual
//! synaptic events while the dense column scan pays per axon×neuron pair,
//! so sparse wins at every activity level — the quantitative argument for
//! the event-driven default (DESIGN.md, ablation for F3).

use brainsim_core::{AxonType, CoreBuilder, Destination, EvalStrategy, NeurosynapticCore};
use brainsim_neuron::{Lfsr, NeuronConfig, Weight};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build_core(strategy: EvalStrategy) -> NeurosynapticCore {
    let mut builder = CoreBuilder::new(256, 256);
    builder.strategy(strategy);
    let mut rng = Lfsr::new(0xC0DE);
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(2))
        .weight(AxonType::A3, Weight::saturating(-1))
        .threshold(40)
        .build()
        .unwrap();
    for n in 0..256 {
        builder
            .neuron(n, config.clone(), Destination::Disabled)
            .unwrap();
        for a in 0..256 {
            if rng.bernoulli_256(32) {
                builder.synapse(a, n, true).unwrap();
            }
        }
    }
    builder.build()
}

fn bench_core_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_eval");
    for active_axons in [2usize, 16, 64, 256] {
        for (name, strategy) in [
            ("dense", EvalStrategy::Dense),
            ("sparse", EvalStrategy::Sparse),
            ("swar", EvalStrategy::Swar),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, active_axons),
                &active_axons,
                |b, &active| {
                    let mut core = build_core(strategy);
                    let mut tick = 0u64;
                    b.iter(|| {
                        for a in 0..active {
                            core.deliver(a * (256 / active), tick).unwrap();
                        }
                        let fired = core.tick(tick);
                        tick += 1;
                        fired
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_core_eval);
criterion_main!(benches);
