//! F2 workload bench: simulation cost of the power-vs-rate sweep point
//! (the figure itself is produced by `figures f2`; this bench tracks the
//! simulator's cost per tick at each activity level).

use brainsim_bench::{drive_random, hz_to_numerator, random_chip, RandomChipSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_power_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_sweep");
    group.sample_size(10);
    for rate_hz in [10u32, 100] {
        for density in [16u32, 64] {
            let id = format!("{rate_hz}hz_d{density}");
            group.bench_with_input(BenchmarkId::new("tick", id), &(), |b, _| {
                let spec = RandomChipSpec {
                    width: 2,
                    height: 2,
                    density,
                    ..RandomChipSpec::default()
                };
                let mut chip = random_chip(&spec);
                b.iter(|| {
                    drive_random(&mut chip, 10, hz_to_numerator(rate_hz), 9);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_power_sweep);
criterion_main!(benches);
