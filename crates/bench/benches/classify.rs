//! T2 bench: per-image classification latency on the chip vs the float LIF
//! baseline (accuracy numbers come from `figures t2`).

use brainsim_apps::classifier::{
    quantize_row, suggest_threshold, train_perceptron, ChipClassifier, LifClassifier,
};
use brainsim_apps::digits;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_classify(c: &mut Criterion) {
    let train = digits::generate(10, 0.02, 21);
    let test = digits::generate(1, 0.05, 99);
    let weights = train_perceptron(&train, 8);
    let quantized: Vec<Vec<i32>> = weights.iter().map(|row| quantize_row(row, 32)).collect();
    let window = 16;
    let threshold = suggest_threshold(&quantized, &train, window);

    let mut group = c.benchmark_group("classify");
    group.sample_size(20);
    group.bench_function("chip_per_image", |b| {
        let mut chip = ChipClassifier::build(&quantized, threshold, window).unwrap();
        let frame = test[0].frame.clone();
        b.iter(|| chip.classify(&frame));
    });
    group.bench_function("lif_baseline_per_image", |b| {
        let mut lif = LifClassifier::build(&weights, threshold as f64, window);
        let frame = test[0].frame.clone();
        b.iter(|| lif.classify(&frame));
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
