//! F4 bench: mesh cycle cost under increasing injection rates (the latency
//! curve itself is produced by `figures f4`).

use brainsim_neuron::Lfsr;
use brainsim_noc::{MeshNoc, NocConfig, Packet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_noc(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_saturation");
    for rate_percent in [5u32, 25, 60] {
        group.bench_with_input(
            BenchmarkId::new("cycle", format!("{rate_percent}pct")),
            &rate_percent,
            |b, &rate| {
                let mut noc = MeshNoc::new(NocConfig::default());
                let mut rng = Lfsr::new(1);
                let numerator = rate * 256 / 100;
                b.iter(|| {
                    for y in 0..8usize {
                        for x in 0..8usize {
                            if rng.bernoulli_256(numerator) {
                                let tx = (rng.next_u32() % 8) as i16;
                                let ty = (rng.next_u32() % 8) as i16;
                                let packet =
                                    Packet::new(tx - x as i16, ty - y as i16, 0, 0).unwrap();
                                let _ = noc.inject(x, y, packet);
                            }
                        }
                    }
                    noc.cycle()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);
