//! Micro-bench for the bit-sliced SWAR integration kernel against the
//! scalar per-bit row walk it replaced, isolated from the rest of the tick
//! pipeline: accumulate N active rows of a 256×256 crossbar into per-neuron
//! per-type counters and extract them. The kernel's cost is dominated by
//! `O(active × words_per_row)` word operations (4 words per row at 256
//! neurons) where the scalar walk pays per set bit, so the gap widens with
//! crossbar density and activity.

use brainsim_core::{Crossbar, SwarKernel};
use brainsim_neuron::Lfsr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const AXONS: usize = 256;
const NEURONS: usize = 256;

fn build_crossbar(density: u32) -> Crossbar {
    let mut xb = Crossbar::new(AXONS, NEURONS);
    let mut rng = Lfsr::new(0xC0DE);
    for a in 0..AXONS {
        for n in 0..NEURONS {
            if rng.bernoulli_256(density) {
                xb.set(a, n, true);
            }
        }
    }
    xb
}

fn bench_swar_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("swar_kernel");
    let xb = build_crossbar(32);
    for active in [4usize, 16, 64, 256] {
        let rows: Vec<usize> = (0..active).map(|i| i * (AXONS / active)).collect();
        group.bench_with_input(BenchmarkId::new("scalar", active), &rows, |b, rows| {
            let mut counts = vec![0u32; NEURONS * 4];
            b.iter(|| {
                counts.fill(0);
                for &a in rows {
                    for n in xb.row_neurons(a) {
                        counts[n * 4 + (a % 4)] += 1;
                    }
                }
                counts[0]
            });
        });
        group.bench_with_input(BenchmarkId::new("swar", active), &rows, |b, rows| {
            let mut kernel = SwarKernel::new(NEURONS);
            let mut counts = vec![0u32; NEURONS * 4];
            b.iter(|| {
                counts.fill(0);
                for &a in rows {
                    kernel.accumulate_row(a % 4, xb.row_words(a));
                }
                kernel.flush_into(&mut counts);
                counts[0]
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_swar_kernel);
criterion_main!(benches);
