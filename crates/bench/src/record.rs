//! The barometer's versioned measurement record: one JSON object per line
//! (JSONL), one line per `(workload, variant)` measurement.
//!
//! The format is deliberately flat and stable — rebar-style — so records
//! diff cleanly in review, concatenate across runs, and survive schema
//! growth: readers ignore unknown keys, writers bump [`SCHEMA_VERSION`]
//! only on incompatible change. Serialisation is hand-rolled (the
//! workspace's `serde` is a no-op vendored stub); the parser is the same
//! key-scanning style the retired `bench_chip_tick` gate used.

use std::fmt::Write as _;

/// Version stamped into every record line. Bump only when an existing
/// field changes meaning; adding fields is backwards compatible.
///
/// * Schema 1: the original timing record.
/// * Schema 2: adds the memory-residency evidence — `peak_rss_bytes`
///   (process peak RSS over the variant's measured passes) and
///   `bytes_per_core` (that peak amortised over simulated cores).
pub const SCHEMA_VERSION: u32 = 2;

/// Whether this build can still read records of schema `version`.
/// Schema 1 lines parse with the schema-2 memory fields absent
/// ([`Record::peak_rss_bytes`] = `None`), so a committed schema-1
/// baseline keeps gating timings until it is regenerated — the `check`
/// gate simply has no memory verdicts to add for it.
pub fn schema_readable(version: u32) -> bool {
    version == SCHEMA_VERSION || version == 1
}

/// Host facts captured with every measurement, so a baseline produced on
/// one machine is never silently compared against another shape of host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Host {
    /// Available hardware parallelism (`std::thread::available_parallelism`).
    pub cpus: usize,
    /// Operating system family (`std::env::consts::OS`).
    pub os: &'static str,
}

impl Host {
    /// Detects the current host.
    pub fn detect() -> Host {
        Host {
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            os: std::env::consts::OS,
        }
    }
}

/// One measurement: a workload, the simulator variant that ran it, the
/// timing, and the conformance evidence (census checksum) that makes the
/// timing trustworthy.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Corpus workload name (or an ops workload like `chip_checkpoint`).
    pub workload: String,
    /// Variant label, e.g. `sweep_swar_t1` or `checkpoint_save`.
    pub variant: String,
    /// Unit of [`Record::value`]: `ns_per_tick` for corpus sweeps,
    /// `ns_per_op` for ops workloads.
    pub unit: &'static str,
    /// The measurement, in [`Record::unit`].
    pub value: f64,
    /// FNV-1a checksum over the run's per-tick rasters and final census —
    /// must match the workload's pinned checksum for the record to exist.
    pub census_checksum: u64,
    /// Measured ticks (or ops) behind [`Record::value`].
    pub ticks: u64,
    /// Cores on the simulated grid.
    pub cores: usize,
    /// Worker threads the variant requested.
    pub threads: usize,
    /// CPUs the measuring host actually had. Speedup claims divide
    /// honestly: a `threads: 8` number from a `host_cpus: 1` box is
    /// oversubscription, not parallel speedup.
    pub host_cpus: usize,
    /// Operating system family of the measuring host.
    pub os: String,
    /// `threads > host_cpus` at measurement time — carried in-band (not a
    /// stderr warning) so every consumer of the record sees it.
    pub oversubscribed: bool,
    /// Per-workload regression threshold the `check` gate applies to this
    /// record (ratio of fresh value to baseline value).
    pub check_factor: f64,
    /// Peak resident-set size (bytes) of the measuring process across this
    /// record's timed passes — the peak counter is reset before the first
    /// pass (see [`crate::mem`]), so the value bounds the variant's own
    /// working set: network build plus run. `None` on hosts without
    /// `/proc/self/status` and on schema-1 baseline lines.
    pub peak_rss_bytes: Option<u64>,
    /// [`Record::peak_rss_bytes`] divided by [`Record::cores`]: the
    /// sparse-residency headline. A quiescent-island workload must sit
    /// orders of magnitude below the dense bytes/core of the same grid.
    pub bytes_per_core: Option<u64>,
}

impl Record {
    /// Serialises the record as one JSONL line (no trailing newline),
    /// fields in fixed order.
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"schema\":{SCHEMA_VERSION},\"workload\":\"{}\",\"variant\":\"{}\",\"unit\":\"{}\",\"value\":{:.1},\"census_checksum\":\"{:#018x}\",\"ticks\":{},\"cores\":{},\"threads\":{},\"host_cpus\":{},\"os\":\"{}\",\"oversubscribed\":{},\"check_factor\":{}",
            self.workload,
            self.variant,
            self.unit,
            self.value,
            self.census_checksum,
            self.ticks,
            self.cores,
            self.threads,
            self.host_cpus,
            self.os,
            self.oversubscribed,
            self.check_factor,
        );
        if let Some(peak) = self.peak_rss_bytes {
            let _ = write!(s, ",\"peak_rss_bytes\":{peak}");
        }
        if let Some(per_core) = self.bytes_per_core {
            let _ = write!(s, ",\"bytes_per_core\":{per_core}");
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line. Returns `None` for blank lines, comments
    /// (`#`), lines of an unreadable schema version (see
    /// [`schema_readable`]), or lines missing a required field. Schema-1
    /// lines parse with the memory fields defaulted to `None` — the
    /// migration path for a committed schema-1 baseline.
    pub fn from_line(line: &str) -> Option<Record> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        if !schema_readable(json_field(line, "schema")?.parse::<u32>().ok()?) {
            return None;
        }
        let checksum = json_field(line, "census_checksum")?;
        let checksum = u64::from_str_radix(checksum.trim_start_matches("0x"), 16).ok()?;
        Some(Record {
            workload: json_field(line, "workload")?.to_string(),
            variant: json_field(line, "variant")?.to_string(),
            unit: match json_field(line, "unit")? {
                "ns_per_op" => "ns_per_op",
                _ => "ns_per_tick",
            },
            value: json_field(line, "value")?.parse().ok()?,
            census_checksum: checksum,
            ticks: json_field(line, "ticks")?.parse().ok()?,
            cores: json_field(line, "cores")?.parse().ok()?,
            threads: json_field(line, "threads")?.parse().ok()?,
            host_cpus: json_field(line, "host_cpus")?.parse().ok()?,
            os: json_field(line, "os")?.to_string(),
            oversubscribed: json_field(line, "oversubscribed")? == "true",
            check_factor: json_field(line, "check_factor")?.parse().ok()?,
            peak_rss_bytes: json_field(line, "peak_rss_bytes").and_then(|v| v.parse().ok()),
            bytes_per_core: json_field(line, "bytes_per_core").and_then(|v| v.parse().ok()),
        })
    }
}

/// Serialises records to JSONL (one line each, trailing newline).
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

/// Parses a JSONL document, skipping blanks/comments/foreign schemas.
pub fn from_jsonl(text: &str) -> Vec<Record> {
    text.lines().filter_map(Record::from_line).collect()
}

/// The schema version of the first record line in a JSONL document
/// (blanks and `#` comments are skipped; `None` on an empty document or
/// an unparsable head). `measure` refuses to replace a record file whose
/// head schema it cannot read ([`schema_readable`]) — a stale-toolchain
/// run must not silently clobber records it cannot even parse. Readable
/// older schemas (currently schema 1) are fair game to overwrite: that is
/// the migration path, a regenerating `measure` upgrades the file in
/// place.
pub fn head_schema(text: &str) -> Option<u32> {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| json_field(l, "schema")?.parse().ok())
}

/// Extracts the value of `"key":` from a flat JSON line — either a bare
/// scalar (up to the next `,`/`}`) or the body of a quoted string.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        Some(rest.split([',', '}']).next()?.trim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            workload: "nemo_8x8_lo".to_string(),
            variant: "sweep_swar_t1".to_string(),
            unit: "ns_per_tick",
            value: 123456.5,
            census_checksum: 0x0123_4567_89ab_cdef,
            ticks: 100,
            cores: 64,
            threads: 1,
            host_cpus: 1,
            os: "linux".to_string(),
            oversubscribed: false,
            check_factor: 1.25,
            peak_rss_bytes: Some(12_345_678),
            bytes_per_core: Some(192_901),
        }
    }

    #[test]
    fn line_round_trips() {
        let r = sample();
        let parsed = Record::from_line(&r.to_line()).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn memory_fields_are_omitted_when_absent() {
        let r = Record {
            peak_rss_bytes: None,
            bytes_per_core: None,
            ..sample()
        };
        let line = r.to_line();
        assert!(!line.contains("peak_rss_bytes"));
        assert!(!line.contains("bytes_per_core"));
        assert_eq!(Record::from_line(&line).expect("parses"), r);
    }

    #[test]
    fn schema_1_baseline_lines_still_parse() {
        // The committed pre-migration baseline: schema 1, no memory
        // fields. It must keep parsing (timing gates survive the schema
        // bump) with the memory fields defaulted out.
        let line = "{\"schema\":1,\"workload\":\"nemo_8x8_lo\",\"variant\":\"sweep_swar_t1\",\
                    \"unit\":\"ns_per_tick\",\"value\":123456.5,\
                    \"census_checksum\":\"0x0123456789abcdef\",\"ticks\":100,\"cores\":64,\
                    \"threads\":1,\"host_cpus\":1,\"os\":\"linux\",\"oversubscribed\":false,\
                    \"check_factor\":1.25}";
        let parsed = Record::from_line(line).expect("schema 1 is readable");
        assert_eq!(
            parsed,
            Record {
                peak_rss_bytes: None,
                bytes_per_core: None,
                ..sample()
            }
        );
        assert!(schema_readable(1));
        assert!(schema_readable(SCHEMA_VERSION));
        assert!(!schema_readable(99));
    }

    #[test]
    fn jsonl_round_trips_and_skips_noise() {
        let records = vec![
            sample(),
            Record {
                variant: "active_swar_t8".to_string(),
                threads: 8,
                oversubscribed: true,
                ..sample()
            },
        ];
        let text = format!("# comment\n\n{}", to_jsonl(&records));
        assert_eq!(from_jsonl(&text), records);
    }

    #[test]
    fn foreign_schema_lines_are_skipped() {
        let line = sample().to_line().replace("\"schema\":2", "\"schema\":99");
        assert!(line.contains("\"schema\":99"), "replacement applied");
        assert!(Record::from_line(&line).is_none());
    }

    #[test]
    fn head_schema_reads_first_record_line_only() {
        let current = format!("# comment\n\n{}\n", sample().to_line());
        assert_eq!(head_schema(&current), Some(SCHEMA_VERSION));
        let foreign = format!(
            "{}\n{}\n",
            sample().to_line().replace("\"schema\":2", "\"schema\":99"),
            sample().to_line(),
        );
        assert_eq!(head_schema(&foreign), Some(99));
        assert_eq!(head_schema("# only comments\n"), None);
        assert_eq!(head_schema(""), None);
        assert_eq!(head_schema("{\"no\":\"schema\"}\n"), None);
    }

    #[test]
    fn oversubscription_is_in_band() {
        let r = Record {
            threads: 8,
            host_cpus: 1,
            oversubscribed: true,
            ..sample()
        };
        assert!(r.to_line().contains("\"oversubscribed\":true"));
    }
}
