//! Rebar-style ranked-summary rendering: turns a set of sweep records
//! into the markdown tables EXPERIMENTS.md embeds — per-workload rankings
//! (ratio to the best variant) and a cross-workload geometric-mean
//! ranking, plus a plain table for the ops workloads.

use std::fmt::Write as _;

use crate::record::Record;

/// Renders the full markdown summary for a record set.
pub fn render(records: &[Record]) -> String {
    let mut out = String::new();
    let ticks: Vec<&Record> = records.iter().filter(|r| r.unit == "ns_per_tick").collect();
    let ops: Vec<&Record> = records.iter().filter(|r| r.unit == "ns_per_op").collect();

    if let Some(first) = records.first() {
        let oversub = if records.iter().any(|r| r.oversubscribed) {
            " Variants with threads > host cpus are marked oversubscribed: their \
             numbers measure scheduling overhead, not parallel speedup."
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "Host: {} cpu(s), {}. {} records.{oversub}\n",
            first.host_cpus,
            first.os,
            records.len(),
        );
    }

    for workload in ordered_workloads(&ticks) {
        let mut rows: Vec<&&Record> = ticks.iter().filter(|r| r.workload == workload).collect();
        rows.sort_by(|a, b| a.value.total_cmp(&b.value));
        let best = rows.first().map_or(1.0, |r| r.value);
        let cores = rows.first().map_or(0, |r| r.cores);
        let _ = writeln!(out, "### `{workload}` ({cores} cores)\n");
        let with_mem = rows.iter().any(|r| r.peak_rss_bytes.is_some());
        if with_mem {
            out.push_str(
                "| rank | variant | ns/tick | vs best | peak RSS | bytes/core | oversubscribed |\n",
            );
            out.push_str("|---:|---|---:|---:|---:|---:|---|\n");
        } else {
            out.push_str("| rank | variant | ns/tick | vs best | oversubscribed |\n");
            out.push_str("|---:|---|---:|---:|---|\n");
        }
        for (i, r) in rows.iter().enumerate() {
            let mem = if with_mem {
                format!(
                    " {} | {} |",
                    r.peak_rss_bytes
                        .map(|b| format!("{:.1} MiB", b as f64 / (1 << 20) as f64))
                        .unwrap_or_default(),
                    r.bytes_per_core.map(|b| format!("{b}")).unwrap_or_default(),
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "| {} | `{}` | {:.0} | {:.2}× |{mem} {} |",
                i + 1,
                r.variant,
                r.value,
                r.value / best,
                if r.oversubscribed { "yes" } else { "" },
            );
        }
        out.push('\n');
    }

    // Cross-workload ranking: geometric mean of each variant's ratio to
    // the per-workload best, over the workloads it appears in.
    let workloads = ordered_workloads(&ticks);
    if workloads.len() > 1 {
        let mut variants: Vec<String> = Vec::new();
        for r in &ticks {
            if !variants.contains(&r.variant) {
                variants.push(r.variant.clone());
            }
        }
        let mut ranked: Vec<(String, f64, usize)> = variants
            .into_iter()
            .filter_map(|variant| {
                let mut log_sum = 0.0;
                let mut n = 0usize;
                for w in &workloads {
                    let best = ticks
                        .iter()
                        .filter(|r| &r.workload == w)
                        .map(|r| r.value)
                        .fold(f64::INFINITY, f64::min);
                    if let Some(r) = ticks
                        .iter()
                        .find(|r| &r.workload == w && r.variant == variant)
                    {
                        log_sum += (r.value / best).ln();
                        n += 1;
                    }
                }
                (n > 0).then(|| (variant, (log_sum / n as f64).exp(), n))
            })
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        out.push_str("### Cross-workload ranking (geometric mean of ratio to best)\n\n");
        out.push_str("| rank | variant | geomean ratio | workloads |\n");
        out.push_str("|---:|---|---:|---:|\n");
        for (i, (variant, geo, n)) in ranked.iter().enumerate() {
            let _ = writeln!(out, "| {} | `{variant}` | {geo:.2}× | {n} |", i + 1);
        }
        out.push('\n');
    }

    if !ops.is_empty() {
        out.push_str("### Ops workloads\n\n");
        out.push_str("| workload | variant | ns/op |\n");
        out.push_str("|---|---|---:|\n");
        for r in &ops {
            let _ = writeln!(
                out,
                "| `{}` | `{}` | {:.0} |",
                r.workload, r.variant, r.value
            );
        }
        out.push('\n');
    }
    out
}

fn ordered_workloads(records: &[&Record]) -> Vec<String> {
    let mut names = Vec::new();
    for r in records {
        if !names.contains(&r.workload) {
            names.push(r.workload.clone());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, variant: &str, unit: &'static str, value: f64) -> Record {
        Record {
            workload: workload.to_string(),
            variant: variant.to_string(),
            unit,
            value,
            census_checksum: 1,
            ticks: 100,
            cores: 64,
            threads: 1,
            host_cpus: 1,
            os: "linux".to_string(),
            oversubscribed: false,
            check_factor: 1.25,
            peak_rss_bytes: None,
            bytes_per_core: None,
        }
    }

    #[test]
    fn memory_columns_appear_when_measured() {
        let mut r = record("w1", "sweep_swar_t1", "ns_per_tick", 100.0);
        r.peak_rss_bytes = Some(10 << 20);
        r.bytes_per_core = Some((10 << 20) / 64);
        let md = render(&[r]);
        assert!(md.contains("peak RSS"));
        assert!(md.contains("10.0 MiB"));
        assert!(md.contains(&format!("{}", (10 << 20) / 64)));
    }

    #[test]
    fn ranks_within_and_across_workloads() {
        let records = vec![
            record("w1", "fast", "ns_per_tick", 100.0),
            record("w1", "slow", "ns_per_tick", 400.0),
            record("w2", "fast", "ns_per_tick", 200.0),
            record("w2", "slow", "ns_per_tick", 200.0),
            record("chip_checkpoint", "checkpoint_save", "ns_per_op", 999.0),
        ];
        let md = render(&records);
        assert!(md.contains("### `w1`"));
        assert!(md.contains("| 1 | `fast` | 100 | 1.00× |"));
        assert!(md.contains("| 2 | `slow` | 400 | 4.00× |"));
        // geomean(fast) = sqrt(1.0 * 1.0) = 1.0; geomean(slow) = sqrt(4 * 1) = 2
        assert!(md.contains("| 1 | `fast` | 1.00× | 2 |"));
        assert!(md.contains("| 2 | `slow` | 2.00× | 2 |"));
        assert!(md.contains("| `chip_checkpoint` | `checkpoint_save` | 999 |"));
    }

    #[test]
    fn flags_oversubscribed_rows() {
        let mut r = record("w1", "active_swar_t8", "ns_per_tick", 100.0);
        r.threads = 8;
        r.oversubscribed = true;
        let md = render(&[r]);
        assert!(md.contains("| yes |"));
        assert!(md.contains("oversubscribed: their"));
    }
}
