//! # brainsim-bench
//!
//! Shared workload builders for the Criterion benches and the `figures`
//! binary that regenerates every reconstructed table and figure (see
//! DESIGN.md for the experiment index and EXPERIMENTS.md for the recorded
//! results).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use brainsim_chip::{Chip, ChipBuilder, ChipConfig, CoreScheduling, TileConfig};
use brainsim_core::{AxonTarget, AxonType, CoreOffset, Destination, EvalStrategy};
use brainsim_neuron::{Lfsr, NeuronConfig, Weight};
use brainsim_snn::{LifParams, SnnBuilder, SnnNetwork, SnnSource};

pub mod corpus;
pub mod mem;
pub mod record;
pub mod summary;
pub mod sweep;

/// Parameters of a random recurrent chip workload.
#[derive(Debug, Clone, Copy)]
pub struct RandomChipSpec {
    /// Grid width in cores.
    pub width: usize,
    /// Grid height in cores.
    pub height: usize,
    /// Axons per core.
    pub axons: usize,
    /// Neurons per core.
    pub neurons: usize,
    /// Crossbar density numerator (out of 256).
    pub density: u32,
    /// Build seed.
    pub seed: u32,
    /// Core evaluation strategy.
    pub strategy: EvalStrategy,
    /// Worker threads for the chip tick pipeline.
    pub threads: usize,
    /// Core scheduling mode (full sweep vs quiescence skipping).
    pub scheduling: CoreScheduling,
    /// Multi-chip tiling (None = monolithic).
    pub tile: Option<TileConfig>,
    /// When true, neuron destinations are uniform over the whole grid
    /// instead of nearest-neighbour (long-range traffic).
    pub long_range: bool,
    /// When `Some(k)`, only the first `k` cores (row-major) carry traffic:
    /// their neurons target random axons *within* the island, and the rest
    /// of the grid is built with disabled destinations and no crossbar, so
    /// it stays provably quiescent for the whole run — the sparse workload
    /// the active-core scheduler exists for.
    pub island: Option<usize>,
}

impl Default for RandomChipSpec {
    fn default() -> Self {
        RandomChipSpec {
            width: 4,
            height: 4,
            axons: 64,
            neurons: 64,
            density: 32,
            seed: 0xBEEF,
            strategy: EvalStrategy::default(),
            threads: 1,
            scheduling: CoreScheduling::default(),
            tile: None,
            long_range: false,
            island: None,
        }
    }
}

/// Builds a random recurrent chip: dense-random crossbars, each neuron
/// forwarding to a random axon of a neighbouring core with a random delay.
///
/// # Panics
///
/// Panics on zero dimensions.
pub fn random_chip(spec: &RandomChipSpec) -> Chip {
    let mut builder = ChipBuilder::new(ChipConfig {
        width: spec.width,
        height: spec.height,
        core_axons: spec.axons,
        core_neurons: spec.neurons,
        seed: spec.seed,
        threads: spec.threads,
        scheduling: spec.scheduling,
        tile: spec.tile,
        ..ChipConfig::default()
    });
    let mut rng = Lfsr::new(spec.seed);
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(4))
        .weight(AxonType::A1, Weight::saturating(2))
        .weight(AxonType::A2, Weight::saturating(-2))
        .weight(AxonType::A3, Weight::saturating(-4))
        .threshold(24)
        .leak(-1)
        .leak_reversal(true)
        .negative_threshold(0)
        .build()
        .expect("workload neuron config is valid");
    for y in 0..spec.height {
        for x in 0..spec.width {
            let index = y * spec.width + x;
            let in_island = spec.island.is_none_or(|k| index < k);
            let core = builder.core_mut(x, y);
            core.strategy(spec.strategy);
            if !in_island {
                // Outside the island: no crossbar, no destinations. The
                // core is structurally silent and stays quiescent forever.
                for n in 0..spec.neurons {
                    core.neuron(n, config.clone(), Destination::Disabled)
                        .expect("neuron index in range");
                }
                continue;
            }
            for a in 0..spec.axons {
                core.axon_type(a, AxonType::from_index(a % 4).expect("index < 4"))
                    .expect("axon index in range");
                for n in 0..spec.neurons {
                    if rng.bernoulli_256(spec.density) {
                        core.synapse(a, n, true).expect("synapse in range");
                    }
                }
            }
            for n in 0..spec.neurons {
                if let Some(k) = spec.island {
                    // Confine traffic to the island: pick a random island
                    // core so spikes never leak into the quiescent bulk.
                    let target = rng.next_u32() as usize % k;
                    let (tx, ty) = (target % spec.width, target / spec.width);
                    let target = AxonTarget {
                        offset: CoreOffset::new(tx as i32 - x as i32, ty as i32 - y as i32),
                        axon: (rng.next_u32() as usize % spec.axons) as u16,
                        delay: 1 + (rng.next_u32() % 4) as u8,
                    };
                    core.neuron(n, config.clone(), Destination::Axon(target))
                        .expect("neuron index in range");
                    continue;
                }
                let (dx, dy) = if spec.long_range {
                    let tx = (rng.next_u32() as usize % spec.width) as i32;
                    let ty = (rng.next_u32() as usize % spec.height) as i32;
                    (tx - x as i32, ty - y as i32)
                } else {
                    let dx = if x + 1 < spec.width {
                        1
                    } else if x > 0 {
                        -1
                    } else {
                        0
                    };
                    let dy = if dx == 0 && spec.height > 1 {
                        if y + 1 < spec.height {
                            1
                        } else {
                            -1
                        }
                    } else {
                        0
                    };
                    (dx, dy)
                };
                let target = AxonTarget {
                    offset: CoreOffset::new(dx, dy),
                    axon: (rng.next_u32() as usize % spec.axons) as u16,
                    delay: 1 + (rng.next_u32() % 4) as u8,
                };
                core.neuron(n, config.clone(), Destination::Axon(target))
                    .expect("neuron index in range");
            }
        }
    }
    builder.build().expect("random chip builds")
}

/// One tick's Bernoulli stimulus for one core, delivered word-batched.
///
/// Draws one sample per axon in ascending axon order — the exact stream a
/// per-axon `inject` loop would consume — then hands each 64-axon word to
/// [`Chip::inject_word`] in one call. The mask build is branch-free, so
/// the drive loop costs the LFSR's serial dependency and nothing else.
pub(crate) fn drive_core(chip: &mut Chip, noise: &mut Lfsr, x: usize, y: usize, rate: u32, t: u64) {
    let axons = chip.config().core_axons;
    for word in 0..axons.div_ceil(64) {
        let lanes = (axons - word * 64).min(64);
        let mask = noise.bernoulli_mask(rate, lanes);
        if mask != 0 {
            chip.inject_word(x, y, word, mask, t).expect("axon exists");
        }
    }
}

/// Drives every input axon of the chip with independent Bernoulli noise of
/// probability `rate_numerator / 256` per tick, for `ticks` ticks.
pub fn drive_random(chip: &mut Chip, ticks: u64, rate_numerator: u32, seed: u32) {
    let mut noise = Lfsr::new(seed);
    let width = chip.config().width;
    let height = chip.config().height;
    for _ in 0..ticks {
        // Use the chip's own cursor so repeated drives continue seamlessly
        // (Criterion's b.iter() reuses one chip across iterations).
        let t = chip.now();
        for y in 0..height {
            for x in 0..width {
                drive_core(chip, &mut noise, x, y, rate_numerator, t);
            }
        }
        chip.tick();
    }
}

/// Drives every axon of the first `cores` cores (row-major) with Bernoulli
/// noise, leaving the rest of the grid unstimulated — the stimulus matching
/// an [`RandomChipSpec::island`] workload.
pub fn drive_random_cores(
    chip: &mut Chip,
    ticks: u64,
    rate_numerator: u32,
    seed: u32,
    cores: usize,
) {
    let mut noise = Lfsr::new(seed);
    let width = chip.config().width;
    let cores = cores.min(chip.config().cores());
    for _ in 0..ticks {
        let t = chip.now();
        for index in 0..cores {
            let (x, y) = (index % width, index / width);
            drive_core(chip, &mut noise, x, y, rate_numerator, t);
        }
        chip.tick();
    }
}

/// Converts a mean firing rate in Hz (1 ms ticks) to the Bernoulli
/// numerator out of 256.
pub fn hz_to_numerator(rate_hz: u32) -> u32 {
    (rate_hz * 256) / 1000
}

/// Builds the floating-point clock-driven equivalent of a [`random_chip`]
/// workload (same neuron/synapse counts and topology class), used as the
/// conventional-software baseline in the throughput experiment (F3).
pub fn random_float_baseline(spec: &RandomChipSpec) -> SnnNetwork {
    let total_neurons = spec.width * spec.height * spec.neurons;
    let inputs = spec.width * spec.height * spec.axons;
    let mut rng = Lfsr::new(spec.seed);
    let mut builder = SnnBuilder::new(inputs);
    let params = LifParams {
        tau: 20.0,
        v_rest: 0.0,
        v_thresh: 24.0,
        v_reset: 0.0,
        refractory: 0,
    };
    for _ in 0..total_neurons {
        builder.neuron(params).expect("valid params");
    }
    // Mirror the synapse statistics: each input connects to `density/256`
    // of one core-sized block of neurons.
    for i in 0..inputs {
        let block = i / spec.axons;
        for n in 0..spec.neurons {
            if rng.bernoulli_256(spec.density) {
                let target = (block * spec.neurons + n) % total_neurons;
                let weight = match i % 4 {
                    0 => 4.0,
                    1 => 2.0,
                    2 => -2.0,
                    _ => -4.0,
                };
                builder
                    .connect(SnnSource::Input(i), target, weight, 1)
                    .expect("valid wiring");
            }
        }
    }
    // Recurrent forwarding, one outgoing synapse per neuron.
    for n in 0..total_neurons {
        let target = (n + spec.neurons) % total_neurons;
        builder
            .connect(
                SnnSource::Neuron(n),
                target,
                4.0,
                1 + (rng.next_u32() % 4) as u8,
            )
            .expect("valid wiring");
    }
    builder.build()
}

/// Drives the float baseline with the same Bernoulli input statistics.
pub fn drive_float_baseline(
    net: &mut SnnNetwork,
    ticks: u64,
    rate_numerator: u32,
    seed: u32,
    inputs: usize,
) {
    let mut noise = Lfsr::new(seed);
    let mut buffer = vec![false; inputs];
    for _ in 0..ticks {
        for slot in buffer.iter_mut() {
            *slot = noise.bernoulli_256(rate_numerator);
        }
        net.step(&buffer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_chip_is_active_under_drive() {
        let spec = RandomChipSpec {
            width: 2,
            height: 2,
            axons: 16,
            neurons: 16,
            density: 64,
            ..RandomChipSpec::default()
        };
        let mut chip = random_chip(&spec);
        drive_random(&mut chip, 100, 64, 42);
        let census = chip.census();
        assert!(census.spikes > 0, "no spikes under heavy drive");
        assert!(census.synaptic_events > 0);
        assert_eq!(census.ticks, 100);
    }

    #[test]
    fn strategies_agree_on_random_workload() {
        let base = RandomChipSpec {
            width: 2,
            height: 1,
            axons: 16,
            neurons: 16,
            ..RandomChipSpec::default()
        };
        let mut a = random_chip(&RandomChipSpec {
            strategy: EvalStrategy::Dense,
            ..base
        });
        let mut b = random_chip(&RandomChipSpec {
            strategy: EvalStrategy::Sparse,
            ..base
        });
        let mut c = random_chip(&RandomChipSpec {
            strategy: EvalStrategy::Swar,
            ..base
        });
        drive_random(&mut a, 50, 32, 7);
        drive_random(&mut b, 50, 32, 7);
        drive_random(&mut c, 50, 32, 7);
        assert_eq!(a.census(), b.census());
        assert_eq!(a.census(), c.census());
    }

    #[test]
    fn island_workload_confines_traffic_and_stays_sparse() {
        let spec = RandomChipSpec {
            width: 4,
            height: 4,
            axons: 16,
            neurons: 16,
            density: 64,
            island: Some(3),
            ..RandomChipSpec::default()
        };
        let mut chip = random_chip(&spec);
        let mut max_evaluated = 0u64;
        for _ in 0..60 {
            drive_random_cores(&mut chip, 1, 64, 42, 3);
            max_evaluated = max_evaluated.max(chip.tick().cores_evaluated);
        }
        assert!(
            chip.census().spikes > 0,
            "island must be active under drive"
        );
        // The 13 bulk cores must never wake: ≥ 81% of this grid (95% on
        // the benchmark's 8×8) is provably quiescent every tick.
        assert!(
            max_evaluated <= 3,
            "traffic leaked out of the island: {max_evaluated}"
        );
    }

    #[test]
    fn island_census_is_scheduling_and_thread_invariant() {
        let run = |scheduling: CoreScheduling, threads: usize| {
            let spec = RandomChipSpec {
                width: 4,
                height: 4,
                axons: 16,
                neurons: 16,
                density: 64,
                island: Some(3),
                scheduling,
                threads,
                ..RandomChipSpec::default()
            };
            let mut chip = random_chip(&spec);
            drive_random_cores(&mut chip, 50, 64, 7, 3);
            chip.census()
        };
        let baseline = run(CoreScheduling::Sweep, 1);
        assert_eq!(baseline, run(CoreScheduling::Active, 1));
        assert_eq!(baseline, run(CoreScheduling::Active, 4));
    }

    #[test]
    fn hz_conversion() {
        assert_eq!(hz_to_numerator(0), 0);
        assert_eq!(hz_to_numerator(1000), 256);
        assert_eq!(hz_to_numerator(100), 25);
    }

    #[test]
    fn float_baseline_is_active() {
        let spec = RandomChipSpec {
            width: 2,
            height: 1,
            axons: 16,
            neurons: 16,
            density: 64,
            ..RandomChipSpec::default()
        };
        let mut net = random_float_baseline(&spec);
        let inputs = 2 * 16;
        drive_float_baseline(&mut net, 100, 64, 42, inputs);
        assert!(net.stats().spikes > 0);
    }
}
