//! The barometer's workload corpus: declarative, seeded TrueNorth workload
//! definitions and their deterministic generator.
//!
//! Each corpus entry is a [`WorkloadDef`] — pure data: name, seed, grid
//! dimensions, fan-out (crossbar density), the NeMo/SANA-FE-style
//! intra-/inter-core connectivity split, drive rate, an optional fault-plan
//! overlay, and a pinned census checksum. The generator expands a def into
//! a [`Chip`] byte-deterministically: the same def always produces the
//! identical network, so the corpus is data, not code, and the pinned
//! checksum turns every entry into a cross-strategy equivalence test.
//!
//! The connectivity recipe follows the SANA-FE NeMo comparison script:
//! every neuron forwards to a random axon of its **own** core with
//! probability `intra/256` (default ≈ 80%) and to a uniformly random other
//! core otherwise — the 80/20 split TrueNorth placement literature assumes.

use brainsim_chip::{Chip, ChipBuilder, ChipConfig, CoreScheduling};
use brainsim_core::{AxonTarget, AxonType, CoreOffset, Destination, EvalStrategy};
use brainsim_energy::EventCensus;
use brainsim_faults::FaultPlan;
use brainsim_neuron::{Lfsr, NeuronConfig, Weight};

/// Incremental FNV-1a over a stream of `u64` values — the checksum the
/// conformance layer pins per corpus entry (per-tick spike counts, output
/// rasters in deterministic order, and the final [`EventCensus`]).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts from the FNV-1a 64-bit offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one value into the running hash.
    #[inline]
    pub fn write(&mut self, value: u64) {
        self.0 ^= value;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// Folds every field of an event census, in declaration order.
    pub fn write_census(&mut self, census: &EventCensus) {
        for v in [
            census.ticks,
            census.cores,
            census.synaptic_events,
            census.neuron_updates,
            census.spikes,
            census.axon_events,
            census.hops,
            census.link_crossings,
            census.packets_dropped,
            census.packets_rejected,
            census.flit_stalls,
        ] {
            self.write(v);
        }
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// A deterministic fault-plan overlay a corpus entry can carry. Overlays
/// are part of the workload definition (derived from the entry's seed), so
/// a faulted workload is exactly as reproducible as a clean one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOverlay {
    /// No faults: the clean workload.
    None,
    /// Link-level chaos: 5% packet drop + 5% payload corruption.
    LinkChaos,
    /// Structural damage: dead/stuck neurons and delayed links.
    Structural,
}

/// One corpus entry: everything needed to regenerate the workload and
/// verify any simulator variant against it. Pure data — adding a workload
/// is adding a literal to [`corpus`] (see the BYOB section in
/// EXPERIMENTS.md), not writing generator code.
#[derive(Debug, Clone)]
pub struct WorkloadDef {
    /// Stable identifier; the `workload` field of every record.
    pub name: &'static str,
    /// Master seed: network structure, drive stream, and fault overlay all
    /// derive from it.
    pub seed: u32,
    /// Grid width in cores.
    pub width: usize,
    /// Grid height in cores.
    pub height: usize,
    /// Axons per core.
    pub axons: usize,
    /// Neurons per core.
    pub neurons: usize,
    /// Crossbar density numerator (out of 256) — the fan-out knob: each
    /// spike on an axon drives ≈ `density/256 × neurons` synapses.
    pub density: u32,
    /// Probability numerator (out of 256) that a neuron's forward edge
    /// stays **within its own core**; the remainder targets a uniformly
    /// random other structured core. 205/256 ≈ the canonical 80/20 split.
    pub intra: u32,
    /// Per-axon Bernoulli drive probability numerator (out of 256) — the
    /// activity-rate knob.
    pub drive_rate: u32,
    /// When `Some(k)`, only the first `k` cores (row-major) are structured
    /// and driven; the rest of the grid is built with empty crossbars and
    /// disabled destinations, staying provably quiescent — the sparse
    /// workload shape the active-core scheduler exists for. Forward edges
    /// are confined to the island so no traffic leaks into the bulk.
    pub island: Option<usize>,
    /// Warm-up ticks excluded from timing (but folded into the checksum).
    pub warmup: u64,
    /// Measured ticks.
    pub measure: u64,
    /// Fault-plan overlay armed before the run.
    pub overlay: FaultOverlay,
    /// Whether the entry is cheap enough for the `cargo test` smoke
    /// conformance suite (the full harness always runs every entry).
    pub smoke: bool,
    /// Whether the harness also measures this entry through the batched
    /// many-chip backend (`ChipBatch`), emitting per-chip `batchN`
    /// records after the lane-vs-solo differential check passes.
    pub batch: bool,
    /// Per-workload regression threshold for the `check` gate: a variant
    /// fails when its ns/tick exceeds the committed baseline by more than
    /// this factor.
    pub check_factor: f64,
    /// Pinned FNV-1a checksum over the run's per-tick rasters and final
    /// census. `None` only while authoring a new entry (`barometer pin`
    /// prints the value to paste here); the harness refuses to emit
    /// records for unpinned entries.
    pub checksum: Option<u64>,
}

impl WorkloadDef {
    /// Total cores on the grid.
    pub fn cores(&self) -> usize {
        self.width * self.height
    }

    /// Cores carrying structure and stimulus.
    pub fn structured(&self) -> usize {
        self.island.unwrap_or(self.cores()).min(self.cores())
    }

    /// Total ticks of a run (warm-up + measured).
    pub fn ticks(&self) -> u64 {
        self.warmup + self.measure
    }

    /// The fault plan this entry arms, if any (derived from the seed).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        let seed = u64::from(self.seed) ^ 0xBA40_44E7;
        match self.overlay {
            FaultOverlay::None => None,
            FaultOverlay::LinkChaos => Some(
                FaultPlan::new(seed)
                    .with_link_drop(0.05)
                    .with_link_corrupt(0.05),
            ),
            FaultOverlay::Structural => Some(
                FaultPlan::new(seed)
                    .with_link_delay(0.1, 2)
                    .with_dead_neuron(0.02)
                    .with_stuck_neuron(0.01),
            ),
        }
    }
}

/// Connectivity statistics of a generated workload, for the 80/20
/// split invariants in `tests/properties.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Programmed crossbar synapses.
    pub synapses: u64,
    /// Forward edges that stay within their source core.
    pub intra_edges: u64,
    /// Forward edges that cross to another core.
    pub inter_edges: u64,
    /// Neurons wired to output pads (one per structured core).
    pub output_neurons: u64,
}

/// The uniform neuron parameterisation every corpus entry uses: a leaky
/// threshold-24 integrator with the canonical ±4/±2 axon-type weights.
/// Uniform and deterministic on purpose — it keeps every core eligible for
/// the SoA/SWAR fast path *and* for the scalar references, so the corpus
/// exercises exactly the strategy matrix the conformance layer sweeps.
fn corpus_neuron_config() -> NeuronConfig {
    NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(4))
        .weight(AxonType::A1, Weight::saturating(2))
        .weight(AxonType::A2, Weight::saturating(-2))
        .weight(AxonType::A3, Weight::saturating(-4))
        .threshold(24)
        .leak(-1)
        .leak_reversal(true)
        .negative_threshold(0)
        .build()
        .expect("corpus neuron config is valid")
}

/// Expands a workload definition into a chip, byte-deterministically, and
/// reports the connectivity statistics of the generated network.
///
/// `strategy`, `scheduling`, and `threads` configure the simulator variant
/// under test; they do not participate in the structure RNG stream, so
/// every variant of a def simulates the identical network.
///
/// # Panics
///
/// Panics if the definition is internally inconsistent (zero dimensions,
/// island larger than the grid); corpus entries are validated by tests.
pub fn build_workload(
    def: &WorkloadDef,
    strategy: EvalStrategy,
    scheduling: CoreScheduling,
    threads: usize,
) -> (Chip, WorkloadStats) {
    build_workload_layout(def, strategy, scheduling, threads, false)
}

/// Dense-storage twin of [`build_workload`]: the identical network drawn
/// from the identical RNG stream, but with every storage-compression path
/// deliberately defeated — each crossbar materialises owned words before
/// programming (a transient set/clear leaves `Owned` zero storage instead
/// of `Empty`), and neuron tables are written back-to-front so the
/// uniform-front compression densifies on the first write. No core
/// qualifies as dormant. The residency differential suites run this twin
/// against the sparse build and require bit-identity; it is not a
/// benchmarking variant.
pub fn build_workload_dense(
    def: &WorkloadDef,
    strategy: EvalStrategy,
    scheduling: CoreScheduling,
    threads: usize,
) -> (Chip, WorkloadStats) {
    build_workload_layout(def, strategy, scheduling, threads, true)
}

/// Shared expansion behind the sparse/dense builds. `dense` must not
/// change the structure RNG stream: destinations are always *drawn* in
/// ascending neuron order (the corpus protocol) and only *written* in
/// whichever order the layout demands, and the densifying crossbar
/// touches use no randomness at all.
fn build_workload_layout(
    def: &WorkloadDef,
    strategy: EvalStrategy,
    scheduling: CoreScheduling,
    threads: usize,
    dense: bool,
) -> (Chip, WorkloadStats) {
    let mut builder = ChipBuilder::new(ChipConfig {
        width: def.width,
        height: def.height,
        core_axons: def.axons,
        core_neurons: def.neurons,
        seed: def.seed,
        threads,
        scheduling,
        ..ChipConfig::default()
    });
    let mut rng = Lfsr::new(def.seed);
    let mut stats = WorkloadStats::default();
    let config = corpus_neuron_config();
    let structured = def.structured();
    let words = def.neurons.div_ceil(64);
    for index in 0..def.cores() {
        let (x, y) = (index % def.width, index / def.width);
        let core = builder.core_mut(x, y);
        core.strategy(strategy);
        if dense {
            // Materialise owned crossbar words up front: the set/clear
            // pair flips one cell there and back, leaving `Owned` all-zero
            // storage where the sparse build would keep `Empty`.
            core.synapse(0, 0, true).expect("cell in range");
            core.synapse(0, 0, false).expect("cell in range");
        }
        if index >= structured {
            // Outside the island: no crossbar, no destinations — the core
            // is structurally silent and provably quiescent for the run.
            // The dense twin programs the same table back-to-front: the
            // first write at a non-zero index densifies it, so the core is
            // never eligible for dormancy.
            if dense {
                for n in (0..def.neurons).rev() {
                    core.neuron(n, config.clone(), Destination::Disabled)
                        .expect("neuron index in range");
                }
            } else {
                for n in 0..def.neurons {
                    core.neuron(n, config.clone(), Destination::Disabled)
                        .expect("neuron index in range");
                }
            }
            continue;
        }
        for a in 0..def.axons {
            core.axon_type(a, AxonType::from_index(a % 4).expect("index < 4"))
                .expect("axon index in range");
            for w in 0..words {
                let lanes = (def.neurons - w * 64).min(64);
                let mut bits = 0u64;
                for b in 0..lanes {
                    bits |= u64::from(rng.bernoulli_256(def.density)) << b;
                }
                core.synapse_row_word(a, w, bits)
                    .expect("word index in range");
                stats.synapses += u64::from(bits.count_ones());
            }
        }
        // Destinations are drawn in ascending neuron order — the corpus
        // RNG protocol — regardless of the order they are written in.
        let dests: Vec<Destination> = (0..def.neurons)
            .map(|n| {
                // Neuron 0 of every structured core exposes the raster on
                // an output pad so the checksum observes real spike
                // identity; the rest forward with the 80/20 intra/inter
                // split.
                if n == 0 {
                    stats.output_neurons += 1;
                    return Destination::Output(index as u32);
                }
                let target = if structured == 1 || rng.bernoulli_256(def.intra) {
                    stats.intra_edges += 1;
                    index
                } else {
                    stats.inter_edges += 1;
                    // Uniform over the *other* structured cores.
                    let mut t = rng.next_u32() as usize % (structured - 1);
                    if t >= index {
                        t += 1;
                    }
                    t
                };
                let (tx, ty) = (target % def.width, target / def.width);
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(tx as i32 - x as i32, ty as i32 - y as i32),
                    axon: (rng.next_u32() as usize % def.axons) as u16,
                    delay: 1 + (rng.next_u32() % 4) as u8,
                })
            })
            .collect();
        if dense {
            for n in (0..def.neurons).rev() {
                core.neuron(n, config.clone(), dests[n])
                    .expect("neuron index in range");
            }
        } else {
            for (n, &dest) in dests.iter().enumerate() {
                core.neuron(n, config.clone(), dest)
                    .expect("neuron index in range");
            }
        }
    }
    let chip = builder.build().expect("corpus workload builds");
    (chip, stats)
}

/// The committed corpus, smallest first. Scale axis: 8×8 (the legacy bench
/// shape) through the full-silicon 64×64 / 4096-core T1 configuration.
/// Activity axis: drive rates 16–96/256. Sparsity axis: fully driven grids
/// vs ≥95%-quiescent islands. Fault axis: clean, link chaos, structural.
pub fn corpus() -> Vec<WorkloadDef> {
    let base = WorkloadDef {
        name: "",
        seed: 0,
        width: 8,
        height: 8,
        axons: 64,
        neurons: 64,
        density: 32,
        intra: 205,
        drive_rate: 32,
        island: None,
        warmup: 20,
        measure: 100,
        overlay: FaultOverlay::None,
        smoke: true,
        batch: false,
        check_factor: 1.5,
        checksum: None,
    };
    vec![
        WorkloadDef {
            name: "nemo_8x8_lo",
            seed: 0xA11C_E001,
            drive_rate: 16,
            checksum: Some(0x6c5e_0274_1c87_fafc),
            ..base.clone()
        },
        WorkloadDef {
            name: "nemo_8x8_hi",
            seed: 0xA11C_E002,
            drive_rate: 96,
            batch: true,
            checksum: Some(0x4b73_6d3e_b8e4_a0e3),
            ..base.clone()
        },
        WorkloadDef {
            name: "nemo_16x16_mid",
            seed: 0xA11C_E003,
            width: 16,
            height: 16,
            warmup: 15,
            measure: 80,
            check_factor: 1.6,
            checksum: Some(0x33e2_74c1_87e0_2024),
            ..base.clone()
        },
        WorkloadDef {
            name: "nemo_16x16_linkchaos",
            seed: 0xA11C_E004,
            width: 16,
            height: 16,
            warmup: 15,
            measure: 80,
            overlay: FaultOverlay::LinkChaos,
            check_factor: 1.6,
            checksum: Some(0x28c3_eb0a_2ad6_941e),
            ..base.clone()
        },
        WorkloadDef {
            name: "nemo_32x32_sparse",
            seed: 0xA11C_E005,
            width: 32,
            height: 32,
            drive_rate: 64,
            island: Some(64),
            warmup: 15,
            measure: 80,
            check_factor: 1.6,
            checksum: Some(0x89d6_00d8_d874_4131),
            ..base.clone()
        },
        WorkloadDef {
            // The batched-backend stress shape: full-size cores on a small
            // grid, half-density crossbars, and near-saturating drive, so
            // synaptic integration (the phase the lane kernel amortises
            // across replicas) dominates the tick.
            name: "dense_8x8",
            seed: 0xA11C_E008,
            axons: 256,
            neurons: 256,
            density: 128,
            drive_rate: 230,
            warmup: 5,
            measure: 25,
            smoke: false,
            batch: true,
            check_factor: 1.6,
            checksum: Some(0xabc1_caf5_fa40_06be),
            ..base.clone()
        },
        WorkloadDef {
            // The ROADMAP's 95%-quiescent full-silicon shape: 4096 cores at
            // the published 256×256 per-core scale, 5% of them active.
            name: "nemo_64x64_edge",
            seed: 0xA11C_E006,
            width: 64,
            height: 64,
            axons: 256,
            neurons: 256,
            island: Some(205),
            warmup: 10,
            measure: 40,
            smoke: false,
            batch: true,
            check_factor: 1.5,
            checksum: Some(0x4520_23a6_7784_1f6f),
            ..base.clone()
        },
        WorkloadDef {
            // The full T1 configuration, every core structured and driven:
            // 4096 cores, 1 M neurons, ~16.8 M programmed synapses.
            name: "nemo_64x64_full",
            seed: 0xA11C_E007,
            width: 64,
            height: 64,
            axons: 256,
            neurons: 256,
            density: 16,
            drive_rate: 8,
            warmup: 5,
            measure: 25,
            smoke: false,
            check_factor: 1.5,
            checksum: Some(0x53d5_1e98_682a_6196),
            ..base
        },
    ]
}

/// Looks up a corpus entry by name.
pub fn find(name: &str) -> Option<WorkloadDef> {
    corpus().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_defs_consistent() {
        let defs = corpus();
        let mut names: Vec<_> = defs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), defs.len(), "duplicate workload names");
        for def in &defs {
            assert!(def.cores() > 0);
            assert!(def.structured() <= def.cores());
            assert!(def.measure > 0, "{}: no measured ticks", def.name);
            assert!(def.check_factor > 1.0, "{}: degenerate threshold", def.name);
        }
        assert!(
            defs.iter().any(|d| d.cores() == 4096),
            "corpus must include a full-silicon 64x64 entry"
        );
        assert!(
            defs.iter().any(|d| d.smoke),
            "corpus must have smoke entries"
        );
    }

    #[test]
    fn generator_is_deterministic_per_def() {
        let def = find("nemo_8x8_lo").unwrap();
        let (a, sa) = build_workload(&def, EvalStrategy::Swar, CoreScheduling::Sweep, 1);
        let (b, sb) = build_workload(&def, EvalStrategy::Swar, CoreScheduling::Sweep, 1);
        assert_eq!(sa, sb);
        assert_eq!(a.checkpoint().to_bytes(), b.checkpoint().to_bytes());
    }

    #[test]
    fn island_defs_confine_structure() {
        let def = find("nemo_32x32_sparse").unwrap();
        let (chip, stats) = build_workload(&def, EvalStrategy::Swar, CoreScheduling::Active, 1);
        assert_eq!(stats.output_neurons, def.structured() as u64);
        assert!(stats.synapses > 0);
        // Bulk cores are structurally empty.
        let bulk = chip.core(31, 31).expect("core exists");
        assert_eq!(bulk.crossbar().synapse_count(), 0);
    }

    #[test]
    fn connectivity_split_tracks_intra_parameter() {
        let def = find("nemo_16x16_mid").unwrap();
        let (_, stats) = build_workload(&def, EvalStrategy::Swar, CoreScheduling::Sweep, 1);
        let total = (stats.intra_edges + stats.inter_edges) as f64;
        let intra = stats.intra_edges as f64 / total;
        let expected = def.intra as f64 / 256.0;
        assert!(
            (intra - expected).abs() < 0.02,
            "intra fraction {intra:.3} far from {expected:.3}"
        );
    }
}
