//! The sweep harness: runs the workload corpus across the full
//! {eval strategy × scheduler × thread count} matrix, proves bit-identity
//! (the differential conformance layer), and only then emits timing
//! records — plus the ops workloads (checkpoint, recovery) and the
//! per-(workload, variant) regression gate.

use std::time::Instant;

use brainsim_chip::{Chip, ChipBatch, CoreScheduling, Snapshot, TelemetryConfig};
use brainsim_core::EvalStrategy;
use brainsim_energy::EventCensus;
use brainsim_neuron::Lfsr;

use crate::corpus::{build_workload, Fnv1a, WorkloadDef};
use crate::record::{Host, Record};

/// One simulator configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Core evaluation strategy.
    pub strategy: EvalStrategy,
    /// Core scheduling mode.
    pub scheduling: CoreScheduling,
    /// Worker threads.
    pub threads: usize,
    /// Whether telemetry instrumentation is enabled (overhead probe).
    pub telemetry: bool,
}

impl Variant {
    /// Stable record label, e.g. `sweep_swar_t1` or `active_sparse_t8`.
    pub fn label(&self) -> String {
        let sched = match self.scheduling {
            CoreScheduling::Sweep => "sweep",
            CoreScheduling::Active => "active",
        };
        let strat = match self.strategy {
            EvalStrategy::Swar => "swar",
            EvalStrategy::Sparse => "sparse",
            EvalStrategy::Dense => "dense",
        };
        let tel = if self.telemetry { "_telemetry" } else { "" };
        format!("{sched}_{strat}_t{}{tel}", self.threads)
    }
}

/// The full conformance matrix every corpus entry must pass before any of
/// its timings are trusted: {Swar, Sparse scalar, Dense scalar} ×
/// {Sweep, Active} × threads {1, 8}, plus the telemetry-instrumented
/// probe. 13 runs per entry, all required to be bit-identical.
pub fn conformance_matrix() -> Vec<Variant> {
    let mut m = Vec::with_capacity(13);
    for strategy in [
        EvalStrategy::Swar,
        EvalStrategy::Sparse,
        EvalStrategy::Dense,
    ] {
        for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
            for threads in [1, 8] {
                m.push(Variant {
                    strategy,
                    scheduling,
                    threads,
                    telemetry: false,
                });
            }
        }
    }
    m.push(Variant {
        strategy: EvalStrategy::Swar,
        scheduling: CoreScheduling::Sweep,
        threads: 1,
        telemetry: true,
    });
    m
}

/// The subset of the matrix whose timings become committed records: the
/// scalar reference, the SWAR path serial and threaded under both
/// schedulers, and the instrumentation-overhead probe.
pub fn timed_variants() -> Vec<Variant> {
    let sweep = CoreScheduling::Sweep;
    let active = CoreScheduling::Active;
    vec![
        Variant {
            strategy: EvalStrategy::Sparse,
            scheduling: sweep,
            threads: 1,
            telemetry: false,
        },
        Variant {
            strategy: EvalStrategy::Swar,
            scheduling: sweep,
            threads: 1,
            telemetry: false,
        },
        Variant {
            strategy: EvalStrategy::Swar,
            scheduling: sweep,
            threads: 8,
            telemetry: false,
        },
        Variant {
            strategy: EvalStrategy::Swar,
            scheduling: active,
            threads: 1,
            telemetry: false,
        },
        Variant {
            strategy: EvalStrategy::Swar,
            scheduling: active,
            threads: 8,
            telemetry: false,
        },
        Variant {
            strategy: EvalStrategy::Swar,
            scheduling: sweep,
            threads: 1,
            telemetry: true,
        },
    ]
}

/// Outcome of one variant run over one corpus entry.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock nanoseconds per measured tick (warm-up excluded).
    pub ns_per_tick: f64,
    /// Final event census.
    pub census: EventCensus,
    /// FNV-1a digest over every tick's raster (tick, spike count, output
    /// ports in deterministic order) and the final census.
    pub checksum: u64,
}

/// Runs one corpus entry under one variant: builds the network, arms the
/// overlay, drives the seeded stimulus, folds the per-tick raster into the
/// checksum, and times the measured window.
pub fn run_variant(def: &WorkloadDef, variant: &Variant) -> RunResult {
    run_variant_with_drive(def, variant, lane_drive_seed(def, 0))
}

/// The drive-stream seed of one batch lane. Lane 0 is the canonical solo
/// stream itself — a batch's lane 0 therefore reproduces the entry's
/// pinned checksum bit for bit — and every further lane salts the seed so
/// the replicas diverge in stimulus while sharing the network.
pub fn lane_drive_seed(def: &WorkloadDef, lane: usize) -> u32 {
    (def.seed ^ 0x0D21_5EED) ^ (lane as u32).wrapping_mul(0x9E37_79B9)
}

/// [`run_variant`] with an explicit drive-stream seed — the solo twin
/// runner the batch differential check compares each lane against.
pub fn run_variant_with_drive(def: &WorkloadDef, variant: &Variant, drive_seed: u32) -> RunResult {
    let (mut chip, _) = build_workload(def, variant.strategy, variant.scheduling, variant.threads);
    if let Some(plan) = def.fault_plan() {
        chip.set_fault_plan(&plan);
    }
    if variant.telemetry {
        chip.enable_telemetry(TelemetryConfig::default());
    }
    let mut noise = Lfsr::new(drive_seed);
    let mut hash = Fnv1a::new();
    let structured = def.structured();
    let width = def.width;
    let mut drive_and_tick = |chip: &mut Chip, hash: &mut Fnv1a| {
        let t = chip.now();
        for index in 0..structured {
            crate::drive_core(
                chip,
                &mut noise,
                index % width,
                index / width,
                def.drive_rate,
                t,
            );
        }
        let summary = chip.tick();
        hash.write(summary.tick);
        hash.write(summary.spikes);
        hash.write(summary.outputs.len() as u64);
        for port in &summary.outputs {
            hash.write(u64::from(*port));
        }
    };
    for _ in 0..def.warmup {
        drive_and_tick(&mut chip, &mut hash);
    }
    let start = Instant::now();
    for _ in 0..def.measure {
        drive_and_tick(&mut chip, &mut hash);
    }
    let elapsed = start.elapsed();
    let census = chip.census();
    hash.write_census(&census);
    RunResult {
        ns_per_tick: elapsed.as_nanos() as f64 / def.measure as f64,
        census,
        checksum: hash.finish(),
    }
}

/// Why a corpus entry failed conformance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// A variant's checksum or census diverged from the first run.
    Diverged {
        /// Workload name.
        workload: String,
        /// The diverging variant's label.
        variant: String,
        /// The reference (first-run) checksum.
        reference: u64,
        /// The diverging checksum.
        got: u64,
    },
    /// The computed checksum does not match the def's pinned checksum.
    Pin {
        /// Workload name.
        workload: String,
        /// The pinned value from the corpus definition.
        pinned: Option<u64>,
        /// The checksum every variant computed.
        computed: u64,
    },
    /// The workload produced no spikes — a degenerate entry that would
    /// "conform" trivially.
    Silent {
        /// Workload name.
        workload: String,
    },
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConformanceError::Diverged { workload, variant, reference, got } => write!(
                f,
                "{workload}: variant {variant} diverged (checksum {got:#018x}, reference {reference:#018x})"
            ),
            ConformanceError::Pin { workload, pinned: Some(p), computed } => write!(
                f,
                "{workload}: checksum {computed:#018x} does not match pinned {p:#018x}"
            ),
            ConformanceError::Pin { workload, pinned: None, computed } => write!(
                f,
                "{workload}: unpinned entry — set `checksum: Some({computed:#018x})` in the corpus def"
            ),
            ConformanceError::Silent { workload } => {
                write!(f, "{workload}: workload produced no spikes")
            }
        }
    }
}

/// A conformance-verified sweep of one corpus entry: every matrix run,
/// proven bit-identical and matching the pinned checksum.
#[derive(Debug, Clone)]
pub struct VerifiedSweep {
    /// The checksum all variants agreed on (== the pinned value).
    pub checksum: u64,
    /// The census all variants agreed on.
    pub census: EventCensus,
    /// Every matrix run, in [`conformance_matrix`] order.
    pub runs: Vec<(Variant, RunResult)>,
}

/// Runs the full conformance matrix over one entry and verifies
/// bit-identity + the pinned checksum. Timings inside the result are only
/// meaningful if this returns `Ok` — which is the point.
pub fn verify_workload(def: &WorkloadDef) -> Result<VerifiedSweep, ConformanceError> {
    verify_workload_inner(def, true)
}

/// [`verify_workload`] with the pin comparison optional: a `--ticks`
/// override runs a different tick count than the pinned checksum covers,
/// so only cross-variant bit-identity and non-silence are enforceable.
fn verify_workload_inner(
    def: &WorkloadDef,
    require_pin: bool,
) -> Result<VerifiedSweep, ConformanceError> {
    let mut runs = Vec::new();
    for variant in conformance_matrix() {
        let result = run_variant(def, &variant);
        runs.push((variant, result));
    }
    let reference = &runs[0].1;
    if reference.census.spikes == 0 {
        return Err(ConformanceError::Silent {
            workload: def.name.to_string(),
        });
    }
    for (variant, result) in &runs {
        if result.checksum != reference.checksum || result.census != reference.census {
            return Err(ConformanceError::Diverged {
                workload: def.name.to_string(),
                variant: variant.label(),
                reference: reference.checksum,
                got: result.checksum,
            });
        }
    }
    if require_pin && def.checksum != Some(reference.checksum) {
        return Err(ConformanceError::Pin {
            workload: def.name.to_string(),
            pinned: def.checksum,
            computed: reference.checksum,
        });
    }
    Ok(VerifiedSweep {
        checksum: reference.checksum,
        census: reference.census,
        runs,
    })
}

/// Knobs for one sweep pass, settable from the barometer CLI
/// (`measure --reps N --ticks N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Timed passes per variant ("best of N"). Pass 1 comes from the
    /// conformance matrix; at least one fresh re-run always happens so
    /// the peak-RSS window covers a full build + run of the variant.
    pub reps: u32,
    /// Overrides the def's measured tick count. A different tick count
    /// computes a different checksum than the pinned one, so the pin
    /// comparison is skipped (cross-variant bit-identity still gates) and
    /// the resulting records are for local iteration, not for committing.
    pub ticks: Option<u64>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            reps: 3,
            ticks: None,
        }
    }
}

impl SweepOptions {
    /// The def actually run: `--ticks` replaces the measured window (and
    /// unpins the checksum, which covers warmup + measure of the original
    /// window).
    pub fn effective_def(&self, def: &WorkloadDef) -> WorkloadDef {
        match self.ticks {
            Some(measure) => WorkloadDef {
                measure,
                checksum: None,
                ..def.clone()
            },
            None => def.clone(),
        }
    }
}

/// Sweeps one corpus entry and emits its timing records — after, and only
/// after, [`verify_workload`] proves every variant bit-identical.
pub fn sweep_workload(def: &WorkloadDef, host: Host) -> Result<Vec<Record>, ConformanceError> {
    sweep_workload_opts(def, host, SweepOptions::default())
}

/// [`sweep_workload`] with explicit rep/tick overrides.
pub fn sweep_workload_opts(
    def: &WorkloadDef,
    host: Host,
    opts: SweepOptions,
) -> Result<Vec<Record>, ConformanceError> {
    let def = opts.effective_def(def);
    let verified = verify_workload_inner(&def, opts.ticks.is_none())?;
    let timed = timed_variants();
    let mut records = Vec::new();
    for (variant, result) in &verified.runs {
        if !timed.contains(variant) {
            continue;
        }
        // Best-of-N timing (default 3): re-run the timed variant and keep
        // the fastest pass. The minimum is the noise-robust estimator on a
        // shared host — interference only ever slows a run down. Every
        // re-run must still reproduce the verified checksum. The peak-RSS
        // counter is reset first, so the reported peak bounds exactly the
        // re-runs' build + run working set.
        crate::mem::reset_peak_rss();
        let mut best = result.ns_per_tick;
        for _ in 0..opts.reps.saturating_sub(1).max(1) {
            let rerun = run_variant(&def, variant);
            if rerun.checksum != verified.checksum {
                return Err(ConformanceError::Diverged {
                    workload: def.name.to_string(),
                    variant: variant.label(),
                    reference: verified.checksum,
                    got: rerun.checksum,
                });
            }
            best = best.min(rerun.ns_per_tick);
        }
        let peak_rss_bytes = crate::mem::peak_rss_bytes();
        records.push(Record {
            workload: def.name.to_string(),
            variant: variant.label(),
            unit: "ns_per_tick",
            value: best,
            census_checksum: result.checksum,
            ticks: def.measure,
            cores: def.cores(),
            threads: variant.threads,
            host_cpus: host.cpus,
            os: host.os.to_string(),
            oversubscribed: variant.threads > host.cpus,
            check_factor: def.check_factor,
            peak_rss_bytes,
            bytes_per_core: peak_rss_bytes.map(|b| b / def.cores() as u64),
        });
    }
    Ok(records)
}

/// Lane counts the harness measures through the batched backend for every
/// `batch`-flagged corpus entry.
pub const BATCH_LANES: &[usize] = &[2, 8];

/// Stable record label for a batched run, e.g. `batch8`.
pub fn batch_label(lanes: usize) -> String {
    format!("batch{lanes}")
}

/// Outcome of one batched run over one corpus entry: per-lane observables
/// plus the amortised per-chip timing.
#[derive(Debug, Clone)]
pub struct BatchRunResult {
    /// Wall-clock nanoseconds per measured tick **per chip** (total
    /// elapsed / (measured ticks × lanes)) — directly comparable to a
    /// solo variant's `ns_per_tick`.
    pub ns_per_tick_per_chip: f64,
    /// Each lane's FNV-1a digest over its per-tick rasters and final
    /// census, in lane order. Lane 0's equals the entry's pinned checksum.
    pub lane_checksums: Vec<u64>,
    /// Each lane's final event census, in lane order.
    pub lane_censuses: Vec<EventCensus>,
}

/// Runs one corpus entry through the batched backend with `lanes`
/// replicas: lane 0 consumes the canonical drive stream, every further
/// lane a salted one ([`lane_drive_seed`]), and the entry's fault overlay
/// is armed on the prototype so all lanes share it (and stay on the fused
/// path). Timing covers the same measured window as a solo run.
///
/// # Panics
///
/// Panics if `lanes` is outside `1..=64` or a lane's tick fails.
pub fn run_batch_variant(def: &WorkloadDef, lanes: usize) -> BatchRunResult {
    run_batch_variant_threads(def, lanes, 1)
}

/// [`run_batch_variant`] with an explicit Phase B worker-thread count for
/// every lane — the differential suite sweeps this to prove lane routing
/// is thread-count invariant exactly like solo routing.
///
/// # Panics
///
/// As for [`run_batch_variant`].
pub fn run_batch_variant_threads(
    def: &WorkloadDef,
    lanes: usize,
    threads: usize,
) -> BatchRunResult {
    let (mut proto, _) = build_workload(def, EvalStrategy::Swar, CoreScheduling::Sweep, threads);
    if let Some(plan) = def.fault_plan() {
        proto.set_fault_plan(&plan);
    }
    let mut batch = ChipBatch::new_replicas(&proto, lanes).expect("lane count in 1..=64");
    let mut noises: Vec<Lfsr> = (0..lanes)
        .map(|lane| Lfsr::new(lane_drive_seed(def, lane)))
        .collect();
    let mut hashes: Vec<Fnv1a> = vec![Fnv1a::new(); lanes];
    let structured = def.structured();
    let width = def.width;
    let mut drive_and_tick = |batch: &mut ChipBatch, hashes: &mut [Fnv1a]| {
        let t = batch.now();
        for (lane, noise) in noises.iter_mut().enumerate() {
            let chip = batch.lane_mut(lane);
            for index in 0..structured {
                crate::drive_core(chip, noise, index % width, index / width, def.drive_rate, t);
            }
        }
        let summaries = batch.try_tick().expect("batch tick succeeds");
        for (hash, summary) in hashes.iter_mut().zip(&summaries) {
            hash.write(summary.tick);
            hash.write(summary.spikes);
            hash.write(summary.outputs.len() as u64);
            for port in &summary.outputs {
                hash.write(u64::from(*port));
            }
        }
    };
    for _ in 0..def.warmup {
        drive_and_tick(&mut batch, &mut hashes);
    }
    let start = Instant::now();
    for _ in 0..def.measure {
        drive_and_tick(&mut batch, &mut hashes);
    }
    let elapsed = start.elapsed();
    let lane_censuses: Vec<EventCensus> =
        (0..lanes).map(|lane| batch.lane(lane).census()).collect();
    for (hash, census) in hashes.iter_mut().zip(&lane_censuses) {
        hash.write_census(census);
    }
    BatchRunResult {
        ns_per_tick_per_chip: elapsed.as_nanos() as f64 / (def.measure * lanes as u64) as f64,
        lane_checksums: hashes.iter().map(Fnv1a::finish).collect(),
        lane_censuses,
    }
}

/// The batch conformance gate: runs the entry through the batched backend
/// and proves **every lane** bit-identical (checksum and census) to a solo
/// chip consuming the same drive stream, and lane 0 equal to the entry's
/// pinned checksum. Only a result that passed this is worth timing.
pub fn verify_batch_workload(
    def: &WorkloadDef,
    lanes: usize,
) -> Result<BatchRunResult, ConformanceError> {
    verify_batch_workload_threads(def, lanes, 1)
}

/// [`verify_batch_workload`] at an explicit worker-thread count (both the
/// batch lanes and their solo twins run Phase B with `threads` workers).
pub fn verify_batch_workload_threads(
    def: &WorkloadDef,
    lanes: usize,
    threads: usize,
) -> Result<BatchRunResult, ConformanceError> {
    verify_batch_workload_inner(def, lanes, threads, true)
}

/// [`verify_batch_workload_threads`] with the lane-0 pin comparison
/// optional (tick-count overrides unpin the checksum; the lane-vs-solo
/// differential still gates).
fn verify_batch_workload_inner(
    def: &WorkloadDef,
    lanes: usize,
    threads: usize,
    require_pin: bool,
) -> Result<BatchRunResult, ConformanceError> {
    let result = run_batch_variant_threads(def, lanes, threads);
    let solo = Variant {
        strategy: EvalStrategy::Swar,
        scheduling: CoreScheduling::Sweep,
        threads,
        telemetry: false,
    };
    for lane in 0..lanes {
        let twin = run_variant_with_drive(def, &solo, lane_drive_seed(def, lane));
        if result.lane_checksums[lane] != twin.checksum || result.lane_censuses[lane] != twin.census
        {
            return Err(ConformanceError::Diverged {
                workload: def.name.to_string(),
                variant: format!("{}_lane{lane}", batch_label(lanes)),
                reference: twin.checksum,
                got: result.lane_checksums[lane],
            });
        }
        if twin.census.spikes == 0 {
            return Err(ConformanceError::Silent {
                workload: def.name.to_string(),
            });
        }
    }
    if require_pin && def.checksum != Some(result.lane_checksums[0]) {
        return Err(ConformanceError::Pin {
            workload: def.name.to_string(),
            pinned: def.checksum,
            computed: result.lane_checksums[0],
        });
    }
    Ok(result)
}

/// Emits the `batchN` timing records for one `batch`-flagged corpus entry
/// — after, and only after, [`verify_batch_workload`] proves every lane's
/// bit-identity at every measured lane count. Timing is best-of-three;
/// every re-run must reproduce the verified lane checksums.
pub fn batch_records(def: &WorkloadDef, host: Host) -> Result<Vec<Record>, ConformanceError> {
    batch_records_opts(def, host, SweepOptions::default())
}

/// [`batch_records`] with explicit rep/tick overrides.
pub fn batch_records_opts(
    def: &WorkloadDef,
    host: Host,
    opts: SweepOptions,
) -> Result<Vec<Record>, ConformanceError> {
    let def = opts.effective_def(def);
    let mut records = Vec::new();
    for &lanes in BATCH_LANES {
        let verified = verify_batch_workload_inner(&def, lanes, 1, opts.ticks.is_none())?;
        crate::mem::reset_peak_rss();
        let mut best = verified.ns_per_tick_per_chip;
        for _ in 0..opts.reps.saturating_sub(1).max(1) {
            let rerun = run_batch_variant(&def, lanes);
            if rerun.lane_checksums != verified.lane_checksums {
                return Err(ConformanceError::Diverged {
                    workload: def.name.to_string(),
                    variant: batch_label(lanes),
                    reference: verified.lane_checksums[0],
                    got: rerun.lane_checksums[0],
                });
            }
            best = best.min(rerun.ns_per_tick_per_chip);
        }
        let peak_rss_bytes = crate::mem::peak_rss_bytes();
        records.push(Record {
            workload: def.name.to_string(),
            variant: batch_label(lanes),
            unit: "ns_per_tick",
            value: best,
            census_checksum: verified.lane_checksums[0],
            ticks: def.measure,
            cores: def.cores(),
            threads: 1,
            host_cpus: host.cpus,
            os: host.os.to_string(),
            oversubscribed: false,
            check_factor: def.check_factor,
            peak_rss_bytes,
            // A batch holds `lanes` replicas: amortise the peak over the
            // simulated cores actually resident.
            bytes_per_core: peak_rss_bytes.map(|b| b / (def.cores() * lanes) as u64),
        });
    }
    Ok(records)
}

/// Regression threshold for the ops workloads (checkpoint, recovery):
/// single-shot operations — some in the sub-microsecond range — jitter
/// far more than steady-state tick loops, so the gate is looser than the
/// corpus default.
const OPS_CHECK_FACTOR: f64 = 2.0;

/// Extra tolerance multiplier applied when the record under test (or its
/// baseline counterpart) ran oversubscribed (`threads > host_cpus`).
/// Oversubscribed runs time-share one CPU across the worker pool, so the
/// OS scheduler — not the simulator — dominates run-to-run variance;
/// judging them at the quiet-run threshold turns jitter into false gate
/// failures. Census checks are unaffected: correctness is never advisory.
const OVERSUBSCRIBED_SLACK: f64 = 1.5;

fn ops_record(
    workload: &str,
    variant: &str,
    ns_per_op: f64,
    reps: u64,
    cores: usize,
    census: &EventCensus,
    host: Host,
) -> Record {
    let mut hash = Fnv1a::new();
    hash.write_census(census);
    Record {
        workload: workload.to_string(),
        variant: variant.to_string(),
        unit: "ns_per_op",
        value: ns_per_op,
        census_checksum: hash.finish(),
        ticks: reps,
        cores,
        threads: 1,
        host_cpus: host.cpus,
        os: host.os.to_string(),
        oversubscribed: false,
        check_factor: OPS_CHECK_FACTOR,
        // Single-shot ops (sub-µs saves, µs restores) churn no meaningful
        // residency of their own; memory is gated on the corpus sweeps.
        peak_rss_bytes: None,
        bytes_per_core: None,
    }
}

/// Measures checkpoint serialisation and restore latency on a warmed-up
/// corpus chip (mid-activity, so scheduler rings and potentials are
/// non-trivial). The restored chip's census must equal the original's —
/// the records also certify save/restore fidelity.
pub fn checkpoint_records(def: &WorkloadDef, host: Host) -> Vec<Record> {
    const REPS: u32 = 50;
    let variant = Variant {
        strategy: EvalStrategy::Swar,
        scheduling: CoreScheduling::Sweep,
        threads: 1,
        telemetry: false,
    };
    let (mut chip, _) = build_workload(def, variant.strategy, variant.scheduling, variant.threads);
    let mut noise = Lfsr::new(def.seed ^ 0x0D21_5EED);
    for _ in 0..def.warmup + 25 {
        let t = chip.now();
        for index in 0..def.structured() {
            crate::drive_core(
                &mut chip,
                &mut noise,
                index % def.width,
                index / def.width,
                def.drive_rate,
                t,
            );
        }
        chip.tick();
    }

    // Best-of-two passes, same as the corpus sweep: interference only
    // slows a pass down, so the minimum is the honest estimate.
    let mut save_ns = f64::INFINITY;
    let mut restore_ns = f64::INFINITY;
    let mut bytes = Vec::new();
    let mut restored = None;
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..REPS {
            bytes = chip.checkpoint().to_bytes();
        }
        save_ns = save_ns.min(start.elapsed().as_nanos() as f64 / f64::from(REPS));

        let start = Instant::now();
        for _ in 0..REPS {
            let snapshot = Snapshot::from_bytes(&bytes).expect("snapshot decodes");
            restored = Some(Chip::restore(snapshot).expect("snapshot restores"));
        }
        restore_ns = restore_ns.min(start.elapsed().as_nanos() as f64 / f64::from(REPS));
    }
    let census = chip.census();
    assert_eq!(
        restored.expect("measured at least once").census(),
        census,
        "restored chip census diverged from the checkpointed chip"
    );
    vec![
        ops_record(
            "chip_checkpoint",
            "checkpoint_save",
            save_ns,
            u64::from(REPS),
            def.cores(),
            &census,
            host,
        ),
        ops_record(
            "chip_checkpoint",
            "checkpoint_restore",
            restore_ns,
            u64::from(REPS),
            def.cores(),
            &census,
            host,
        ),
    ]
}

/// Measures the self-healing pipeline's three stages — telemetry-driven
/// detection, re-placement around a condemned cell, and checkpointed hot
/// migration — on a dense 8×8 relay-chain network (56 of 64 cells used,
/// so the repair has real spares to choose from). The migrated chip must
/// resume at the source chip's exact tick with an identical census, so the
/// records also certify migration fidelity.
pub fn recovery_records(host: Host) -> Vec<Record> {
    const REPS: u32 = 20;
    const CHAIN: usize = 56;
    const WARMUP: u64 = 50;

    let mut corelet = brainsim_corelet::Corelet::new("recovery-bench", 1);
    let template = brainsim_neuron::NeuronConfig::builder()
        .threshold(1)
        .build()
        .expect("neuron config");
    let pop = corelet.add_population(template, CHAIN);
    corelet
        .connect(brainsim_corelet::NodeRef::Input(0), pop[0], 1, 1)
        .expect("connect");
    for w in pop.windows(2) {
        corelet
            .connect(brainsim_corelet::NodeRef::Neuron(w[0]), w[1], 1, 2)
            .expect("connect");
    }
    corelet.mark_output(pop[CHAIN - 1]).expect("output");
    let net = corelet.into_network();
    let options = brainsim_compiler::CompileOptions {
        core_axons: 4,
        core_neurons: 2,
        relay_reserve: 1,
        grid: Some((8, 8)),
        seed: 7,
        ..brainsim_compiler::CompileOptions::default()
    };
    let mut compiled = brainsim_compiler::compile(&net, &options).expect("compile");
    compiled.chip_mut().enable_telemetry(TelemetryConfig {
        capacity: None,
        core_detail: true,
    });
    for t in 0..WARMUP {
        compiled.inject(0, t).expect("inject");
        compiled.tick();
    }
    let records: Vec<_> = compiled
        .chip()
        .telemetry()
        .expect("telemetry enabled")
        .records()
        .cloned()
        .collect();
    let map = compiled.network_map().clone();
    let condemned = vec![map.positions[map.positions.len() / 2]];

    // Each stage is timed best-of-two (minimum of two independent passes)
    // for the same reason as the corpus sweep: host interference only ever
    // inflates a pass.

    // Detection: a full four-detector observe pass per telemetry record.
    let mut detect_ns = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..REPS {
            let mut monitor = brainsim_recovery::HealthMonitor::new(
                brainsim_recovery::DetectorConfig::default(),
                8,
                8,
            );
            for r in &records {
                monitor.observe(r);
            }
        }
        detect_ns =
            detect_ns.min(start.elapsed().as_nanos() as f64 / (u64::from(REPS) * WARMUP) as f64);
    }

    // Re-placement: diff-minimising repair around the condemned cell.
    // Both passes keep their plans: the second pass's batch feeds the
    // second migration pass below.
    let mut replan_ns = f64::INFINITY;
    let mut batches = Vec::new();
    for _ in 0..2 {
        let start = Instant::now();
        let mut repaired = Vec::with_capacity(REPS as usize);
        for _ in 0..REPS {
            repaired
                .push(brainsim_compiler::repair(&net, &options, &map, &condemned).expect("repair"));
        }
        replan_ns = replan_ns.min(start.elapsed().as_nanos() as f64 / f64::from(REPS));
        batches.push(repaired);
    }

    // Hot migration: checkpoint, graft, validate, swap — one pass per
    // freshly planned batch (a plan is consumed by its migration).
    let mut migrate_ns = f64::INFINITY;
    for batch in &mut batches {
        let start = Instant::now();
        for r in batch.iter_mut() {
            brainsim_recovery::hot_migrate(compiled.chip(), r).expect("migrate");
        }
        migrate_ns = migrate_ns.min(start.elapsed().as_nanos() as f64 / f64::from(REPS));
    }
    let repaired = batches.pop().expect("two batches planned");

    let census = compiled.chip().census();
    let migrated = repaired.last().expect("measured at least once");
    assert_eq!(
        migrated.compiled.chip().now(),
        compiled.chip().now(),
        "migrated chip must resume at the source tick"
    );
    assert_eq!(
        migrated.compiled.chip().census(),
        census,
        "migrated chip census diverged from the source chip"
    );
    vec![
        ops_record(
            "chip_recovery",
            "detect_tick",
            detect_ns,
            u64::from(REPS),
            64,
            &census,
            host,
        ),
        ops_record(
            "chip_recovery",
            "replan",
            replan_ns,
            u64::from(REPS),
            64,
            &census,
            host,
        ),
        ops_record(
            "chip_recovery",
            "hot_migrate",
            migrate_ns,
            u64::from(REPS),
            64,
            &census,
            host,
        ),
    ]
}

/// The gate's judgement on one `(workload, variant)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Workload name.
    pub workload: String,
    /// Variant label.
    pub variant: String,
    /// What happened.
    pub status: VerdictStatus,
    /// Fresh value / baseline value, where both exist.
    pub ratio: Option<f64>,
    /// Fresh `peak_rss_bytes` / baseline `peak_rss_bytes`, where both
    /// records carry the memory fields (schema-1 baselines don't yet).
    pub mem_ratio: Option<f64>,
    /// The baseline was measured on a host with a different CPU count —
    /// carried as a field on the verdict (not a stderr warning) so timing
    /// judgements against a foreign-shaped baseline are visibly advisory.
    pub cpus_mismatch: bool,
}

/// Gate statuses, ordered from benign to fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictStatus {
    /// Within threshold, census identical.
    Ok,
    /// Fresh record with no baseline counterpart (informational).
    New,
    /// Timing exceeded `check_factor × baseline`.
    Regressed,
    /// Peak RSS exceeded `check_factor × baseline` — the memory-residency
    /// gate. Unlike timing, RSS barely depends on host shape, so this
    /// fails even against a foreign-CPU-count baseline.
    MemoryRegressed,
    /// Census checksum differs from the baseline — a correctness failure,
    /// never advisory.
    CensusDiverged,
    /// Baseline entry with no fresh counterpart — coverage loss.
    Missing,
}

impl Verdict {
    /// Whether this verdict fails the gate. Timing regressions against a
    /// baseline from a different host shape are advisory (the ratio is not
    /// comparable); census divergence and lost coverage always fail.
    pub fn failing(&self) -> bool {
        match self.status {
            VerdictStatus::Ok | VerdictStatus::New => false,
            VerdictStatus::Regressed => !self.cpus_mismatch,
            VerdictStatus::MemoryRegressed
            | VerdictStatus::CensusDiverged
            | VerdictStatus::Missing => true,
        }
    }

    /// One-line machine-readable rendering (the gate's stdout format).
    pub fn to_line(&self) -> String {
        let status = match self.status {
            VerdictStatus::Ok => "ok",
            VerdictStatus::New => "new",
            VerdictStatus::Regressed => "regressed",
            VerdictStatus::MemoryRegressed => "memory_regressed",
            VerdictStatus::CensusDiverged => "census_diverged",
            VerdictStatus::Missing => "missing",
        };
        let ratio = self.ratio.map_or("null".to_string(), |r| format!("{r:.3}"));
        let mem = self
            .mem_ratio
            .map_or("null".to_string(), |r| format!("{r:.3}"));
        format!(
            "{{\"workload\":\"{}\",\"variant\":\"{}\",\"status\":\"{status}\",\"ratio\":{ratio},\"mem_ratio\":{mem},\"cpus_mismatch\":{},\"failing\":{}}}",
            self.workload,
            self.variant,
            self.cpus_mismatch,
            self.failing(),
        )
    }
}

/// Compares fresh records against a committed baseline, per
/// `(workload, variant)`, applying each baseline record's own
/// `check_factor`. Returns every verdict; the gate fails if any verdict
/// is [`Verdict::failing`].
pub fn check(baseline: &[Record], fresh: &[Record], host: Host) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    for base in baseline {
        let cpus_mismatch = base.host_cpus != host.cpus;
        let Some(new) = fresh
            .iter()
            .find(|r| r.workload == base.workload && r.variant == base.variant)
        else {
            verdicts.push(Verdict {
                workload: base.workload.clone(),
                variant: base.variant.clone(),
                status: VerdictStatus::Missing,
                ratio: None,
                mem_ratio: None,
                cpus_mismatch,
            });
            continue;
        };
        let ratio = new.value / base.value;
        let mem_ratio = match (base.peak_rss_bytes, new.peak_rss_bytes) {
            (Some(b), Some(n)) if b > 0 => Some(n as f64 / b as f64),
            _ => None,
        };
        let factor = if base.oversubscribed || new.oversubscribed {
            base.check_factor * OVERSUBSCRIBED_SLACK
        } else {
            base.check_factor
        };
        let status = if new.census_checksum != base.census_checksum {
            VerdictStatus::CensusDiverged
        } else if mem_ratio.is_some_and(|m| m > base.check_factor) {
            // Residency regression: judged at the raw check_factor (RSS
            // doesn't jitter with oversubscription the way timing does).
            VerdictStatus::MemoryRegressed
        } else if ratio > factor {
            VerdictStatus::Regressed
        } else {
            VerdictStatus::Ok
        };
        verdicts.push(Verdict {
            workload: base.workload.clone(),
            variant: base.variant.clone(),
            status,
            ratio: Some(ratio),
            mem_ratio,
            cpus_mismatch,
        });
    }
    for new in fresh {
        let known = baseline
            .iter()
            .any(|b| b.workload == new.workload && b.variant == new.variant);
        if !known {
            verdicts.push(Verdict {
                workload: new.workload.clone(),
                variant: new.variant.clone(),
                status: VerdictStatus::New,
                ratio: None,
                mem_ratio: None,
                cpus_mismatch: false,
            });
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, variant: &str, value: f64, checksum: u64, cpus: usize) -> Record {
        Record {
            workload: workload.to_string(),
            variant: variant.to_string(),
            unit: "ns_per_tick",
            value,
            census_checksum: checksum,
            ticks: 100,
            cores: 64,
            threads: 1,
            host_cpus: cpus,
            os: "linux".to_string(),
            oversubscribed: false,
            check_factor: 1.25,
            peak_rss_bytes: None,
            bytes_per_core: None,
        }
    }

    #[test]
    fn matrix_covers_required_space() {
        let m = conformance_matrix();
        assert_eq!(m.len(), 13);
        for strategy in [
            EvalStrategy::Swar,
            EvalStrategy::Sparse,
            EvalStrategy::Dense,
        ] {
            for scheduling in [CoreScheduling::Sweep, CoreScheduling::Active] {
                for threads in [1, 8] {
                    assert!(
                        m.iter().any(|v| v.strategy == strategy
                            && v.scheduling == scheduling
                            && v.threads == threads),
                        "matrix misses {strategy:?}/{scheduling:?}/t{threads}"
                    );
                }
            }
        }
        assert!(m.iter().any(|v| v.telemetry));
        // Every timed variant is drawn from the verified matrix.
        let timed = timed_variants();
        assert!(timed.iter().all(|t| m.contains(t)));
    }

    #[test]
    fn variant_labels_are_stable() {
        let v = Variant {
            strategy: EvalStrategy::Swar,
            scheduling: CoreScheduling::Active,
            threads: 8,
            telemetry: false,
        };
        assert_eq!(v.label(), "active_swar_t8");
        let t = Variant {
            strategy: EvalStrategy::Swar,
            scheduling: CoreScheduling::Sweep,
            threads: 1,
            telemetry: true,
        };
        assert_eq!(t.label(), "sweep_swar_t1_telemetry");
    }

    #[test]
    fn check_flags_regression_divergence_and_loss() {
        let host = Host {
            cpus: 1,
            os: "linux",
        };
        let baseline = vec![
            record("w", "a", 100.0, 1, 1),
            record("w", "b", 100.0, 2, 1),
            record("w", "c", 100.0, 3, 1),
        ];
        let fresh = vec![
            record("w", "a", 200.0, 1, 1), // regressed (2.0 > 1.25)
            record("w", "b", 100.0, 9, 1), // census diverged
            // "c" missing
            record("w", "d", 50.0, 4, 1), // new, informational
        ];
        let verdicts = check(&baseline, &fresh, host);
        let by = |v: &str| verdicts.iter().find(|x| x.variant == v).unwrap().clone();
        assert_eq!(by("a").status, VerdictStatus::Regressed);
        assert!(by("a").failing());
        assert_eq!(by("b").status, VerdictStatus::CensusDiverged);
        assert_eq!(by("c").status, VerdictStatus::Missing);
        assert_eq!(by("d").status, VerdictStatus::New);
        assert!(!by("d").failing());
    }

    #[test]
    fn oversubscribed_records_get_wider_timing_slack() {
        let host = Host {
            cpus: 1,
            os: "linux",
        };
        let mut base = record("w", "t8", 100.0, 1, 1);
        base.oversubscribed = true;
        let mut fresh = record("w", "t8", 170.0, 1, 1);
        fresh.oversubscribed = true;
        // 1.7 > check_factor 1.25, but within 1.25 × OVERSUBSCRIBED_SLACK.
        let verdicts = check(&[base.clone()], &[fresh.clone()], host);
        assert_eq!(verdicts[0].status, VerdictStatus::Ok);
        // Beyond the widened threshold it still regresses.
        fresh.value = 100.0 * base.check_factor * OVERSUBSCRIBED_SLACK + 1.0;
        let verdicts = check(&[base.clone()], &[fresh.clone()], host);
        assert_eq!(verdicts[0].status, VerdictStatus::Regressed);
        // Census divergence is never excused by oversubscription.
        fresh.value = 100.0;
        fresh.census_checksum = 2;
        let verdicts = check(&[base], &[fresh], host);
        assert_eq!(verdicts[0].status, VerdictStatus::CensusDiverged);
        assert!(verdicts[0].failing());
    }

    #[test]
    fn timing_regression_on_foreign_host_is_advisory_but_divergence_is_not() {
        let host = Host {
            cpus: 8,
            os: "linux",
        };
        let baseline = vec![record("w", "a", 100.0, 1, 1), record("w", "b", 100.0, 2, 1)];
        let fresh = vec![record("w", "a", 500.0, 1, 8), record("w", "b", 100.0, 7, 8)];
        let verdicts = check(&baseline, &fresh, host);
        assert_eq!(verdicts[0].status, VerdictStatus::Regressed);
        assert!(verdicts[0].cpus_mismatch);
        assert!(!verdicts[0].failing(), "foreign-host timing is advisory");
        assert!(verdicts[0].to_line().contains("\"cpus_mismatch\":true"));
        assert!(verdicts[1].failing(), "census divergence always gates");
    }

    #[test]
    fn memory_regression_gates_even_on_foreign_hosts() {
        let host = Host {
            cpus: 8,
            os: "linux",
        };
        let mut base = record("w", "a", 100.0, 1, 1); // baseline from a 1-cpu box
        base.peak_rss_bytes = Some(100 << 20);
        base.bytes_per_core = Some((100 << 20) / 64);
        // Timing fine, residency blown past check_factor 1.25.
        let mut fresh = record("w", "a", 100.0, 1, 8);
        fresh.peak_rss_bytes = Some(200 << 20);
        fresh.bytes_per_core = Some((200 << 20) / 64);
        let verdicts = check(&[base.clone()], &[fresh.clone()], host);
        assert_eq!(verdicts[0].status, VerdictStatus::MemoryRegressed);
        assert_eq!(verdicts[0].mem_ratio, Some(2.0));
        assert!(verdicts[0].cpus_mismatch);
        assert!(verdicts[0].failing(), "memory regression is never advisory");
        assert!(verdicts[0].to_line().contains("\"mem_ratio\":2.000"));
        // Within threshold: ok, ratio still reported.
        fresh.peak_rss_bytes = Some(110 << 20);
        let verdicts = check(&[base.clone()], &[fresh.clone()], host);
        assert_eq!(verdicts[0].status, VerdictStatus::Ok);
        assert!(verdicts[0].mem_ratio.is_some());
        // A schema-1 baseline (no memory fields) yields no memory verdict.
        base.peak_rss_bytes = None;
        fresh.peak_rss_bytes = Some(1 << 40);
        let verdicts = check(&[base], &[fresh], host);
        assert_eq!(verdicts[0].status, VerdictStatus::Ok);
        assert_eq!(verdicts[0].mem_ratio, None);
    }

    #[test]
    fn tick_override_unpins_the_checksum() {
        let def = crate::corpus::find("nemo_8x8_lo").expect("corpus entry");
        let opts = SweepOptions {
            reps: 3,
            ticks: Some(7),
        };
        let eff = opts.effective_def(&def);
        assert_eq!(eff.measure, 7);
        assert_eq!(eff.checksum, None);
        assert_eq!(eff.warmup, def.warmup);
        let default = SweepOptions::default().effective_def(&def);
        assert_eq!(default.measure, def.measure);
        assert_eq!(default.checksum, def.checksum);
    }
}
