//! Measures the tick pipeline and writes the `BENCH_chip_tick.json`
//! baseline: wall-clock ns/tick for the serial full-sweep seed path, the
//! active-core scheduler at 1/2/4/8 threads, and the full-sweep path with
//! telemetry enabled (the instrumentation-overhead probe), on a dense 8×8
//! workload and a 95%-quiescent sparse island workload. Each variant's
//! final event census is cross-checked against the sweep baseline, so the
//! file also certifies that every measured configuration — including the
//! instrumented one — produced bit-identical results.
//!
//! Usage:
//!
//! * `bench_chip_tick [out.json]` — measure and write a baseline (default
//!   `BENCH_chip_tick.json` in the working directory).
//! * `bench_chip_tick --check <baseline.json>` — re-measure and exit
//!   non-zero if any variant present in the baseline regressed by more than
//!   25% ns/tick, or if any variant's census diverged. The CI bench gate.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use brainsim_bench::{drive_random, drive_random_cores, random_chip, RandomChipSpec};
use brainsim_chip::{Chip, CoreScheduling, Snapshot, TelemetryConfig};
use brainsim_core::EvalStrategy;
use brainsim_energy::EventCensus;

const ISLAND: usize = 3;
const WARMUP_TICKS: u64 = 50;
const MEASURE_TICKS: u64 = 300;
const RATE: u32 = 32;
const DRIVE_SEED: u32 = 3;
/// A variant fails the `--check` gate when its ns/tick exceeds the
/// committed baseline by more than this factor.
const REGRESSION_FACTOR: f64 = 1.25;

struct Variant {
    name: &'static str,
    scheduling: CoreScheduling,
    threads: usize,
    telemetry: bool,
    strategy: EvalStrategy,
}

const VARIANTS: [Variant; 8] = [
    Variant {
        name: "sweep_t1",
        scheduling: CoreScheduling::Sweep,
        threads: 1,
        telemetry: false,
        strategy: EvalStrategy::Swar,
    },
    Variant {
        // The scalar reference path the SWAR kernel replaced; kept in the
        // baseline so the word-parallel speedup stays visible (and gated).
        name: "sweep_t1_scalar",
        scheduling: CoreScheduling::Sweep,
        threads: 1,
        telemetry: false,
        strategy: EvalStrategy::Sparse,
    },
    Variant {
        // Explicitly named SWAR coverage: `--check` fails MISSING if the
        // word-parallel strategy ever disappears from this binary.
        name: "sweep_t1_swar",
        scheduling: CoreScheduling::Sweep,
        threads: 1,
        telemetry: false,
        strategy: EvalStrategy::Swar,
    },
    Variant {
        name: "sweep_t1_telemetry",
        scheduling: CoreScheduling::Sweep,
        threads: 1,
        telemetry: true,
        strategy: EvalStrategy::Swar,
    },
    Variant {
        name: "active_t1",
        scheduling: CoreScheduling::Active,
        threads: 1,
        telemetry: false,
        strategy: EvalStrategy::Swar,
    },
    Variant {
        name: "active_t2",
        scheduling: CoreScheduling::Active,
        threads: 2,
        telemetry: false,
        strategy: EvalStrategy::Swar,
    },
    Variant {
        name: "active_t4",
        scheduling: CoreScheduling::Active,
        threads: 4,
        telemetry: false,
        strategy: EvalStrategy::Swar,
    },
    Variant {
        name: "active_t8",
        scheduling: CoreScheduling::Active,
        threads: 8,
        telemetry: false,
        strategy: EvalStrategy::Swar,
    },
];

struct Measurement {
    name: &'static str,
    ns_per_tick: f64,
    census: EventCensus,
}

fn measure(spec: &RandomChipSpec, sparse: bool, telemetry: bool) -> (f64, EventCensus) {
    let mut chip = random_chip(spec);
    if telemetry {
        chip.enable_telemetry(TelemetryConfig::default());
    }
    let drive = |chip: &mut brainsim_chip::Chip, ticks: u64| {
        if sparse {
            drive_random_cores(chip, ticks, RATE, DRIVE_SEED, ISLAND);
        } else {
            drive_random(chip, ticks, RATE, DRIVE_SEED);
        }
    };
    drive(&mut chip, WARMUP_TICKS);
    let start = Instant::now();
    drive(&mut chip, MEASURE_TICKS);
    let elapsed = start.elapsed();
    (
        elapsed.as_nanos() as f64 / MEASURE_TICKS as f64,
        chip.census(),
    )
}

fn run_workload(name: &str, base: RandomChipSpec, sparse: bool) -> (String, Vec<Measurement>) {
    let mut rows: Vec<Measurement> = Vec::new();
    for v in &VARIANTS {
        let spec = RandomChipSpec {
            scheduling: v.scheduling,
            threads: v.threads,
            strategy: v.strategy,
            ..base
        };
        let (ns_per_tick, census) = measure(&spec, sparse, v.telemetry);
        eprintln!("  {name}/{:<18} {:>12.0} ns/tick", v.name, ns_per_tick);
        rows.push(Measurement {
            name: v.name,
            ns_per_tick,
            census,
        });
    }
    // Every variant must reproduce the sweep baseline's census exactly —
    // same stimulus, same dynamics, bit-identical accounting, with or
    // without instrumentation.
    let bit_identical = rows.iter().all(|m| m.census == rows[0].census);
    assert!(
        bit_identical,
        "variant census diverged from the sweep baseline"
    );

    let baseline = rows[0].ns_per_tick;
    let mut json = String::new();
    let _ = write!(
        json,
        "    {{\n      \"name\": \"{name}\",\n      \"cores\": {},\n      \"quiescent_cores\": {},\n      \"bit_identical_census\": {bit_identical},\n      \"variants\": [\n",
        base.width * base.height,
        if sparse { base.width * base.height - ISLAND } else { 0 },
    );
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{ \"name\": \"{}\", \"ns_per_tick\": {:.0}, \"speedup_vs_sweep_t1\": {:.2} }}{comma}",
            m.name,
            m.ns_per_tick,
            baseline / m.ns_per_tick,
        );
    }
    json.push_str("      ]\n    }");
    (json, rows)
}

/// Measures checkpoint serialization and restore latency on a warmed-up
/// chip (mid-activity, so scheduler rings and potentials are non-trivial).
/// The restored chip's census must equal the original's — the baseline also
/// certifies save/restore fidelity. Reuses the `ns_per_tick` JSON field
/// (here: ns per whole operation) so the `--check` parser needs no schema
/// change.
fn run_checkpoint_workload(base: RandomChipSpec) -> (String, Vec<Measurement>) {
    const REPS: u32 = 50;
    let spec = RandomChipSpec { threads: 1, ..base };
    let mut chip = random_chip(&spec);
    drive_random(&mut chip, WARMUP_TICKS + 25, RATE, DRIVE_SEED);

    let start = Instant::now();
    let mut bytes = Vec::new();
    for _ in 0..REPS {
        bytes = chip.checkpoint().to_bytes();
    }
    let save_ns = start.elapsed().as_nanos() as f64 / REPS as f64;

    let start = Instant::now();
    let mut restored = None;
    for _ in 0..REPS {
        let snapshot = Snapshot::from_bytes(&bytes).expect("snapshot decodes");
        restored = Some(Chip::restore(snapshot).expect("snapshot restores"));
    }
    let restore_ns = start.elapsed().as_nanos() as f64 / REPS as f64;
    let census = chip.census();
    assert_eq!(
        restored.expect("measured at least once").census(),
        census,
        "restored chip census diverged from the checkpointed chip"
    );

    eprintln!(
        "  chip_checkpoint/checkpoint_save    {save_ns:>12.0} ns/op  ({} bytes)",
        bytes.len()
    );
    eprintln!("  chip_checkpoint/checkpoint_restore {restore_ns:>12.0} ns/op");
    let rows = vec![
        Measurement {
            name: "checkpoint_save",
            ns_per_tick: save_ns,
            census,
        },
        Measurement {
            name: "checkpoint_restore",
            ns_per_tick: restore_ns,
            census,
        },
    ];
    let mut json = String::new();
    let _ = write!(
        json,
        "    {{\n      \"name\": \"chip_checkpoint\",\n      \"cores\": {},\n      \"snapshot_bytes\": {},\n      \"variants\": [\n",
        base.width * base.height,
        bytes.len(),
    );
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{ \"name\": \"{}\", \"ns_per_tick\": {:.0} }}{comma}",
            m.name, m.ns_per_tick,
        );
    }
    json.push_str("      ]\n    }");
    (json, rows)
}

/// Measures the self-healing pipeline's three stages — telemetry-driven
/// detection, re-placement around a condemned cell, and checkpointed hot
/// migration — on a dense 8×8 relay-chain network (56 of 64 cells used,
/// so the repair has real spares to choose from). Latencies are ns/op;
/// the migrated chip must resume at the source chip's exact tick with an
/// identical census, so the baseline also certifies migration fidelity.
fn run_recovery_workload() -> (String, Vec<Measurement>) {
    const REPS: u32 = 20;
    const CHAIN: usize = 56;
    const WARMUP: u64 = 50;

    let mut corelet = brainsim_corelet::Corelet::new("recovery-bench", 1);
    let template = brainsim_neuron::NeuronConfig::builder()
        .threshold(1)
        .build()
        .expect("neuron config");
    let pop = corelet.add_population(template, CHAIN);
    corelet
        .connect(brainsim_corelet::NodeRef::Input(0), pop[0], 1, 1)
        .expect("connect");
    for w in pop.windows(2) {
        corelet
            .connect(brainsim_corelet::NodeRef::Neuron(w[0]), w[1], 1, 2)
            .expect("connect");
    }
    corelet.mark_output(pop[CHAIN - 1]).expect("output");
    let net = corelet.into_network();
    let options = brainsim_compiler::CompileOptions {
        core_axons: 4,
        core_neurons: 2,
        relay_reserve: 1,
        grid: Some((8, 8)),
        seed: 7,
        ..brainsim_compiler::CompileOptions::default()
    };
    let mut compiled = brainsim_compiler::compile(&net, &options).expect("compile");
    compiled.chip_mut().enable_telemetry(TelemetryConfig {
        capacity: None,
        core_detail: true,
    });
    for t in 0..WARMUP {
        compiled.inject(0, t).expect("inject");
        compiled.tick();
    }
    let records: Vec<_> = compiled
        .chip()
        .telemetry()
        .expect("telemetry enabled")
        .records()
        .cloned()
        .collect();
    let map = compiled.network_map().clone();
    let condemned = vec![map.positions[map.positions.len() / 2]];

    // Detection: a full four-detector observe pass per telemetry record.
    let start = Instant::now();
    for _ in 0..REPS {
        let mut monitor = brainsim_recovery::HealthMonitor::new(
            brainsim_recovery::DetectorConfig::default(),
            8,
            8,
        );
        for r in &records {
            monitor.observe(r);
        }
    }
    let detect_ns = start.elapsed().as_nanos() as f64 / (REPS as u64 * WARMUP) as f64;

    // Re-placement: diff-minimising repair around the condemned cell.
    let start = Instant::now();
    let mut repaired = Vec::with_capacity(REPS as usize);
    for _ in 0..REPS {
        repaired.push(brainsim_compiler::repair(&net, &options, &map, &condemned).expect("repair"));
    }
    let replan_ns = start.elapsed().as_nanos() as f64 / REPS as f64;

    // Hot migration: checkpoint, graft, validate, swap.
    let start = Instant::now();
    for r in &mut repaired {
        brainsim_recovery::hot_migrate(compiled.chip(), r).expect("migrate");
    }
    let migrate_ns = start.elapsed().as_nanos() as f64 / REPS as f64;

    let census = compiled.chip().census();
    let migrated = repaired.last().expect("measured at least once");
    assert_eq!(
        migrated.compiled.chip().now(),
        compiled.chip().now(),
        "migrated chip must resume at the source tick"
    );
    assert_eq!(
        migrated.compiled.chip().census(),
        census,
        "migrated chip census diverged from the source chip"
    );

    eprintln!("  chip_recovery/detect_tick          {detect_ns:>12.0} ns/op");
    eprintln!("  chip_recovery/replan               {replan_ns:>12.0} ns/op");
    eprintln!("  chip_recovery/hot_migrate          {migrate_ns:>12.0} ns/op");
    let rows = vec![
        Measurement {
            name: "detect_tick",
            ns_per_tick: detect_ns,
            census,
        },
        Measurement {
            name: "replan",
            ns_per_tick: replan_ns,
            census,
        },
        Measurement {
            name: "hot_migrate",
            ns_per_tick: migrate_ns,
            census,
        },
    ];
    let mut json = String::new();
    let _ = write!(
        json,
        "    {{\n      \"name\": \"chip_recovery\",\n      \"cores\": {CHAIN},\n      \"moved_cores\": {},\n      \"variants\": [\n",
        repaired.last().map(|r| r.moves.len()).unwrap_or(0),
    );
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{ \"name\": \"{}\", \"ns_per_tick\": {:.0} }}{comma}",
            m.name, m.ns_per_tick,
        );
    }
    json.push_str("      ]\n    }");
    (json, rows)
}

/// Extracts `"key": <number>` from a JSON line, or `"key": "<string>"`.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', ' ', '}', '\n']).next()
    }
}

/// Parses the committed baseline's `(workload, variant, ns_per_tick)`
/// entries. The writer emits one line per variant carrying both a `name`
/// and an `ns_per_tick` field; workload headers carry only a `name`.
fn parse_baseline(text: &str) -> Vec<(String, String, f64)> {
    let mut entries = Vec::new();
    let mut workload = String::new();
    for line in text.lines() {
        let Some(name) = json_field(line, "name") else {
            continue;
        };
        match json_field(line, "ns_per_tick").and_then(|v| v.parse::<f64>().ok()) {
            Some(ns) => entries.push((workload.clone(), name.to_string(), ns)),
            None => workload = name.to_string(),
        }
    }
    entries
}

/// The `--check` gate: re-measures and compares against the committed
/// baseline. Returns the number of regressed variants.
fn check(baseline_path: &str) -> usize {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let expected = parse_baseline(&text);
    assert!(
        !expected.is_empty(),
        "no variants parsed from {baseline_path}"
    );
    // ns/tick baselines only transfer between identical hosts; flag a CPU
    // count mismatch loudly so a surprising verdict is read in context.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let baseline_cpus = text
        .lines()
        .find_map(|l| json_field(l, "cpus").and_then(|v| v.parse::<usize>().ok()));
    match baseline_cpus {
        Some(cpus) if cpus != host_cpus => eprintln!(
            "WARNING: baseline was measured on {cpus} cpu(s) but this host has \
             {host_cpus}; thread-scaling variants are not comparable — regenerate \
             the baseline on this host before trusting a regression verdict"
        ),
        None => eprintln!("WARNING: baseline records no host cpu count"),
        _ => {}
    }

    let dense = RandomChipSpec {
        width: 8,
        height: 8,
        threads: 1,
        ..RandomChipSpec::default()
    };
    let sparse = RandomChipSpec {
        island: Some(ISLAND),
        ..dense
    };
    let (_, dense_rows) = run_workload("dense_8x8", dense, false);
    let (_, sparse_rows) = run_workload("sparse_8x8_95pct_quiescent", sparse, true);
    let (_, ckpt_rows) = run_checkpoint_workload(dense);
    let (_, recovery_rows) = run_recovery_workload();
    let current = |workload: &str, variant: &str| -> Option<f64> {
        let rows = match workload {
            "dense_8x8" => &dense_rows,
            "sparse_8x8_95pct_quiescent" => &sparse_rows,
            "chip_checkpoint" => &ckpt_rows,
            "chip_recovery" => &recovery_rows,
            _ => return None,
        };
        rows.iter()
            .find(|m| m.name == variant)
            .map(|m| m.ns_per_tick)
    };

    let mut regressions = 0;
    for (workload, variant, baseline_ns) in &expected {
        let Some(now_ns) = current(workload, variant) else {
            // A baseline variant this binary no longer measures: renamed or
            // removed — regenerate the baseline rather than silently pass.
            eprintln!("MISSING {workload}/{variant} (in baseline, not measured)");
            regressions += 1;
            continue;
        };
        let ratio = now_ns / baseline_ns;
        let verdict = if ratio > REGRESSION_FACTOR {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "  {workload}/{variant:<18} baseline {baseline_ns:>10.0} now {now_ns:>10.0} ({ratio:>5.2}x) {verdict}"
        );
    }
    if regressions == 0 {
        eprintln!(
            "bench check passed: {} variants within {REGRESSION_FACTOR}x",
            expected.len()
        );
    }
    regressions
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if args.first().map(String::as_str) == Some("--check") {
        let baseline = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_chip_tick.json");
        eprintln!("chip_tick check vs {baseline} ({cpus} cpu(s))");
        let regressions = check(baseline);
        return if regressions == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!("{regressions} variant(s) regressed beyond {REGRESSION_FACTOR}x");
            ExitCode::FAILURE
        };
    }

    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_chip_tick.json".to_string());

    let dense = RandomChipSpec {
        width: 8,
        height: 8,
        threads: 1,
        ..RandomChipSpec::default()
    };
    let sparse = RandomChipSpec {
        island: Some(ISLAND),
        ..dense
    };

    eprintln!("chip_tick baseline ({cpus} cpu(s), {MEASURE_TICKS} measured ticks)");
    let (dense_json, _) = run_workload("dense_8x8", dense, false);
    let (sparse_json, _) = run_workload("sparse_8x8_95pct_quiescent", sparse, true);
    let (ckpt_json, _) = run_checkpoint_workload(dense);
    let (recovery_json, _) = run_recovery_workload();

    let json = format!(
        "{{\n  \"bench\": \"chip_tick\",\n  \"host\": {{ \"cpus\": {cpus}, \"os\": \"{}\" }},\n  \"warmup_ticks\": {WARMUP_TICKS},\n  \"measured_ticks\": {MEASURE_TICKS},\n  \"drive_rate_per_256\": {RATE},\n  \"workloads\": [\n{dense_json},\n{sparse_json},\n{ckpt_json},\n{recovery_json}\n  ]\n}}\n",
        std::env::consts::OS,
    );
    std::fs::write(&out, json).expect("write baseline");
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}
