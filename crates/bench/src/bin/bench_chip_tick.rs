//! Measures the tick pipeline and writes the `BENCH_chip_tick.json`
//! baseline: wall-clock ns/tick for the serial full-sweep seed path and
//! the active-core scheduler at 1/2/4/8 threads, on a dense 8×8 workload
//! and a 95%-quiescent sparse island workload. Each variant's final event
//! census is cross-checked against the sweep baseline, so the file also
//! certifies that every measured configuration produced bit-identical
//! results.
//!
//! Usage: `cargo run --release -p brainsim-bench --bin bench_chip_tick
//! [out.json]` (default `BENCH_chip_tick.json` in the working directory).

use std::fmt::Write as _;
use std::time::Instant;

use brainsim_bench::{drive_random, drive_random_cores, random_chip, RandomChipSpec};
use brainsim_chip::CoreScheduling;
use brainsim_energy::EventCensus;

const ISLAND: usize = 3;
const WARMUP_TICKS: u64 = 50;
const MEASURE_TICKS: u64 = 300;
const RATE: u32 = 32;
const DRIVE_SEED: u32 = 3;

struct Variant {
    name: &'static str,
    scheduling: CoreScheduling,
    threads: usize,
}

const VARIANTS: [Variant; 5] = [
    Variant {
        name: "sweep_t1",
        scheduling: CoreScheduling::Sweep,
        threads: 1,
    },
    Variant {
        name: "active_t1",
        scheduling: CoreScheduling::Active,
        threads: 1,
    },
    Variant {
        name: "active_t2",
        scheduling: CoreScheduling::Active,
        threads: 2,
    },
    Variant {
        name: "active_t4",
        scheduling: CoreScheduling::Active,
        threads: 4,
    },
    Variant {
        name: "active_t8",
        scheduling: CoreScheduling::Active,
        threads: 8,
    },
];

struct Measurement {
    name: &'static str,
    ns_per_tick: f64,
    census: EventCensus,
}

fn measure(spec: &RandomChipSpec, sparse: bool) -> (f64, EventCensus) {
    let mut chip = random_chip(spec);
    let drive = |chip: &mut brainsim_chip::Chip, ticks: u64| {
        if sparse {
            drive_random_cores(chip, ticks, RATE, DRIVE_SEED, ISLAND);
        } else {
            drive_random(chip, ticks, RATE, DRIVE_SEED);
        }
    };
    drive(&mut chip, WARMUP_TICKS);
    let start = Instant::now();
    drive(&mut chip, MEASURE_TICKS);
    let elapsed = start.elapsed();
    (
        elapsed.as_nanos() as f64 / MEASURE_TICKS as f64,
        chip.census(),
    )
}

fn run_workload(name: &str, base: RandomChipSpec, sparse: bool) -> (String, bool) {
    let mut rows: Vec<Measurement> = Vec::new();
    for v in &VARIANTS {
        let spec = RandomChipSpec {
            scheduling: v.scheduling,
            threads: v.threads,
            ..base
        };
        let (ns_per_tick, census) = measure(&spec, sparse);
        eprintln!("  {name}/{:<10} {:>12.0} ns/tick", v.name, ns_per_tick);
        rows.push(Measurement {
            name: v.name,
            ns_per_tick,
            census,
        });
    }
    // Every variant must reproduce the sweep baseline's census exactly —
    // same stimulus, same dynamics, bit-identical accounting.
    let bit_identical = rows.iter().all(|m| m.census == rows[0].census);
    assert!(
        bit_identical,
        "variant census diverged from the sweep baseline"
    );

    let baseline = rows[0].ns_per_tick;
    let mut json = String::new();
    let _ = write!(
        json,
        "    {{\n      \"name\": \"{name}\",\n      \"cores\": {},\n      \"quiescent_cores\": {},\n      \"bit_identical_census\": {bit_identical},\n      \"variants\": [\n",
        base.width * base.height,
        if sparse { base.width * base.height - ISLAND } else { 0 },
    );
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{ \"name\": \"{}\", \"ns_per_tick\": {:.0}, \"speedup_vs_sweep_t1\": {:.2} }}{comma}",
            m.name,
            m.ns_per_tick,
            baseline / m.ns_per_tick,
        );
    }
    json.push_str("      ]\n    }");
    (json, bit_identical)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chip_tick.json".to_string());
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let dense = RandomChipSpec {
        width: 8,
        height: 8,
        threads: 1,
        ..RandomChipSpec::default()
    };
    let sparse = RandomChipSpec {
        island: Some(ISLAND),
        ..dense
    };

    eprintln!("chip_tick baseline ({cpus} cpu(s), {MEASURE_TICKS} measured ticks)");
    let (dense_json, _) = run_workload("dense_8x8", dense, false);
    let (sparse_json, _) = run_workload("sparse_8x8_95pct_quiescent", sparse, true);

    let json = format!(
        "{{\n  \"bench\": \"chip_tick\",\n  \"host\": {{ \"cpus\": {cpus}, \"os\": \"{}\" }},\n  \"warmup_ticks\": {WARMUP_TICKS},\n  \"measured_ticks\": {MEASURE_TICKS},\n  \"drive_rate_per_256\": {RATE},\n  \"workloads\": [\n{dense_json},\n{sparse_json}\n  ]\n}}\n",
        std::env::consts::OS,
    );
    std::fs::write(&out, json).expect("write baseline");
    eprintln!("wrote {out}");
}
