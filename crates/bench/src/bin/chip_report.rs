//! Runs an instrumented chip workload and renders the telemetry report:
//! a run-summary table (spikes, quiescence, routing, faults, energy) and
//! the per-core activity heatmap, with optional JSONL / CSV export of the
//! per-tick record stream.
//!
//! Usage: `cargo run --release -p brainsim-bench --bin chip_report --
//! [--ticks N] [--sparse] [--threads N] [--faults] [--jsonl PATH]
//! [--csv PATH]`

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use brainsim_bench::{drive_random, drive_random_cores, random_chip, RandomChipSpec};
use brainsim_chip::{CoreScheduling, TelemetryConfig};
use brainsim_energy::EnergyModel;
use brainsim_faults::FaultPlan;
use brainsim_telemetry::{render_heatmap, CsvExporter, JsonlExporter, RunSummary};

const ISLAND: usize = 3;
const RATE: u32 = 32;
const DRIVE_SEED: u32 = 3;

struct Options {
    ticks: u64,
    sparse: bool,
    threads: usize,
    faults: bool,
    jsonl: Option<String>,
    csv: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        ticks: 200,
        sparse: false,
        threads: 1,
        faults: false,
        jsonl: None,
        csv: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--ticks" => {
                opts.ticks = value("--ticks")?
                    .parse()
                    .map_err(|e| format!("--ticks: {e}"))?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--sparse" => opts.sparse = true,
            "--faults" => opts.faults = true,
            "--jsonl" => opts.jsonl = Some(value("--jsonl")?),
            "--csv" => opts.csv = Some(value("--csv")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("chip_report: {e}");
            return ExitCode::FAILURE;
        }
    };

    let spec = RandomChipSpec {
        width: 8,
        height: 8,
        threads: opts.threads,
        scheduling: CoreScheduling::Active,
        island: opts.sparse.then_some(ISLAND),
        ..RandomChipSpec::default()
    };
    let mut chip = random_chip(&spec);
    if opts.faults {
        chip.set_fault_plan(
            &FaultPlan::new(17)
                .with_link_drop(0.05)
                .with_link_delay(0.1, 2),
        );
    }
    chip.enable_telemetry(TelemetryConfig::unbounded());
    if opts.sparse {
        drive_random_cores(&mut chip, opts.ticks, RATE, DRIVE_SEED, ISLAND);
    } else {
        drive_random(&mut chip, opts.ticks, RATE, DRIVE_SEED);
    }

    let log = chip.telemetry().expect("telemetry was enabled");
    let summary = log.summary();
    let config = chip.config();

    println!(
        "chip_report: {}x{} cores, {} ticks, {} thread(s), {} workload{}",
        config.width,
        config.height,
        opts.ticks,
        opts.threads,
        if opts.sparse { "sparse" } else { "dense" },
        if opts.faults { ", faulted" } else { "" },
    );
    println!("{}", summary.render_table(&EnergyModel::default()));
    if let Some(map) = RunSummary::heatmap(&summary.core_spikes, config.width, config.height) {
        println!("per-core spike heatmap (log scale, '.' = silent):");
        println!("{}", render_heatmap(&map));
    }

    for (path, kind) in [(&opts.jsonl, "jsonl"), (&opts.csv, "csv")] {
        let Some(path) = path else { continue };
        let file = match File::create(path) {
            Ok(f) => BufWriter::new(f),
            Err(e) => {
                eprintln!("chip_report: create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let result = match kind {
            "jsonl" => {
                let mut exporter = JsonlExporter::new(file);
                log.replay(&mut exporter);
                exporter.finish().map(|_| ())
            }
            _ => {
                let mut exporter = CsvExporter::new(file);
                log.replay(&mut exporter);
                exporter.finish().map(|_| ())
            }
        };
        match result {
            Ok(()) => println!("wrote {} records to {path}", log.len()),
            Err(e) => {
                eprintln!("chip_report: export {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
