//! The benchmark barometer: sweeps the generated TrueNorth workload
//! corpus across the {eval strategy × scheduler × threads} matrix, proves
//! bit-identity across every variant (differential conformance), and
//! emits versioned JSONL records plus a ranked markdown summary. Replaces
//! the retired hand-rolled `bench_chip_tick` path.
//!
//! Usage:
//!
//! * `barometer measure [--out FILE] [--smoke]` — sweep the corpus (and
//!   the checkpoint/recovery ops workloads), verify conformance, write
//!   records (default `BENCH_barometer.jsonl`) and print the ranked
//!   summary to stderr.
//! * `barometer check <baseline.jsonl> [--smoke]` — re-measure and compare
//!   per (workload, variant): exits non-zero on census divergence, lost
//!   coverage, or timing regression beyond each record's `check_factor`
//!   (timing is advisory when the baseline came from a different host
//!   shape — see the `cpus_mismatch` verdict field). The CI bench gate.
//! * `barometer summary <records.jsonl>` — render the ranked markdown
//!   summary for an existing record file (the EXPERIMENTS.md table).
//! * `barometer pin` — run the conformance matrix over every corpus entry
//!   and print each entry's computed checksum: the BYOB flow for pinning
//!   a new `WorkloadDef` (paste the value into `corpus()`).

use std::process::ExitCode;

use brainsim_bench::corpus::{self, WorkloadDef};
use brainsim_bench::record::{from_jsonl, to_jsonl, Host, Record};
use brainsim_bench::{summary, sweep};

fn selected(smoke: bool) -> Vec<WorkloadDef> {
    corpus::corpus()
        .into_iter()
        .filter(|d| !smoke || d.smoke)
        .collect()
}

/// Sweeps the selected corpus plus the ops workloads, verifying
/// conformance entry by entry. Returns `None` (after reporting) if any
/// entry fails conformance.
fn measure_all(smoke: bool, host: Host) -> Option<Vec<Record>> {
    let mut records = Vec::new();
    let mut failed = false;
    for def in selected(smoke) {
        eprintln!(
            "[barometer] {} ({} cores): conformance × {} variants",
            def.name,
            def.cores(),
            sweep::conformance_matrix().len(),
        );
        match sweep::sweep_workload(&def, host) {
            Ok(rows) => {
                for r in &rows {
                    eprintln!("  {:<28} {:>14.0} {}", r.variant, r.value, r.unit);
                }
                records.extend(rows);
            }
            Err(e) => {
                eprintln!("  CONFORMANCE FAILURE: {e}");
                failed = true;
                continue;
            }
        }
        if def.batch {
            eprintln!(
                "[barometer] {}: batched backend, lanes {:?} (lane-vs-solo differential)",
                def.name,
                sweep::BATCH_LANES,
            );
            match sweep::batch_records(&def, host) {
                Ok(rows) => {
                    for r in &rows {
                        eprintln!(
                            "  {:<28} {:>14.0} {} (per chip)",
                            r.variant, r.value, r.unit
                        );
                    }
                    records.extend(rows);
                }
                Err(e) => {
                    eprintln!("  BATCH CONFORMANCE FAILURE: {e}");
                    failed = true;
                }
            }
        }
    }
    let checkpoint_def = corpus::find("nemo_8x8_lo").expect("corpus has nemo_8x8_lo");
    for r in sweep::checkpoint_records(&checkpoint_def, host)
        .into_iter()
        .chain(sweep::recovery_records(host))
    {
        eprintln!("  {:<28} {:>14.0} {}", r.variant, r.value, r.unit);
        records.push(r);
    }
    (!failed).then_some(records)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let host = Host::detect();
    match args.first().map(String::as_str) {
        Some("measure") | None => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "BENCH_barometer.jsonl".to_string());
            // Refuse to clobber a record file this build cannot even
            // parse: a head line of a different schema version means the
            // existing records came from an incompatible toolchain, and
            // replacing them would silently discard that baseline.
            if let Ok(existing) = std::fs::read_to_string(&out) {
                let head = brainsim_bench::record::head_schema(&existing);
                if head.is_some_and(|v| v != brainsim_bench::record::SCHEMA_VERSION) {
                    eprintln!(
                        "[barometer] refusing to overwrite {out}: its records are schema {}, \
                         this barometer writes schema {} — move the file aside or migrate it",
                        head.unwrap_or(0),
                        brainsim_bench::record::SCHEMA_VERSION,
                    );
                    return ExitCode::FAILURE;
                }
            }
            let Some(records) = measure_all(smoke, host) else {
                return ExitCode::FAILURE;
            };
            if let Err(e) = std::fs::write(&out, to_jsonl(&records)) {
                eprintln!("[barometer] cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[barometer] wrote {} records to {out}", records.len());
            eprint!("{}", summary::render(&records));
            ExitCode::SUCCESS
        }
        Some("check") => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("usage: barometer check <baseline.jsonl> [--smoke]");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("[barometer] cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut baseline = from_jsonl(&text);
            if smoke {
                let names: Vec<&str> = selected(true).iter().map(|d| d.name).collect();
                baseline.retain(|r| {
                    names.contains(&r.workload.as_str())
                        || r.workload == "chip_checkpoint"
                        || r.workload == "chip_recovery"
                });
            }
            if baseline.is_empty() {
                eprintln!(
                    "[barometer] no schema-{} records in {path}",
                    brainsim_bench::record::SCHEMA_VERSION
                );
                return ExitCode::FAILURE;
            }
            let Some(fresh) = measure_all(smoke, host) else {
                return ExitCode::FAILURE;
            };
            let verdicts = sweep::check(&baseline, &fresh, host);
            let mut failed = false;
            for v in &verdicts {
                println!("{}", v.to_line());
                failed |= v.failing();
            }
            if failed {
                eprintln!("[barometer] GATE FAILED");
                ExitCode::FAILURE
            } else {
                eprintln!("[barometer] gate passed: {} verdicts", verdicts.len());
                ExitCode::SUCCESS
            }
        }
        Some("summary") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: barometer summary <records.jsonl>");
                return ExitCode::FAILURE;
            };
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    print!("{}", summary::render(&from_jsonl(&text)));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("[barometer] cannot read {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("pin") => {
            // BYOB: report every entry's computed checksum so a new def's
            // `checksum: Some(..)` can be pasted in. Conformance (variant
            // bit-identity, non-silence) is still enforced — only the pin
            // comparison itself is reported instead of failed. An optional
            // name argument restricts the run to one entry.
            let only = args.get(1).filter(|a| !a.starts_with("--"));
            let mut failed = false;
            for def in selected(smoke)
                .into_iter()
                .filter(|d| only.is_none_or(|n| n == d.name))
            {
                match sweep::verify_workload(&def) {
                    Ok(v) => {
                        println!(
                            "{:<24} checksum: Some({:#018x})  // pinned",
                            def.name, v.checksum
                        );
                    }
                    Err(sweep::ConformanceError::Pin { computed, .. }) => {
                        println!(
                            "{:<24} checksum: Some({computed:#018x})  // UPDATE",
                            def.name
                        );
                    }
                    Err(e) => {
                        println!("{:<24} FAILED: {e}", def.name);
                        failed = true;
                    }
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(other) => {
            eprintln!("unknown subcommand {other}; expected measure|check|summary|pin");
            ExitCode::FAILURE
        }
    }
}
