//! The benchmark barometer: sweeps the generated TrueNorth workload
//! corpus across the {eval strategy × scheduler × threads} matrix, proves
//! bit-identity across every variant (differential conformance), and
//! emits versioned JSONL records plus a ranked markdown summary. Replaces
//! the retired hand-rolled `bench_chip_tick` path.
//!
//! Usage:
//!
//! * `barometer measure [--out FILE] [--smoke] [--only A,B] [--reps N]
//!   [--ticks N]` — sweep the corpus (and the checkpoint/recovery ops
//!   workloads), verify conformance, write records (default
//!   `BENCH_barometer.jsonl`) and print the ranked summary to stderr.
//!   `--reps` sets the best-of-N pass count per timed variant; `--ticks`
//!   overrides every entry's measured window for quick local iteration
//!   (the pin comparison is skipped, so such records must not be
//!   committed as the baseline).
//! * `barometer check <baseline.jsonl> [--smoke] [--only A,B]
//!   [--mem-only]` — re-measure and compare per (workload, variant):
//!   exits non-zero on census divergence, lost coverage, peak-RSS
//!   regression, or timing regression beyond each record's `check_factor`
//!   (timing is advisory when the baseline came from a different host
//!   shape — see the `cpus_mismatch` verdict field; memory never is). The
//!   CI bench gate; `--only` restricts it to named workloads (the
//!   memory-conformance CI leg runs just the two 64×64 full-silicon
//!   entries). `--mem-only` makes *all* timing verdicts advisory while
//!   still failing on census or memory divergence — for legs whose build
//!   deliberately changes the kernel's speed (force-scalar) but must not
//!   change its residency.
//! * `barometer summary <records.jsonl>` — render the ranked markdown
//!   summary for an existing record file (the EXPERIMENTS.md table).
//! * `barometer pin` — run the conformance matrix over every corpus entry
//!   and print each entry's computed checksum: the BYOB flow for pinning
//!   a new `WorkloadDef` (paste the value into `corpus()`).

use std::process::ExitCode;

use brainsim_bench::corpus::{self, WorkloadDef};
use brainsim_bench::record::{from_jsonl, to_jsonl, Host, Record};
use brainsim_bench::sweep::SweepOptions;
use brainsim_bench::{summary, sweep};

/// Workload selection shared by every subcommand: the `--smoke` subset
/// intersected with an optional `--only` comma-separated name list.
fn selected(smoke: bool, only: Option<&str>) -> Vec<WorkloadDef> {
    let names: Option<Vec<&str>> = only.map(|o| o.split(',').map(str::trim).collect());
    corpus::corpus()
        .into_iter()
        .filter(|d| !smoke || d.smoke)
        .filter(|d| names.as_ref().is_none_or(|n| n.contains(&d.name)))
        .collect()
}

/// Parses the value of a `--flag VALUE` pair.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Sweeps the selected corpus plus the ops workloads, verifying
/// conformance entry by entry. Returns `None` (after reporting) if any
/// entry fails conformance. A `--only` selection skips the ops workloads
/// — they have no corpus names to select by.
fn measure_all(
    smoke: bool,
    only: Option<&str>,
    opts: SweepOptions,
    host: Host,
) -> Option<Vec<Record>> {
    let mut records = Vec::new();
    let mut failed = false;
    for def in selected(smoke, only) {
        eprintln!(
            "[barometer] {} ({} cores): conformance × {} variants",
            def.name,
            def.cores(),
            sweep::conformance_matrix().len(),
        );
        match sweep::sweep_workload_opts(&def, host, opts) {
            Ok(rows) => {
                for r in &rows {
                    eprintln!(
                        "  {:<28} {:>14.0} {}{}",
                        r.variant,
                        r.value,
                        r.unit,
                        r.peak_rss_bytes
                            .map(|b| format!("  (peak rss {:.1} MiB)", b as f64 / (1 << 20) as f64))
                            .unwrap_or_default(),
                    );
                }
                records.extend(rows);
            }
            Err(e) => {
                eprintln!("  CONFORMANCE FAILURE: {e}");
                failed = true;
                continue;
            }
        }
        if def.batch {
            eprintln!(
                "[barometer] {}: batched backend, lanes {:?} (lane-vs-solo differential)",
                def.name,
                sweep::BATCH_LANES,
            );
            match sweep::batch_records_opts(&def, host, opts) {
                Ok(rows) => {
                    for r in &rows {
                        eprintln!(
                            "  {:<28} {:>14.0} {} (per chip)",
                            r.variant, r.value, r.unit
                        );
                    }
                    records.extend(rows);
                }
                Err(e) => {
                    eprintln!("  BATCH CONFORMANCE FAILURE: {e}");
                    failed = true;
                }
            }
        }
    }
    if only.is_none() {
        let checkpoint_def = corpus::find("nemo_8x8_lo").expect("corpus has nemo_8x8_lo");
        for r in sweep::checkpoint_records(&checkpoint_def, host)
            .into_iter()
            .chain(sweep::recovery_records(host))
        {
            eprintln!("  {:<28} {:>14.0} {}", r.variant, r.value, r.unit);
            records.push(r);
        }
    }
    (!failed).then_some(records)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let only = flag_value(&args, "--only");
    let mut opts = SweepOptions::default();
    if let Some(reps) = flag_value(&args, "--reps") {
        match reps.parse::<u32>() {
            Ok(n) if n > 0 => opts.reps = n,
            _ => {
                eprintln!("[barometer] --reps expects a positive integer, got {reps:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(ticks) = flag_value(&args, "--ticks") {
        match ticks.parse::<u64>() {
            Ok(n) if n > 0 => opts.ticks = Some(n),
            _ => {
                eprintln!("[barometer] --ticks expects a positive integer, got {ticks:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if only.is_some() && selected(smoke, only).is_empty() {
        eprintln!("[barometer] --only matched no corpus entries");
        return ExitCode::FAILURE;
    }
    let host = Host::detect();
    match args.first().map(String::as_str) {
        Some("measure") | None => {
            let out = flag_value(&args, "--out")
                .unwrap_or("BENCH_barometer.jsonl")
                .to_string();
            if opts.ticks.is_some() {
                eprintln!(
                    "[barometer] --ticks override active: checksums are unpinned and the \
                     records are not comparable to the committed baseline"
                );
            }
            // Refuse to clobber a record file this build cannot even
            // parse: a head line of an unreadable schema version means the
            // existing records came from an incompatible toolchain, and
            // replacing them would silently discard that baseline.
            // Readable older schemas (schema 1) are overwritten — that is
            // the migration path to the current schema.
            if let Ok(existing) = std::fs::read_to_string(&out) {
                let head = brainsim_bench::record::head_schema(&existing);
                if head.is_some_and(|v| !brainsim_bench::record::schema_readable(v)) {
                    eprintln!(
                        "[barometer] refusing to overwrite {out}: its records are schema {}, \
                         this barometer writes schema {} — move the file aside or migrate it",
                        head.unwrap_or(0),
                        brainsim_bench::record::SCHEMA_VERSION,
                    );
                    return ExitCode::FAILURE;
                }
            }
            let Some(records) = measure_all(smoke, only, opts, host) else {
                return ExitCode::FAILURE;
            };
            if let Err(e) = std::fs::write(&out, to_jsonl(&records)) {
                eprintln!("[barometer] cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[barometer] wrote {} records to {out}", records.len());
            eprint!("{}", summary::render(&records));
            ExitCode::SUCCESS
        }
        Some("check") => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("usage: barometer check <baseline.jsonl> [--smoke]");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("[barometer] cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut baseline = from_jsonl(&text);
            if smoke || only.is_some() {
                let names: Vec<&str> = selected(smoke, only).iter().map(|d| d.name).collect();
                baseline.retain(|r| {
                    names.contains(&r.workload.as_str())
                        || (only.is_none()
                            && (r.workload == "chip_checkpoint" || r.workload == "chip_recovery"))
                });
            }
            if baseline.is_empty() {
                eprintln!("[barometer] no readable records in {path} after selection");
                return ExitCode::FAILURE;
            }
            let Some(fresh) = measure_all(smoke, only, opts, host) else {
                return ExitCode::FAILURE;
            };
            let mem_only = args.iter().any(|a| a == "--mem-only");
            let verdicts = sweep::check(&baseline, &fresh, host);
            let mut failed = false;
            for v in &verdicts {
                println!("{}", v.to_line());
                // Under --mem-only a timing regression is advisory by
                // design (the leg's build intentionally trades speed);
                // census and memory verdicts still gate.
                failed |= v.failing()
                    && !(mem_only && matches!(v.status, sweep::VerdictStatus::Regressed));
            }
            if failed {
                eprintln!("[barometer] GATE FAILED");
                ExitCode::FAILURE
            } else {
                eprintln!("[barometer] gate passed: {} verdicts", verdicts.len());
                ExitCode::SUCCESS
            }
        }
        Some("summary") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: barometer summary <records.jsonl>");
                return ExitCode::FAILURE;
            };
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    print!("{}", summary::render(&from_jsonl(&text)));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("[barometer] cannot read {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("pin") => {
            // BYOB: report every entry's computed checksum so a new def's
            // `checksum: Some(..)` can be pasted in. Conformance (variant
            // bit-identity, non-silence) is still enforced — only the pin
            // comparison itself is reported instead of failed. An optional
            // name argument restricts the run to one entry.
            let pin_only = args.get(1).filter(|a| !a.starts_with("--"));
            let mut failed = false;
            for def in selected(smoke, None)
                .into_iter()
                .filter(|d| pin_only.is_none_or(|n| n == d.name))
            {
                match sweep::verify_workload(&def) {
                    Ok(v) => {
                        println!(
                            "{:<24} checksum: Some({:#018x})  // pinned",
                            def.name, v.checksum
                        );
                    }
                    Err(sweep::ConformanceError::Pin { computed, .. }) => {
                        println!(
                            "{:<24} checksum: Some({computed:#018x})  // UPDATE",
                            def.name
                        );
                    }
                    Err(e) => {
                        println!("{:<24} FAILED: {e}", def.name);
                        failed = true;
                    }
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(other) => {
            eprintln!("unknown subcommand {other}; expected measure|check|summary|pin");
            ExitCode::FAILURE
        }
    }
}
