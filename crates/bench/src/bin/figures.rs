//! Regenerates every reconstructed table and figure of the evaluation.
//!
//! Usage: `cargo run --release -p brainsim-bench --bin figures [id...]`
//! where `id` is one of `t1 f1 f2 f3 f4 f5 t2 f6 t3 f7` or `all`
//! (default). See DESIGN.md for the experiment index and EXPERIMENTS.md
//! for recorded paper-vs-measured results.

use std::time::Instant;

use brainsim_apps::classifier::{
    float_accuracy, quantize_row, suggest_threshold, train_perceptron, ChipClassifier,
    LifClassifier,
};
use brainsim_apps::coincidence::ItdEstimator;
use brainsim_apps::deep::{
    self, suggest_readout_threshold, train_readout, DeepClassifier, FeatureBank,
};
use brainsim_apps::digits;
use brainsim_apps::edge::{bar_frame, EdgeFilterBank, Orientation};
use brainsim_bench::{
    drive_float_baseline, drive_random, hz_to_numerator, random_chip, random_float_baseline,
    RandomChipSpec,
};
use brainsim_chip::{ChipBuilder, ChipConfig, TickSemantics};
use brainsim_core::{
    AxonTarget, AxonType, CoreBuilder, CoreOffset, Destination, EvalStrategy, NeurosynapticCore,
};
use brainsim_corelet::{connectors, Corelet, NodeRef};
use brainsim_energy::{EnergyModel, EventCensus};
use brainsim_neuron::{behavior, Lfsr, NeuronConfig, Weight};
use brainsim_noc::{MeshNoc, NocConfig, Packet};
use brainsim_snn::golden::GoldenCore;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "t1", "f1", "f2", "f3", "f4", "f5", "t2", "f6", "t3", "f7", "f8",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match id {
            "t1" => t1_architecture_parameters(),
            "f1" => f1_neuron_behaviors(),
            "f2" => f2_power_vs_rate(),
            "f3" => f3_throughput_scaling(),
            "f4" => f4_noc_saturation(),
            "f5" => f5_determinism(),
            "t2" => t2_application_accuracy(),
            "f6" => f6_energy_accuracy_tradeoff(),
            "t3" => t3_placement_quality(),
            "f7" => f7_mixed_workload(),
            "f8" => f8_multichip_tiling(),
            other => eprintln!("unknown experiment id: {other}"),
        }
        println!();
    }
}

fn header(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// T1 — architecture parameter summary.
fn t1_architecture_parameters() {
    header("T1", "architecture parameters");
    let full = ChipConfig {
        width: 64,
        height: 64,
        core_axons: 256,
        core_neurons: 256,
        ..ChipConfig::default()
    };
    println!("{:<38} {:>16}", "parameter", "value");
    println!(
        "{:<38} {:>16}",
        "cores (full-scale grid)",
        format!("{}x{}", full.width, full.height)
    );
    println!("{:<38} {:>16}", "neurons per core", full.core_neurons);
    println!("{:<38} {:>16}", "axons per core", full.core_axons);
    println!("{:<38} {:>16}", "total neurons", full.neurons());
    println!(
        "{:<38} {:>16}",
        "total programmable synapses",
        full.synapses()
    );
    println!("{:<38} {:>16}", "tick period", "1 ms");
    println!("{:<38} {:>16}", "axon types per core", 4);
    println!("{:<38} {:>16}", "weight precision", "signed 9-bit");
    println!("{:<38} {:>16}", "membrane precision", "signed 20-bit");
    println!("{:<38} {:>16}", "axonal delay range", "1-15 ticks");
    println!("{:<38} {:>16}", "scheduler depth", 16);
    println!("{:<38} {:>16}", "routing", "DOR mesh");
    println!("{:<38} {:>16}", "packet word", "38 bits");
    println!("{:<38} {:>16}", "fan-in per neuron (max)", 256);
    println!("{:<38} {:>16}", "fan-out per spike (in-core)", 256);
}

/// F1 — the canonical neuron behaviour catalogue.
fn f1_neuron_behaviors() {
    header("F1", "neuron behaviour catalogue");
    let results = behavior::run_all();
    println!("{:<34} {:>6}  measured signature", "behaviour", "ok");
    for r in &results {
        println!(
            "{:<34} {:>6}  {}",
            r.name,
            if r.achieved { "yes" } else { "NO" },
            r.metric
        );
    }
    let achieved = results.iter().filter(|r| r.achieved).count();
    println!("achieved: {achieved}/{}", results.len());
}

/// F2 — power vs mean firing rate and synaptic density.
fn f2_power_vs_rate() {
    header(
        "F2",
        "power vs firing rate and synaptic density (64-core chip model)",
    );
    let model = EnergyModel::default();
    let ticks = 300u64;
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "rate (Hz)", "d=6.25%", "d=12.5%", "d=25%", "d=50%"
    );
    println!("{:>10} {:>51}", "", "total mW (active + static)");
    for rate_hz in [0u32, 10, 20, 50, 100, 200] {
        let mut row = format!("{rate_hz:>10}");
        for density in [16u32, 32, 64, 128] {
            let spec = RandomChipSpec {
                width: 8,
                height: 8,
                axons: 64,
                neurons: 64,
                density,
                ..RandomChipSpec::default()
            };
            let mut chip = random_chip(&spec);
            drive_random(&mut chip, ticks, hz_to_numerator(rate_hz), 17);
            let report = model.report(&chip.census());
            row.push_str(&format!(" {:>12.3}", report.total_mw));
        }
        println!("{row}");
    }
    println!("(active power is linear in event counts; the zero-rate row is the static floor)");
}

/// F3 — throughput scaling and the event-driven vs clock-driven baseline.
fn f3_throughput_scaling() {
    header(
        "F3",
        "simulation throughput: event-driven chip vs clock-driven float baseline",
    );
    let ticks = 200u64;
    println!(
        "{:>6} {:>9} {:>14} {:>14} {:>14} {:>10}",
        "cores", "rate(Hz)", "chip tick/s", "chip Msyn/s", "float tick/s", "syn/float"
    );
    for (w, h) in [(1usize, 1usize), (2, 2), (4, 4), (8, 8)] {
        for rate_hz in [10u32, 100] {
            // Full-size 256x256 cores, as on the silicon.
            let spec = RandomChipSpec {
                width: w,
                height: h,
                axons: 256,
                neurons: 256,
                density: 32,
                ..RandomChipSpec::default()
            };
            let mut chip = random_chip(&spec);
            let start = Instant::now();
            drive_random(&mut chip, ticks, hz_to_numerator(rate_hz), 5);
            let chip_secs = start.elapsed().as_secs_f64();
            let census = chip.census();
            let chip_tps = ticks as f64 / chip_secs;
            let msyn = census.synaptic_events as f64 / chip_secs / 1e6;

            let mut net = random_float_baseline(&spec);
            let inputs = w * h * spec.axons;
            let start = Instant::now();
            drive_float_baseline(&mut net, ticks, hz_to_numerator(rate_hz), 5, inputs);
            let float_secs = start.elapsed().as_secs_f64();
            let float_tps = ticks as f64 / float_secs;

            let float_msyn = net.stats().synaptic_events as f64 / float_secs / 1e6;
            println!(
                "{:>6} {:>9} {:>14.0} {:>14.2} {:>14.0} {:>10.2}",
                w * h,
                rate_hz,
                chip_tps,
                msyn,
                float_tps,
                msyn / float_msyn.max(1e-9)
            );
        }
    }
    println!("(syn/float = ratio of synaptic-event throughput, chip model vs plain");
    println!(" float simulator. The hardware-faithful model pays a bounded 10-40%");
    println!(" bookkeeping overhead in exchange for bit-exact hardware equivalence");
    println!(" and event-level energy accounting; both scale linearly in cores, and");
    println!(" chip cost is activity-proportional (tick/s grows ~5x when the rate");
    println!(" drops 10x) while the clock-driven baseline has a rate-independent");
    println!(" floor. The tick barrier also makes the sweep embarrassingly parallel");
    println!(" — bit-identical across thread counts (tested); this host is 1-core.)");
}

/// F4 — NoC latency vs injection rate.
fn f4_noc_saturation() {
    header(
        "F4",
        "mesh saturation: latency vs injection rate (8x8 DOR mesh)",
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>10}",
        "inj/core/cyc", "mean lat", "max lat", "delivered", "rejected"
    );
    for rate_percent in [2u32, 5, 10, 20, 30, 40, 50, 60, 80] {
        let mut noc = MeshNoc::new(NocConfig::default());
        let mut rng = Lfsr::new(11);
        let numerator = rate_percent * 256 / 100;
        let cycles = 3000u64;
        for _ in 0..cycles {
            for y in 0..8usize {
                for x in 0..8usize {
                    if rng.bernoulli_256(numerator) {
                        let tx = (rng.next_u32() % 8) as i16;
                        let ty = (rng.next_u32() % 8) as i16;
                        let p = Packet::new(tx - x as i16, ty - y as i16, 0, 0).unwrap();
                        let _ = noc.inject(x, y, p);
                    }
                }
            }
            noc.cycle();
        }
        noc.drain(10_000);
        let stats = noc.stats();
        println!(
            "{:>11}% {:>12.2} {:>12} {:>12} {:>10}",
            rate_percent,
            stats.mean_latency(),
            stats.max_latency,
            stats.delivered,
            stats.rejected
        );
    }
    println!("(latency grows gracefully to the saturation knee; rejected counts are");
    println!(" source-queue backpressure, not packet loss — conservation is exact)");

    // Routing-order ablation: column-hotspot traffic (all destinations on
    // one column). X-then-Y funnels every packet onto that column's
    // vertical links early; Y-then-X spreads traffic across rows first.
    use brainsim_noc::RoutingOrder;
    println!("\nablation: routing order under column-hotspot traffic (20% injection)");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "order", "mean lat", "max lat", "delivered"
    );
    for (name, order) in [
        ("X-then-Y", RoutingOrder::XThenY),
        ("Y-then-X", RoutingOrder::YThenX),
    ] {
        let mut noc = MeshNoc::new(NocConfig {
            routing: order,
            ..NocConfig::default()
        });
        let mut rng = Lfsr::new(31);
        for _ in 0..2000u64 {
            for y in 0..8usize {
                for x in 0..8usize {
                    if rng.bernoulli_256(51) {
                        let ty = (rng.next_u32() % 8) as i16;
                        let p = Packet::new(7 - x as i16, ty - y as i16, 0, 0).unwrap();
                        let _ = noc.inject(x, y, p);
                    }
                }
            }
            noc.cycle();
        }
        noc.drain(10_000);
        let stats = noc.stats();
        println!(
            "{:>12} {:>12.2} {:>12} {:>12}",
            name,
            stats.mean_latency(),
            stats.max_latency,
            stats.delivered
        );
    }
    println!("(Y-then-X defers the hotspot-column merge to the last hop and so");
    println!(" degrades less — the classic DOR asymmetry under skewed traffic)");
}

/// Builds a random core + golden twin for F5.
fn f5_pair(seed: u32, strategy: EvalStrategy) -> (NeurosynapticCore, GoldenCore) {
    let (axons, neurons) = (64, 64);
    let mut rng = Lfsr::new(seed);
    let mut builder = CoreBuilder::new(axons, neurons);
    let mut golden = GoldenCore::new(axons, neurons, seed ^ 0x5A5A);
    builder.seed(seed ^ 0x5A5A).strategy(strategy);
    for a in 0..axons {
        let ty = AxonType::from_index((rng.next_u32() % 4) as usize).unwrap();
        builder.axon_type(a, ty).unwrap();
        golden.set_axon_type(a, ty);
    }
    for n in 0..neurons {
        let config = NeuronConfig::builder()
            .weight(
                AxonType::A0,
                Weight::saturating((rng.next_u32() % 8) as i32),
            )
            .weight(AxonType::A1, Weight::saturating(3))
            .weight(AxonType::A2, Weight::saturating(-2))
            .weight(AxonType::A3, Weight::saturating(-4))
            .threshold(2 + rng.next_u32() % 16)
            .leak(((rng.next_u32() % 3) as i32) - 1)
            .negative_threshold(0)
            .build()
            .unwrap();
        builder
            .neuron(n, config.clone(), Destination::Disabled)
            .unwrap();
        golden.set_neuron(n, config);
        for a in 0..axons {
            let bit = rng.bernoulli_256(40);
            builder.synapse(a, n, bit).unwrap();
            golden.set_synapse(a, n, bit);
        }
    }
    (builder.build(), golden)
}

/// F5 — one-to-one determinism and the relaxed ablation.
fn f5_determinism() {
    header(
        "F5",
        "one-to-one determinism: optimised core vs golden model",
    );
    let seeds = 10u32;
    let ticks = 500u64;
    let mut identical = 0;
    for seed in 1..=seeds {
        for strategy in [EvalStrategy::Dense, EvalStrategy::Sparse] {
            let (mut core, mut golden) = f5_pair(seed, strategy);
            let mut stim = Lfsr::new(seed ^ 0xFFF);
            let mut all_equal = true;
            for t in 0..ticks {
                for a in 0..core.axons() {
                    if stim.bernoulli_256(32) {
                        core.deliver(a, t).unwrap();
                        golden.deliver(a, t);
                    }
                }
                if core.tick(t) != golden.tick() {
                    all_equal = false;
                    break;
                }
            }
            if all_equal {
                identical += 1;
            }
        }
    }
    println!(
        "{identical}/{} random-core runs bit-identical over {ticks} ticks (dense + sparse)",
        seeds * 2
    );

    // Relaxed-semantics ablation on a relay chain.
    println!("\nablation: relay-chain output tick under each semantics");
    println!(
        "{:>14} {:>18} {:>18}",
        "chain length", "deterministic", "relaxed"
    );
    for n in [2usize, 4, 8] {
        let mut out = Vec::new();
        for semantics in [TickSemantics::Deterministic, TickSemantics::Relaxed] {
            let mut b = ChipBuilder::new(ChipConfig {
                width: n,
                height: 1,
                core_axons: 2,
                core_neurons: 2,
                semantics,
                ..ChipConfig::default()
            });
            let relay = NeuronConfig::builder()
                .weight(AxonType::A0, Weight::saturating(1))
                .threshold(1)
                .build()
                .unwrap();
            for x in 0..n {
                let dest = if x + 1 < n {
                    Destination::Axon(AxonTarget {
                        offset: CoreOffset::new(1, 0),
                        axon: 0,
                        delay: 1,
                    })
                } else {
                    Destination::Output(0)
                };
                b.core_mut(x, 0).neuron(0, relay.clone(), dest).unwrap();
                b.core_mut(x, 0).synapse(0, 0, true).unwrap();
            }
            let mut chip = b.build().unwrap();
            chip.inject(0, 0, 0, 0).unwrap();
            let (outputs, _) = chip.run(n as u64 + 2);
            out.push(outputs.first().map(|&(t, _)| t as i64).unwrap_or(-1));
        }
        println!("{:>14} {:>18} {:>18}", n, out[0], out[1]);
    }
    println!("(relaxed delivery rides the sweep order: the chain collapses into one tick,");
    println!(" i.e. behaviour depends on evaluation order — the hazard the barrier forbids)");
}

/// T2 — application accuracy: quantised chip vs float baselines.
fn t2_application_accuracy() {
    header(
        "T2",
        "digit classification: float baselines vs quantised chip",
    );
    let train = digits::generate(20, 0.02, 21);
    let test = digits::generate(10, 0.05, 99);
    let weights = train_perceptron(&train, 15);
    let quantized: Vec<Vec<i32>> = weights.iter().map(|row| quantize_row(row, 32)).collect();
    let window = 16;
    let threshold = suggest_threshold(&quantized, &train, window);

    let float_acc = float_accuracy(&weights, &test);
    let qf: Vec<Vec<f64>> = quantized
        .iter()
        .map(|r| r.iter().map(|&w| w as f64).collect())
        .collect();
    let q_dot_acc = float_accuracy(&qf, &test);
    let mut lif = LifClassifier::build(&weights, threshold as f64, window);
    let lif_acc = lif.accuracy(&test);
    let mut chip = ChipClassifier::build(&quantized, threshold, window).unwrap();
    let chip_acc = chip.accuracy(&test);
    let report = EnergyModel::default().report(&chip.compiled().chip().census());
    let per_image_uj = report.active_energy_j * 1e6 / test.len() as f64;
    let stoch_acc = chip.accuracy_stochastic(&test, 0xFACE);

    println!("{:<44} {:>10}", "model", "accuracy");
    println!(
        "{:<44} {:>10.3}",
        "float dot product (upper bound)", float_acc
    );
    println!(
        "{:<44} {:>10.3}",
        "float LIF simulator (brainsim-snn)", lif_acc
    );
    println!(
        "{:<44} {:>10.3}",
        "4-level quantised dot product", q_dot_acc
    );
    println!(
        "{:<44} {:>10.3}",
        "quantised, rate-coded, on chip", chip_acc
    );
    println!(
        "{:<44} {:>10.3}",
        "quantised, stochastic rate code, on chip", stoch_acc
    );

    // Two-layer variant: random patch features + trained readout.
    let bank = FeatureBank::random(80, 8, 8, 13);
    let readout = train_readout(&bank, &train, 25);
    let deep_float = deep::float_feature_accuracy(&bank, &readout, &test);
    let deep_threshold = suggest_readout_threshold(&bank, &readout, &train);
    let mut deep_chip = DeepClassifier::build(&bank, &readout, deep_threshold, 24).unwrap();
    let deep_acc = deep_chip.accuracy(&test);
    println!(
        "{:<44} {:>10.3}",
        "two-layer float (feature rates)", deep_float
    );
    println!("{:<44} {:>10.3}", "two-layer quantised, on chip", deep_acc);
    println!();
    println!(
        "single-layer deployment: {} cores, {} axons, {:.3} uJ/classification",
        chip.compiled().report().cores,
        chip.compiled().report().axons_used,
        per_image_uj
    );
    println!(
        "two-layer deployment:    {} cores, {} axons, {} relay neurons",
        deep_chip.compiled().report().cores,
        deep_chip.compiled().report().axons_used,
        deep_chip.compiled().report().relays
    );
}

/// F6 — energy per classification vs accuracy (encoding-window sweep).
fn f6_energy_accuracy_tradeoff() {
    header("F6", "energy vs accuracy: encoding-window sweep");
    let train = digits::generate(20, 0.02, 21);
    let test = digits::generate(6, 0.05, 99);
    let weights = train_perceptron(&train, 15);
    let quantized: Vec<Vec<i32>> = weights.iter().map(|row| quantize_row(row, 32)).collect();
    let model = EnergyModel::default();
    println!(
        "{:>8} {:>10} {:>16} {:>14}",
        "window", "accuracy", "uJ/classif.", "ticks/classif."
    );
    for window in [4usize, 8, 16, 32, 64] {
        let threshold = suggest_threshold(&quantized, &train, window);
        let mut chip = ChipClassifier::build(&quantized, threshold, window).unwrap();
        let acc = chip.accuracy(&test);
        let report = model.report(&chip.compiled().chip().census());
        let per_image = report.active_energy_j * 1e6 / test.len() as f64;
        println!(
            "{:>8} {:>10.3} {:>16.3} {:>14}",
            window,
            acc,
            per_image,
            window + 4
        );
    }
    println!("(longer windows buy accuracy with linearly more spikes and energy)");
}

/// T3 — placement quality: greedy vs annealed.
fn t3_placement_quality() {
    header("T3", "compiler placement: greedy vs simulated annealing");
    println!(
        "{:>9} {:>7} {:>13} {:>13} {:>13} {:>11} {:>10} {:>11}",
        "neurons",
        "cores",
        "random cost",
        "greedy cost",
        "annealed",
        "mean hops",
        "max link",
        "vs random"
    );
    for size in [30usize, 60, 120, 240] {
        // Locality-structured workload: a ring of blocks where each block
        // talks mostly to its neighbours — the class of network where
        // placement actually matters (uniform-random traffic is placement-
        // insensitive by symmetry).
        let mut corelet = Corelet::new("t3", 4);
        let template = NeuronConfig::builder().threshold(4).build().unwrap();
        let pop = corelet.add_population(template, size);
        let block = 10usize;
        let blocks = size / block;
        for b in 0..blocks {
            let this: Vec<NodeRef> = (0..block)
                .map(|i| NodeRef::Neuron(pop[b * block + i]))
                .collect();
            let next: Vec<_> = (0..block)
                .map(|i| pop[((b + 1) % blocks) * block + i])
                .collect();
            // Dense local recurrence + a thinner link to the next block.
            let local: Vec<_> = (0..block).map(|i| pop[b * block + i]).collect();
            connectors::random(&mut corelet, &this, &local, 2, 3, 90, b as u32 + 1).unwrap();
            connectors::random(&mut corelet, &this, &next, 2, 3, 30, b as u32 + 77).unwrap();
        }
        for i in 0..4 {
            corelet
                .connect(NodeRef::Input(i), pop[i * size / 4], 4, 1)
                .unwrap();
        }
        let options = brainsim_compiler::CompileOptions {
            core_axons: 64,
            core_neurons: 24,
            relay_reserve: 8,
            anneal_iters: 20_000,
            ..brainsim_compiler::CompileOptions::default()
        };
        let compiled = brainsim_compiler::compile(corelet.network(), &options).unwrap();
        let r = compiled.report();
        let vs_random = if r.random_cost > 0 {
            100.0 * (r.random_cost.saturating_sub(r.annealed_cost)) as f64 / r.random_cost as f64
        } else {
            0.0
        };
        let link = brainsim_chip::trace::link_load(compiled.chip());
        println!(
            "{:>9} {:>7} {:>13} {:>13} {:>13} {:>11.2} {:>10} {:>10.1}%",
            size,
            r.cores,
            r.random_cost,
            r.greedy_cost,
            r.annealed_cost,
            r.mean_hops_annealed(),
            link.max_load(),
            vs_random
        );
    }
}

/// F7 — mixed application workload: combined census and efficiency.
fn f7_mixed_workload() {
    header("F7", "mixed workload: combined application suite census");
    let model = EnergyModel::default();
    let mut combined = EventCensus::default();

    // Classifier over a small test set.
    let train = digits::generate(10, 0.02, 21);
    let test = digits::generate(3, 0.05, 99);
    let weights = train_perceptron(&train, 8);
    let quantized: Vec<Vec<i32>> = weights.iter().map(|row| quantize_row(row, 32)).collect();
    let threshold = suggest_threshold(&quantized, &train, 16);
    let mut chip = ChipClassifier::build(&quantized, threshold, 16).unwrap();
    let acc = chip.accuracy(&test);
    let classifier_census = chip.compiled().chip().census();
    combined.merge(&classifier_census);
    print_census_row(
        "digit classifier",
        &classifier_census,
        &model,
        &format!("accuracy {acc:.2}"),
    );

    // Edge filter bank over oriented bars.
    let mut bank = EdgeFilterBank::build(12, 6, 8).unwrap();
    for orientation in Orientation::ALL {
        let frame = bar_frame(12, orientation);
        bank.respond(&frame);
    }
    let edge_census = bank.compiled().chip().census();
    combined.merge(&edge_census);
    print_census_row("edge filter bank", &edge_census, &model, "4 oriented bars");

    // ITD estimation sweep.
    let mut estimator = ItdEstimator::build(4).unwrap();
    let mut correct = 0;
    for itd in -4..=4 {
        if estimator.estimate(itd) == Some(itd) {
            correct += 1;
        }
    }
    let itd_census = estimator.compiled().chip().census();
    combined.merge(&itd_census);
    print_census_row(
        "ITD estimator",
        &itd_census,
        &model,
        &format!("{correct}/9 exact"),
    );

    println!();
    let report = model.report(&combined);
    println!(
        "combined: {} synaptic events, {} spikes, {:.3} mW equivalent, {:.2} GSOPS/W",
        combined.synaptic_events, combined.spikes, report.total_mw, report.gsops_per_watt
    );

    println!("\nclassifier core-activity map (spikes per core, log buckets):");
    print!(
        "{}",
        brainsim_chip::trace::render_activity(&brainsim_chip::trace::activity_map(
            chip.compiled().chip()
        ))
    );
}

/// F8 — multi-chip tiling: boundary-link energy and latency overhead.
fn f8_multichip_tiling() {
    header(
        "F8",
        "multi-chip tiling: link-crossing overhead on a fixed workload",
    );
    use brainsim_chip::TileConfig;
    let model = EnergyModel::default();
    println!(
        "{:>16} {:>10} {:>14} {:>12} {:>12}",
        "tiling", "chips", "link events", "total mW", "overhead"
    );
    for long_range in [false, true] {
        println!(
            "-- {} traffic --",
            if long_range {
                "long-range (uniform destinations)"
            } else {
                "local (nearest-neighbour)"
            }
        );
        let mut baseline_mw = 0.0;
        for (name, tile) in [
            ("monolithic", None),
            (
                "2x2 chips",
                Some(TileConfig {
                    width: 4,
                    height: 4,
                    link_latency: 2,
                }),
            ),
            (
                "4x4 chips",
                Some(TileConfig {
                    width: 2,
                    height: 2,
                    link_latency: 2,
                }),
            ),
        ] {
            // Same workload graph every time; only the tiling differs.
            let spec = RandomChipSpec {
                width: 8,
                height: 8,
                axons: 64,
                neurons: 64,
                density: 32,
                long_range,
                ..RandomChipSpec::default()
            };
            let mut chip = random_chip(&RandomChipSpec { tile, ..spec });
            drive_random(&mut chip, 300, hz_to_numerator(50), 23);
            let report = model.report(&chip.census());
            let chips = tile.map(|t| (8 / t.width) * (8 / t.height)).unwrap_or(1);
            if baseline_mw == 0.0 {
                baseline_mw = report.total_mw;
            }
            let overhead = 100.0 * (report.total_mw - baseline_mw) / baseline_mw;
            println!(
                "{:>16} {:>10} {:>14} {:>12.3} {:>11.1}%",
                name,
                chips,
                chip.census().link_crossings,
                report.total_mw,
                overhead
            );
        }
    }
    println!("(locality keeps tiling overhead negligible; long-range traffic pays");
    println!(" the serialised boundary links at ~35x per-hop energy — the reason");
    println!(" the compiler's placement stage optimises for locality. Spike timing");
    println!(" stays exact: link latency is part of the delivery schedule and is");
    println!(" validated against the 15-tick horizon at build time.)");
}

fn print_census_row(name: &str, census: &EventCensus, model: &EnergyModel, note: &str) {
    let report = model.report(census);
    println!(
        "{:<20} cores {:>3}  ticks {:>6}  syn.events {:>9}  {:>8.3} mW  ({note})",
        name, census.cores, census.ticks, census.synaptic_events, report.total_mw
    );
}
