//! Peak-RSS measurement for the barometer's memory-residency records.
//!
//! The sparse-residency layout's whole claim is that quiescent silicon
//! costs ~nothing: a 64×64 grid with a 5% island must not allocate the
//! ~268 M synapse bits of its dense twin. The barometer proves that claim
//! the same way it proves timing — by measuring and gating it — and the
//! instrument is the kernel's own high-water mark: `VmHWM` from
//! `/proc/self/status`, resettable per measurement window via
//! `/proc/self/clear_refs` (writing `5` resets the peak counters to the
//! current RSS). Everything here degrades to `None` off Linux or inside
//! restricted sandboxes; records simply carry no memory fields there.

use std::fs;

/// Resets the process peak-RSS counter (`VmHWM`) to the current RSS, so
/// the next [`peak_rss_bytes`] reading bounds only the work done since
/// this call. Best-effort: a failure (non-Linux, locked-down procfs)
/// leaves the counter monotonic, which only ever over-reports a peak.
pub fn reset_peak_rss() {
    let _ = fs::write("/proc/self/clear_refs", "5");
}

/// The process peak resident-set size in bytes (`VmHWM`), since process
/// start or the last [`reset_peak_rss`]. `None` where procfs is absent.
pub fn peak_rss_bytes() -> Option<u64> {
    status_field("VmHWM:")
}

/// The current resident-set size in bytes (`VmRSS`). `None` where procfs
/// is absent.
pub fn current_rss_bytes() -> Option<u64> {
    status_field("VmRSS:")
}

/// Parses one `kB`-denominated field out of `/proc/self/status`.
fn status_field(field: &str) -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line
        .strip_prefix(field)?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_a_large_allocation() {
        let Some(before) = peak_rss_bytes() else {
            return; // no procfs on this host: the helpers degrade to None
        };
        assert!(before > 0);
        reset_peak_rss();
        // Touch 32 MiB so the pages become resident, then confirm the
        // reset counter saw them.
        let block = vec![1u8; 32 << 20];
        let sum: u64 = block.iter().step_by(4096).map(|&b| u64::from(b)).sum();
        assert_eq!(sum, (32 << 20) / 4096);
        let peak = peak_rss_bytes().expect("procfs was readable above");
        let current = current_rss_bytes().expect("procfs was readable above");
        assert!(peak >= current.saturating_sub(1 << 20));
        assert!(
            peak >= 32 << 20,
            "peak {peak} missed the 32 MiB touch entirely"
        );
    }
}
