//! # brainsim-corelet
//!
//! The programming model: *corelets* are composable, hardware-agnostic
//! descriptions of spiking networks, compiled onto physical cores by
//! `brainsim-compiler`.
//!
//! A [`Corelet`] owns a [`LogicalNetwork`]: neurons carry a behavioural
//! template (a [`brainsim_neuron::NeuronConfig`] whose per-type weights are
//! placeholders — actual weights live on the [`LogicalSynapse`]s and are
//! mapped to axon types by the compiler), synapses carry `(weight, delay)`,
//! and the corelet exposes named *input ports* and *output ports*.
//!
//! Corelets compose hierarchically with [`Corelet::embed`]: the child's
//! input ports are spliced onto any nodes of the parent, and its output
//! neurons become available to the parent — the composition mechanism of
//! the original corelet language.
//!
//! ## Example
//!
//! ```
//! use brainsim_corelet::{connectors, Corelet, NodeRef};
//! use brainsim_neuron::NeuronConfig;
//!
//! # fn main() -> Result<(), brainsim_corelet::CoreletError> {
//! let mut c = Corelet::new("relay-pair", 1);
//! let template = NeuronConfig::builder().threshold(1).build().unwrap();
//! let a = c.add_neuron(template.clone());
//! let b = c.add_neuron(template);
//! c.connect(NodeRef::Input(0), a, 1, 1)?;
//! c.connect(NodeRef::Neuron(a), b, 1, 1)?;
//! c.mark_output(b)?;
//! assert_eq!(c.network().neurons().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod library;

use std::collections::BTreeSet;
use std::fmt;

use brainsim_neuron::{Lfsr, NeuronConfig, Weight};
use serde::{Deserialize, Serialize};

/// Identifier of a logical neuron within one network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NeuronId(pub usize);

/// A node that can source a synapse: an input port or a neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeRef {
    /// External input port.
    Input(usize),
    /// A neuron of the network.
    Neuron(NeuronId),
}

/// One logical synapse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalSynapse {
    /// Source node.
    pub pre: NodeRef,
    /// Target neuron.
    pub post: NeuronId,
    /// Signed integer weight (must fit the 9-bit silicon field).
    pub weight: i32,
    /// Axonal delay in ticks, `1..=15`.
    pub delay: u8,
}

/// Errors from corelet construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreletError {
    /// Referenced neuron does not exist.
    NoSuchNeuron(NeuronId),
    /// Referenced input port does not exist.
    NoSuchInput(usize),
    /// Delay outside `1..=15`.
    BadDelay(u8),
    /// Weight outside the signed 9-bit range.
    BadWeight(i32),
    /// Embedding supplied the wrong number of input mappings.
    InputArityMismatch {
        /// Ports the child expects.
        expected: usize,
        /// Mappings supplied.
        got: usize,
    },
}

impl fmt::Display for CoreletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreletError::NoSuchNeuron(id) => write!(f, "neuron {} does not exist", id.0),
            CoreletError::NoSuchInput(c) => write!(f, "input port {c} does not exist"),
            CoreletError::BadDelay(d) => write!(f, "delay {d} outside 1..=15"),
            CoreletError::BadWeight(w) => write!(f, "weight {w} outside signed 9-bit range"),
            CoreletError::InputArityMismatch { expected, got } => {
                write!(f, "embed expected {expected} input mappings, got {got}")
            }
        }
    }
}

impl std::error::Error for CoreletError {}

/// A flat logical spiking network (the compiler's input).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogicalNetwork {
    templates: Vec<NeuronConfig>,
    synapses: Vec<LogicalSynapse>,
    inputs: usize,
    outputs: Vec<NeuronId>,
}

impl LogicalNetwork {
    /// Neuron behaviour templates (weights fields are placeholders).
    pub fn neurons(&self) -> &[NeuronConfig] {
        &self.templates
    }

    /// All synapses.
    pub fn synapses(&self) -> &[LogicalSynapse] {
        &self.synapses
    }

    /// Number of external input ports.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output ports, in declaration order.
    pub fn outputs(&self) -> &[NeuronId] {
        &self.outputs
    }

    /// Distinct synapse weights incoming to one neuron.
    pub fn distinct_in_weights(&self, neuron: NeuronId) -> BTreeSet<i32> {
        self.synapses
            .iter()
            .filter(|s| s.post == neuron)
            .map(|s| s.weight)
            .collect()
    }

    /// Fan-in (number of incoming synapses) of one neuron.
    pub fn fan_in(&self, neuron: NeuronId) -> usize {
        self.synapses.iter().filter(|s| s.post == neuron).count()
    }

    /// Fan-out (number of outgoing synapses) of one node.
    pub fn fan_out(&self, node: NodeRef) -> usize {
        self.synapses.iter().filter(|s| s.pre == node).count()
    }

    /// Summary statistics used by reports and the compiler.
    pub fn stats(&self) -> NetworkStats {
        let max_fan_in = (0..self.templates.len())
            .map(|i| self.fan_in(NeuronId(i)))
            .max()
            .unwrap_or(0);
        let max_fan_out = (0..self.templates.len())
            .map(|i| self.fan_out(NodeRef::Neuron(NeuronId(i))))
            .max()
            .unwrap_or(0);
        let max_distinct_weights = (0..self.templates.len())
            .map(|i| self.distinct_in_weights(NeuronId(i)).len())
            .max()
            .unwrap_or(0);
        NetworkStats {
            neurons: self.templates.len(),
            synapses: self.synapses.len(),
            inputs: self.inputs,
            outputs: self.outputs.len(),
            max_fan_in,
            max_fan_out,
            max_distinct_weights,
        }
    }
}

/// Shape summary of a logical network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Neuron count.
    pub neurons: usize,
    /// Synapse count.
    pub synapses: usize,
    /// Input port count.
    pub inputs: usize,
    /// Output port count.
    pub outputs: usize,
    /// Largest fan-in.
    pub max_fan_in: usize,
    /// Largest neuron fan-out.
    pub max_fan_out: usize,
    /// Largest number of distinct incoming weights at one neuron.
    pub max_distinct_weights: usize,
}

/// A named, composable network under construction.
#[derive(Debug, Clone)]
pub struct Corelet {
    name: String,
    net: LogicalNetwork,
}

impl Corelet {
    /// Starts an empty corelet with `inputs` input ports.
    pub fn new(name: impl Into<String>, inputs: usize) -> Corelet {
        Corelet {
            name: name.into(),
            net: LogicalNetwork {
                inputs,
                ..LogicalNetwork::default()
            },
        }
    }

    /// The corelet's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The network built so far.
    pub fn network(&self) -> &LogicalNetwork {
        &self.net
    }

    /// Consumes the corelet, yielding its network.
    pub fn into_network(self) -> LogicalNetwork {
        self.net
    }

    /// Adds a neuron with the given behaviour template.
    pub fn add_neuron(&mut self, template: NeuronConfig) -> NeuronId {
        self.net.templates.push(template);
        NeuronId(self.net.templates.len() - 1)
    }

    /// Adds `n` neurons sharing a template, returning their ids.
    pub fn add_population(&mut self, template: NeuronConfig, n: usize) -> Vec<NeuronId> {
        (0..n).map(|_| self.add_neuron(template.clone())).collect()
    }

    /// Wires `pre → post` with a weight and delay.
    ///
    /// # Errors
    ///
    /// See [`CoreletError`].
    pub fn connect(
        &mut self,
        pre: NodeRef,
        post: NeuronId,
        weight: i32,
        delay: u8,
    ) -> Result<(), CoreletError> {
        self.check_node(pre)?;
        if post.0 >= self.net.templates.len() {
            return Err(CoreletError::NoSuchNeuron(post));
        }
        if delay == 0 || delay > 15 {
            return Err(CoreletError::BadDelay(delay));
        }
        if Weight::new(weight).is_err() {
            return Err(CoreletError::BadWeight(weight));
        }
        self.net.synapses.push(LogicalSynapse {
            pre,
            post,
            weight,
            delay,
        });
        Ok(())
    }

    /// Declares a neuron as an output port.
    ///
    /// # Errors
    ///
    /// [`CoreletError::NoSuchNeuron`] for a bad id.
    pub fn mark_output(&mut self, neuron: NeuronId) -> Result<(), CoreletError> {
        if neuron.0 >= self.net.templates.len() {
            return Err(CoreletError::NoSuchNeuron(neuron));
        }
        self.net.outputs.push(neuron);
        Ok(())
    }

    /// Embeds `child` into this corelet.
    ///
    /// `input_map[i]` is the node of *this* corelet that feeds the child's
    /// input port `i`. Returns the child's output neurons remapped into this
    /// corelet's id space.
    ///
    /// # Errors
    ///
    /// [`CoreletError::InputArityMismatch`] if the map length is wrong, or a
    /// node-reference error if a mapping is invalid.
    pub fn embed(
        &mut self,
        child: &Corelet,
        input_map: &[NodeRef],
    ) -> Result<Vec<NeuronId>, CoreletError> {
        if input_map.len() != child.net.inputs {
            return Err(CoreletError::InputArityMismatch {
                expected: child.net.inputs,
                got: input_map.len(),
            });
        }
        for &node in input_map {
            self.check_node(node)?;
        }
        let offset = self.net.templates.len();
        self.net
            .templates
            .extend(child.net.templates.iter().cloned());
        for s in &child.net.synapses {
            let pre = match s.pre {
                NodeRef::Input(port) => input_map[port],
                NodeRef::Neuron(NeuronId(i)) => NodeRef::Neuron(NeuronId(i + offset)),
            };
            self.net.synapses.push(LogicalSynapse {
                pre,
                post: NeuronId(s.post.0 + offset),
                weight: s.weight,
                delay: s.delay,
            });
        }
        Ok(child
            .net
            .outputs
            .iter()
            .map(|id| NeuronId(id.0 + offset))
            .collect())
    }

    fn check_node(&self, node: NodeRef) -> Result<(), CoreletError> {
        match node {
            NodeRef::Input(c) if c >= self.net.inputs => Err(CoreletError::NoSuchInput(c)),
            NodeRef::Neuron(id) if id.0 >= self.net.templates.len() => {
                Err(CoreletError::NoSuchNeuron(id))
            }
            _ => Ok(()),
        }
    }
}

/// Bulk wiring patterns.
pub mod connectors {
    use super::*;

    /// Connects every `pre` to every `post`.
    ///
    /// # Errors
    ///
    /// Propagates the first wiring error.
    pub fn all_to_all(
        corelet: &mut Corelet,
        pres: &[NodeRef],
        posts: &[NeuronId],
        weight: i32,
        delay: u8,
    ) -> Result<(), CoreletError> {
        for &pre in pres {
            for &post in posts {
                corelet.connect(pre, post, weight, delay)?;
            }
        }
        Ok(())
    }

    /// Connects `pres[i] → posts[i]` pairwise.
    ///
    /// # Errors
    ///
    /// Propagates the first wiring error.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn one_to_one(
        corelet: &mut Corelet,
        pres: &[NodeRef],
        posts: &[NeuronId],
        weight: i32,
        delay: u8,
    ) -> Result<(), CoreletError> {
        assert_eq!(pres.len(), posts.len(), "one_to_one requires equal lengths");
        for (&pre, &post) in pres.iter().zip(posts) {
            corelet.connect(pre, post, weight, delay)?;
        }
        Ok(())
    }

    /// Connects each `pre → post` pair independently with probability
    /// `p_num / 256`, using a deterministic LFSR stream.
    ///
    /// # Errors
    ///
    /// Propagates the first wiring error.
    pub fn random(
        corelet: &mut Corelet,
        pres: &[NodeRef],
        posts: &[NeuronId],
        weight: i32,
        delay: u8,
        p_num: u32,
        seed: u32,
    ) -> Result<usize, CoreletError> {
        let mut rng = Lfsr::new(seed);
        let mut made = 0;
        for &pre in pres {
            for &post in posts {
                if rng.bernoulli_256(p_num) {
                    corelet.connect(pre, post, weight, delay)?;
                    made += 1;
                }
            }
        }
        Ok(made)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> NeuronConfig {
        NeuronConfig::builder().threshold(2).build().unwrap()
    }

    #[test]
    fn build_and_inspect() {
        let mut c = Corelet::new("test", 2);
        let a = c.add_neuron(template());
        let b = c.add_neuron(template());
        c.connect(NodeRef::Input(0), a, 3, 1).unwrap();
        c.connect(NodeRef::Input(1), a, -2, 1).unwrap();
        c.connect(NodeRef::Neuron(a), b, 5, 4).unwrap();
        c.mark_output(b).unwrap();
        let net = c.network();
        let stats = net.stats();
        assert_eq!(stats.neurons, 2);
        assert_eq!(stats.synapses, 3);
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.max_fan_in, 2);
        assert_eq!(net.fan_out(NodeRef::Neuron(a)), 1);
        assert_eq!(net.distinct_in_weights(a), [3, -2].into_iter().collect());
    }

    #[test]
    fn validation_errors() {
        let mut c = Corelet::new("test", 1);
        let a = c.add_neuron(template());
        assert_eq!(
            c.connect(NodeRef::Input(1), a, 1, 1),
            Err(CoreletError::NoSuchInput(1))
        );
        assert_eq!(
            c.connect(NodeRef::Neuron(NeuronId(5)), a, 1, 1),
            Err(CoreletError::NoSuchNeuron(NeuronId(5)))
        );
        assert_eq!(
            c.connect(NodeRef::Input(0), NeuronId(9), 1, 1),
            Err(CoreletError::NoSuchNeuron(NeuronId(9)))
        );
        assert_eq!(
            c.connect(NodeRef::Input(0), a, 1, 0),
            Err(CoreletError::BadDelay(0))
        );
        assert_eq!(
            c.connect(NodeRef::Input(0), a, 1, 16),
            Err(CoreletError::BadDelay(16))
        );
        assert_eq!(
            c.connect(NodeRef::Input(0), a, 300, 1),
            Err(CoreletError::BadWeight(300))
        );
        assert_eq!(
            c.mark_output(NeuronId(9)),
            Err(CoreletError::NoSuchNeuron(NeuronId(9)))
        );
    }

    #[test]
    fn embed_remaps_ids_and_inputs() {
        // Child: input 0 → n0 → n1(out).
        let mut child = Corelet::new("child", 1);
        let n0 = child.add_neuron(template());
        let n1 = child.add_neuron(template());
        child.connect(NodeRef::Input(0), n0, 1, 1).unwrap();
        child.connect(NodeRef::Neuron(n0), n1, 1, 1).unwrap();
        child.mark_output(n1).unwrap();

        // Parent: one neuron feeding two embedded children.
        let mut parent = Corelet::new("parent", 1);
        let hub = parent.add_neuron(template());
        parent.connect(NodeRef::Input(0), hub, 1, 1).unwrap();
        let out1 = parent.embed(&child, &[NodeRef::Neuron(hub)]).unwrap();
        let out2 = parent.embed(&child, &[NodeRef::Input(0)]).unwrap();
        assert_eq!(out1, vec![NeuronId(2)]);
        assert_eq!(out2, vec![NeuronId(4)]);
        let stats = parent.network().stats();
        assert_eq!(stats.neurons, 5);
        assert_eq!(stats.synapses, 5);
        // The embedded synapse from child input 0 now sources from hub.
        assert!(parent
            .network()
            .synapses()
            .iter()
            .any(|s| s.pre == NodeRef::Neuron(hub) && s.post == NeuronId(1)));
    }

    #[test]
    fn embed_arity_checked() {
        let child = Corelet::new("child", 2);
        let mut parent = Corelet::new("parent", 1);
        assert_eq!(
            parent.embed(&child, &[NodeRef::Input(0)]),
            Err(CoreletError::InputArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn connectors_all_to_all_and_one_to_one() {
        let mut c = Corelet::new("conn", 2);
        let posts = c.add_population(template(), 3);
        let pres = [NodeRef::Input(0), NodeRef::Input(1)];
        connectors::all_to_all(&mut c, &pres, &posts, 2, 1).unwrap();
        assert_eq!(c.network().synapses().len(), 6);
        let pre_neurons: Vec<NodeRef> = posts.iter().map(|&p| NodeRef::Neuron(p)).collect();
        let more = c.add_population(template(), 3);
        connectors::one_to_one(&mut c, &pre_neurons, &more, -1, 2).unwrap();
        assert_eq!(c.network().synapses().len(), 9);
    }

    #[test]
    fn connectors_random_density_tracks_probability() {
        let mut c = Corelet::new("rand", 1);
        let posts = c.add_population(template(), 64);
        let pres: Vec<NodeRef> = c
            .add_population(template(), 64)
            .into_iter()
            .map(NodeRef::Neuron)
            .collect();
        let made = connectors::random(&mut c, &pres, &posts, 1, 1, 64, 42).unwrap();
        let p = made as f64 / (64.0 * 64.0);
        assert!((p - 0.25).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn random_connector_is_deterministic() {
        let build = || {
            let mut c = Corelet::new("rand", 0);
            let posts = c.add_population(template(), 16);
            let pres: Vec<NodeRef> = c
                .add_population(template(), 16)
                .into_iter()
                .map(NodeRef::Neuron)
                .collect();
            connectors::random(&mut c, &pres, &posts, 1, 1, 128, 7).unwrap();
            c.network().synapses().to_vec()
        };
        assert_eq!(build(), build());
    }
}
