//! The standard corelet library: reusable building-block networks in the
//! spirit of the original corelet library — each returns a self-contained
//! [`Corelet`] that composes into larger designs via [`Corelet::embed`].
//!
//! All corelets here are deterministic, use only compiler-mappable
//! constructs (≤ 4 distinct weights per neuron, delays 1–15) and document
//! their I/O contract and latency.
//!
//! ```
//! use brainsim_corelet::{library, Corelet, NodeRef};
//!
//! // split → delay → AND: a delay-tuned coincidence circuit, composed
//! // from three library corelets.
//! let mut top = Corelet::new("tuned", 1);
//! let outs = top.embed(&library::splitter(2), &[NodeRef::Input(0)]).unwrap();
//! let d = top
//!     .embed(&library::delay_line(5).unwrap(), &[NodeRef::Neuron(outs[0])])
//!     .unwrap();
//! let gate = top
//!     .embed(
//!         &library::coincidence(2),
//!         &[NodeRef::Neuron(d[0]), NodeRef::Neuron(outs[1])],
//!     )
//!     .unwrap();
//! top.mark_output(gate[0]).unwrap();
//! assert_eq!(top.network().outputs().len(), 1);
//! ```

use brainsim_neuron::{NeuronConfig, ResetMode};

use crate::{Corelet, CoreletError, NodeRef};

fn relay_template() -> NeuronConfig {
    NeuronConfig::builder().threshold(1).build().expect("valid")
}

/// A pure delay line: output = input delayed by exactly `ticks`.
///
/// Delays of 1–15 use a single synapse; longer delays chain relay neurons
/// (each stage adds its synaptic delay plus the relay's same-tick fire).
/// I/O: 1 input port, 1 output port. Latency: `ticks`.
///
/// # Errors
///
/// Returns [`CoreletError::BadDelay`] if `ticks` is zero.
pub fn delay_line(ticks: u32) -> Result<Corelet, CoreletError> {
    if ticks == 0 {
        return Err(CoreletError::BadDelay(0));
    }
    let mut c = Corelet::new(format!("delay-{ticks}"), 1);
    let mut remaining = ticks;
    let mut source = NodeRef::Input(0);
    let mut last = None;
    while remaining > 0 {
        let hop = remaining.min(15) as u8;
        let n = c.add_neuron(relay_template());
        c.connect(source, n, 1, hop)?;
        source = NodeRef::Neuron(n);
        last = Some(n);
        remaining -= hop as u32;
    }
    c.mark_output(last.expect("at least one stage"))?;
    Ok(c)
}

/// A splitter: one input port fanned out to `ways` output ports.
///
/// On hardware a spike addresses a single axon; this corelet provides the
/// logical fan-out that the compiler then legalises. I/O: 1 input port,
/// `ways` output ports, each a copy of the input delayed by 1 tick.
///
/// # Panics
///
/// Panics if `ways` is zero.
pub fn splitter(ways: usize) -> Corelet {
    assert!(ways > 0, "splitter needs at least one way");
    let mut c = Corelet::new(format!("split-{ways}"), 1);
    for _ in 0..ways {
        let n = c.add_neuron(relay_template());
        c.connect(NodeRef::Input(0), n, 1, 1).expect("valid wiring");
        c.mark_output(n).expect("neuron exists");
    }
    c
}

/// A merger (logical OR): `ways` input ports merged onto one output that
/// fires whenever at least one input fired, 1 tick later.
///
/// # Panics
///
/// Panics if `ways` is zero.
pub fn merger(ways: usize) -> Corelet {
    assert!(ways > 0, "merger needs at least one way");
    let mut c = Corelet::new(format!("merge-{ways}"), ways);
    // Threshold 1 with absolute reset: any number of simultaneous inputs
    // produces exactly one output spike.
    let n = c.add_neuron(relay_template());
    for port in 0..ways {
        c.connect(NodeRef::Input(port), n, 1, 1)
            .expect("valid wiring");
    }
    c.mark_output(n).expect("neuron exists");
    c
}

/// A coincidence (logical AND) gate over `ways` inputs: fires iff all
/// inputs spike in the same tick. A fast decaying leak clears partial
/// evidence, so staggered inputs do not accumulate.
///
/// # Panics
///
/// Panics if `ways < 2`.
pub fn coincidence(ways: usize) -> Corelet {
    assert!(ways >= 2, "coincidence needs at least two ways");
    let mut c = Corelet::new(format!("and-{ways}"), ways);
    let w = ways as i32;
    let template = NeuronConfig::builder()
        .threshold(1)
        .leak(-(w - 1))
        .leak_reversal(true)
        .negative_threshold(0)
        .build()
        .expect("valid");
    // Each input contributes 1; after the leak of −(w−1), only the
    // all-present case (w − (w−1) = 1) reaches threshold 1.
    let n = c.add_neuron(template);
    for port in 0..ways {
        c.connect(NodeRef::Input(port), n, 1, 1)
            .expect("valid wiring");
    }
    c.mark_output(n).expect("neuron exists");
    c
}

/// A majority gate: fires iff more than half of the `ways` inputs spike in
/// the same tick.
///
/// # Panics
///
/// Panics if `ways < 2`.
pub fn majority(ways: usize) -> Corelet {
    assert!(ways >= 2, "majority needs at least two ways");
    let mut c = Corelet::new(format!("majority-{ways}"), ways);
    let need = (ways / 2 + 1) as i32;
    let template = NeuronConfig::builder()
        .threshold(1)
        .leak(-(need - 1))
        .leak_reversal(true)
        .negative_threshold(0)
        .build()
        .expect("valid");
    let n = c.add_neuron(template);
    for port in 0..ways {
        c.connect(NodeRef::Input(port), n, 1, 1)
            .expect("valid wiring");
    }
    c.mark_output(n).expect("neuron exists");
    c
}

/// A spike counter / rate divider: emits one output spike per `n` input
/// spikes, with no rounding loss across time (linear reset).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn counter(n: u32) -> Corelet {
    assert!(n > 0, "counter needs a non-zero divisor");
    let mut c = Corelet::new(format!("div-{n}"), 1);
    let template = NeuronConfig::builder()
        .threshold(n)
        .reset_mode(ResetMode::Linear)
        .build()
        .expect("valid");
    let neuron = c.add_neuron(template);
    c.connect(NodeRef::Input(0), neuron, 1, 1)
        .expect("valid wiring");
    c.mark_output(neuron).expect("neuron exists");
    c
}

/// A winner-take-all stage over `channels` channels.
///
/// Each channel integrates its input; lateral inhibition (full cross
/// inhibition with weight −`inhibition`) suppresses weaker channels, so
/// under sustained rate-coded drive only the strongest channel keeps
/// firing. I/O: `channels` input ports, `channels` output ports.
///
/// # Panics
///
/// Panics if `channels < 2`.
pub fn winner_take_all(channels: usize, threshold: u32, inhibition: i32) -> Corelet {
    assert!(channels >= 2, "WTA needs at least two channels");
    let mut c = Corelet::new(format!("wta-{channels}"), channels);
    let template = NeuronConfig::builder()
        .threshold(threshold)
        .negative_threshold(0)
        .build()
        .expect("valid");
    let pop = c.add_population(template, channels);
    for (i, &n) in pop.iter().enumerate() {
        c.connect(NodeRef::Input(i), n, 2, 1).expect("valid wiring");
        c.mark_output(n).expect("neuron exists");
    }
    for (i, &pre) in pop.iter().enumerate() {
        for (j, &post) in pop.iter().enumerate() {
            if i != j {
                c.connect(NodeRef::Neuron(pre), post, -inhibition.abs(), 2)
                    .expect("valid wiring");
            }
        }
    }
    c
}

/// A toggle (T flip-flop style gate): a spike on the `set` port (0) turns
/// sustained firing on; a spike on the `reset` port (1) turns it off.
/// I/O: 2 input ports, 1 output port.
pub fn toggle() -> Corelet {
    let mut c = Corelet::new("toggle", 2);
    let template = NeuronConfig::builder()
        .threshold(10)
        .negative_threshold(0)
        .build()
        .expect("valid");
    let n = c.add_neuron(template);
    c.connect(NodeRef::Input(0), n, 10, 1)
        .expect("valid wiring"); // set
    c.connect(NodeRef::Input(1), n, -30, 1)
        .expect("valid wiring"); // reset
    c.connect(NodeRef::Neuron(n), n, 10, 1)
        .expect("valid wiring"); // hold
    c.mark_output(n).expect("neuron exists");
    c
}

/// A synfire chain: `stages` relay stages in series, each forwarding after
/// `stage_delay` ticks. Useful as a timing backbone and as a compiler
/// stress pattern. I/O: 1 input, one output per stage (in order).
///
/// # Panics
///
/// Panics if `stages` is zero or `stage_delay` outside `1..=15`.
pub fn synfire_chain(stages: usize, stage_delay: u8) -> Corelet {
    assert!(stages > 0, "need at least one stage");
    assert!((1..=15).contains(&stage_delay), "stage delay 1..=15");
    let mut c = Corelet::new(format!("synfire-{stages}"), 1);
    let mut source = NodeRef::Input(0);
    for _ in 0..stages {
        let n = c.add_neuron(relay_template());
        c.connect(source, n, 1, stage_delay).expect("valid wiring");
        c.mark_output(n).expect("neuron exists");
        source = NodeRef::Neuron(n);
    }
    c
}

/// A two-pulse sequence detector: fires iff port 0 spikes and port 1
/// spikes exactly `gap` ticks later (a delay-matched coincidence).
///
/// # Panics
///
/// Panics if `gap` outside `1..=14`.
pub fn sequence_detector(gap: u8) -> Corelet {
    assert!((1..=14).contains(&gap), "gap must be 1..=14");
    let mut c = Corelet::new(format!("seq-{gap}"), 2);
    let template = NeuronConfig::builder()
        .threshold(1)
        .leak(-1)
        .leak_reversal(true)
        .negative_threshold(0)
        .build()
        .expect("valid");
    let n = c.add_neuron(template);
    c.connect(NodeRef::Input(0), n, 1, gap + 1)
        .expect("valid wiring");
    c.connect(NodeRef::Input(1), n, 1, 1).expect("valid wiring");
    c.mark_output(n).expect("neuron exists");
    c
}

/// A pulse stretcher: one input spike produces `width` consecutive output
/// spikes (a mono-stable / refresh element).
///
/// # Panics
///
/// Panics if `width` is zero or exceeds 15.
pub fn pulse_stretcher(width: u8) -> Corelet {
    assert!((1..=15).contains(&width), "width must be 1..=15");
    let mut c = Corelet::new(format!("stretch-{width}"), 1);
    // The input fans out to `width` delayed taps merged onto one neuron;
    // threshold 1 + absolute reset gives one spike per covered tick.
    let n = c.add_neuron(relay_template());
    for d in 1..=width {
        c.connect(NodeRef::Input(0), n, 1, d).expect("valid wiring");
    }
    c.mark_output(n).expect("neuron exists");
    c
}

/// A rate comparator: fires while port 0's recent rate exceeds port 1's
/// (excitation vs inhibition into a decaying integrator).
pub fn rate_comparator(threshold: u32) -> Corelet {
    let mut c = Corelet::new("rate-cmp", 2);
    let template = NeuronConfig::builder()
        .threshold(threshold.max(1))
        .leak(-1)
        .leak_reversal(true)
        .negative_threshold(0)
        .build()
        .expect("valid");
    let n = c.add_neuron(template);
    c.connect(NodeRef::Input(0), n, 2, 1).expect("valid wiring");
    c.connect(NodeRef::Input(1), n, -2, 1)
        .expect("valid wiring");
    c.mark_output(n).expect("neuron exists");
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeuronId;

    /// Tiny direct executor for library tests (mirrors the compiler's
    /// interpreter but lives here to keep the crate self-contained).
    fn run(corelet: &Corelet, ticks: u64, stimulus: impl Fn(u64) -> Vec<usize>) -> Vec<Vec<bool>> {
        use brainsim_neuron::{Lfsr, Neuron};
        let net = corelet.network();
        let mut neurons: Vec<Neuron> = net.neurons().iter().cloned().map(Neuron::new).collect();
        let mut wheel: Vec<Vec<(usize, i32)>> = vec![Vec::new(); 16];
        let mut rng = Lfsr::new(9);
        let mut raster = Vec::new();
        for t in 0..ticks {
            let due = std::mem::take(&mut wheel[(t % 16) as usize]);
            for (post, w) in due {
                neurons[post].inject_raw(w);
            }
            let fired: Vec<bool> = neurons
                .iter_mut()
                .map(|n| n.finish_tick(&mut rng).fired())
                .collect();
            let active = stimulus(t);
            for s in net.synapses() {
                let live = match s.pre {
                    NodeRef::Input(p) => active.contains(&p),
                    NodeRef::Neuron(NeuronId(i)) => fired[i],
                };
                if live {
                    wheel[((t + s.delay as u64) % 16) as usize].push((s.post.0, s.weight));
                }
            }
            raster.push(net.outputs().iter().map(|&NeuronId(o)| fired[o]).collect());
        }
        raster
    }

    fn spike_ticks(raster: &[Vec<bool>], port: usize) -> Vec<u64> {
        raster
            .iter()
            .enumerate()
            .filter_map(|(t, r)| r[port].then_some(t as u64))
            .collect()
    }

    #[test]
    fn delay_line_short_and_long() {
        for ticks in [1u32, 7, 15, 16, 40] {
            let c = delay_line(ticks).unwrap();
            let raster = run(
                &c,
                ticks as u64 + 5,
                |t| if t == 0 { vec![0] } else { vec![] },
            );
            assert_eq!(spike_ticks(&raster, 0), vec![ticks as u64], "delay {ticks}");
        }
    }

    #[test]
    fn delay_line_zero_rejected() {
        assert_eq!(delay_line(0).unwrap_err(), CoreletError::BadDelay(0));
    }

    #[test]
    fn splitter_copies_to_all_ways() {
        let c = splitter(4);
        let raster = run(&c, 4, |t| if t == 0 { vec![0] } else { vec![] });
        for port in 0..4 {
            assert_eq!(spike_ticks(&raster, port), vec![1], "port {port}");
        }
    }

    #[test]
    fn merger_fires_once_for_any_input_combination() {
        let c = merger(3);
        let raster = run(&c, 8, |t| match t {
            0 => vec![0],
            3 => vec![0, 1, 2],
            _ => vec![],
        });
        assert_eq!(spike_ticks(&raster, 0), vec![1, 4]);
    }

    #[test]
    fn coincidence_requires_all_inputs_same_tick() {
        let c = coincidence(3);
        let raster = run(&c, 16, |t| match t {
            1 => vec![0, 1, 2],  // all → fire
            5 => vec![0, 1],     // partial → no fire
            8 => vec![2],        // staggered remainder → still no fire
            12 => vec![0, 1, 2], // all again → fire
            _ => vec![],
        });
        assert_eq!(spike_ticks(&raster, 0), vec![2, 13]);
    }

    #[test]
    fn majority_fires_above_half() {
        let c = majority(5);
        let raster = run(&c, 12, |t| match t {
            0 => vec![0, 1],          // 2 of 5 → no
            3 => vec![0, 1, 2],       // 3 of 5 → yes
            6 => vec![0, 1, 2, 3, 4], // 5 of 5 → yes
            _ => vec![],
        });
        assert_eq!(spike_ticks(&raster, 0), vec![4, 7]);
    }

    #[test]
    fn counter_divides_exactly() {
        let c = counter(3);
        let raster = run(&c, 20, |t| if t < 12 { vec![0] } else { vec![] });
        assert_eq!(spike_ticks(&raster, 0).len(), 4); // 12 / 3
    }

    #[test]
    fn winner_take_all_selects_strongest() {
        let c = winner_take_all(3, 4, 8);
        // Channel 1 driven every tick, channels 0/2 at one third the rate.
        let raster = run(&c, 60, |t| {
            let mut active = vec![1];
            if t % 3 == 0 {
                active.push(0);
                active.push(2);
            }
            active
        });
        let counts: Vec<usize> = (0..3).map(|p| spike_ticks(&raster, p).len()).collect();
        assert!(
            counts[1] > 3 * counts[0].max(counts[2]).max(1),
            "winner must dominate: {counts:?}"
        );
    }

    #[test]
    fn toggle_sets_and_resets() {
        let c = toggle();
        let raster = run(&c, 30, |t| match t {
            5 => vec![0],  // set
            20 => vec![1], // reset
            _ => vec![],
        });
        let ticks = spike_ticks(&raster, 0);
        assert!(ticks.contains(&6), "on after set: {ticks:?}");
        assert!(ticks.iter().filter(|&&t| (7..=20).contains(&t)).count() >= 12);
        assert!(ticks.iter().all(|&t| t <= 21), "off after reset: {ticks:?}");
    }

    #[test]
    fn synfire_chain_propagates_stage_by_stage() {
        let c = synfire_chain(4, 3);
        let raster = run(&c, 16, |t| if t == 0 { vec![0] } else { vec![] });
        for stage in 0..4 {
            assert_eq!(
                spike_ticks(&raster, stage),
                vec![3 * (stage as u64 + 1)],
                "stage {stage}"
            );
        }
    }

    #[test]
    fn sequence_detector_requires_exact_gap() {
        let c = sequence_detector(4);
        let raster = run(&c, 40, |t| match t {
            2 => vec![0],
            6 => vec![1], // gap 4 ✓ → fire
            20 => vec![0],
            22 => vec![1], // gap 2 ✗
            30 => vec![1],
            31 => vec![0], // wrong order ✗
            _ => vec![],
        });
        assert_eq!(spike_ticks(&raster, 0), vec![7]);
    }

    #[test]
    fn pulse_stretcher_widens_single_spike() {
        let c = pulse_stretcher(5);
        let raster = run(&c, 12, |t| if t == 1 { vec![0] } else { vec![] });
        assert_eq!(spike_ticks(&raster, 0), vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn rate_comparator_tracks_rate_difference() {
        let c = rate_comparator(2);
        // Phase 1: port 0 fast, port 1 slow → fires.
        // Phase 2: rates swapped → silent.
        let raster = run(&c, 60, |t| {
            if t < 30 {
                if t % 3 == 0 {
                    vec![0, 1]
                } else {
                    vec![0]
                }
            } else if t % 3 == 0 {
                vec![0, 1]
            } else {
                vec![1]
            }
        });
        let fires_early = spike_ticks(&raster, 0).iter().filter(|&&t| t < 30).count();
        let fires_late = spike_ticks(&raster, 0).iter().filter(|&&t| t >= 32).count();
        assert!(fires_early >= 5, "early {fires_early}");
        assert_eq!(fires_late, 0, "late fires: {fires_late}");
    }

    #[test]
    fn library_corelets_compose_via_embed() {
        // split → two different delays → merge: output fires twice.
        let mut top = Corelet::new("compose", 1);
        let split = splitter(2);
        let outs = top.embed(&split, &[NodeRef::Input(0)]).unwrap();
        let d3 = delay_line(3).unwrap();
        let d7 = delay_line(7).unwrap();
        let a = top.embed(&d3, &[NodeRef::Neuron(outs[0])]).unwrap();
        let b = top.embed(&d7, &[NodeRef::Neuron(outs[1])]).unwrap();
        let merge = merger(2);
        let m = top
            .embed(&merge, &[NodeRef::Neuron(a[0]), NodeRef::Neuron(b[0])])
            .unwrap();
        top.mark_output(m[0]).unwrap();
        let raster = run(&top, 16, |t| if t == 0 { vec![0] } else { vec![] });
        // input@0 → split@1 → delays(3, 7) land @4 and @8 → merge @5 and @9.
        assert_eq!(spike_ticks(&raster, 0), vec![5, 9]);
    }
}
