//! # brainsim-telemetry
//!
//! Zero-cost-when-disabled instrumentation for the chip tick pipeline.
//!
//! The TrueNorth lineage's headline numbers — picojoules per synaptic
//! event, milliwatts per chip, one-to-one tick equivalence — are all
//! *measured* quantities: the published evaluations lean on per-core
//! activity maps and per-link traffic counters. This crate is the
//! simulator's equivalent of those on-chip probes: a typed, per-tick
//! observability layer that the chip runtime fills while it ticks.
//!
//! ## Model
//!
//! * [`TickRecord`] — one tick's typed observation: evaluated/skipped core
//!   counts (scheduler quiescence), spike/output/delivery totals, routing
//!   hop and link-crossing counters, a log₂ [`Histogram`] of per-spike hop
//!   distances, the tick's fault-event annotations ([`FaultStats`]) and its
//!   energy-census delta ([`EventCensus`]), plus optional per-core
//!   [`CoreActivity`] detail in canonical row-major core order.
//! * [`TelemetryLog`] — the ring-buffered sink the chip records into. It
//!   keeps the last `capacity` records (evicting oldest, counting the
//!   evictions) and folds **every** record into a cumulative
//!   [`RunSummary`], so run-level aggregates — including the per-core
//!   spike heatmap — survive ring eviction on arbitrarily long soak runs.
//! * [`Probe`] — the consumer trait. Anything that wants the record stream
//!   (exporters, custom aggregators) implements it and is driven by
//!   [`TelemetryLog::replay`] or fed records directly.
//! * [`JsonlExporter`] / [`CsvExporter`] — textual sinks implementing
//!   [`Probe`]: one JSON object or CSV row per tick, hand-rendered with a
//!   stable field order so output is byte-identical for identical runs.
//!
//! ## Determinism contract
//!
//! Telemetry is collected *inside* the deterministic tick pipeline: per-core
//! records are concatenated in canonical core order from the Phase-A shard
//! results, and every Phase-B counter (hops, crossings, histograms, fault
//! tallies) merges by order-independent sums. The record stream is therefore
//! bit-identical at any thread count and under either scheduling mode's own
//! contract — the differential suite in `tests/parallel_equivalence.rs`
//! asserts it.
//!
//! ## Overhead contract
//!
//! Disabled telemetry costs one branch per tick on the chip's hot path
//! (≤2 % on the dense chip-tick benchmark; the `*_telemetry` variants in
//! `BENCH_barometer.jsonl` record the enabled overhead per workload).
//! Enabled telemetry pays for what it records:
//! per-tick counter snapshots, plus one [`CoreActivity`] per evaluated core
//! when core detail is on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod export;
mod record;
mod report;
mod sink;

pub use export::{
    render_csv_row, render_jsonl, render_summary_jsonl, CsvExporter, JsonlExporter, CSV_HEADER,
};
pub use record::{CoreActivity, Histogram, SchedulerMeta, TickRecord, HISTOGRAM_BUCKETS};
pub use report::{render_heatmap, RunSummary};
pub use sink::{Probe, TelemetryConfig, TelemetryLog};

// Re-export the census/fault vocabulary embedded in the records.
pub use brainsim_energy::EventCensus;
pub use brainsim_faults::FaultStats;
