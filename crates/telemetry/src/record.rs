//! Typed per-tick telemetry records.

use brainsim_energy::EventCensus;
use brainsim_faults::FaultStats;
use serde::{Deserialize, Serialize};

/// Number of buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 8;

/// A small fixed log₂ histogram: bucket `i` counts values in
/// `[2^(i−1), 2^i)` (bucket 0 counts zeros, the last bucket is open-ended:
/// `≥ 64`). Merging is an element-wise sum, so histograms built by
/// concurrent shards combine order-independently — the property the
/// parallel routing pipeline relies on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket counts: `[0]`, `[1]`, `[2,3]`, `[4,7]`, `[8,15]`, `[16,31]`,
    /// `[32,63]`, `[64,∞)`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = match value {
            0 => 0,
            v => ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1),
        };
        self.buckets[bucket] += 1;
    }

    /// Element-wise sum of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The lower bound of bucket `i` (for rendering).
    pub fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }
}

/// One evaluated core's activity during one tick (stat deltas, not
/// cumulative totals). Skipped (provably quiescent) cores produce no
/// activity entry — their count appears in
/// [`TickRecord::cores_skipped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreActivity {
    /// Flat row-major core index.
    pub core: u32,
    /// Spikes the core fired this tick (after fault masking).
    pub spikes: u32,
    /// Axon events consumed from the core's scheduler this tick.
    pub axon_events: u32,
    /// Synaptic events integrated this tick.
    pub synaptic_events: u64,
    /// Axon events still pending in the core's scheduler after this tick's
    /// evaluation (its post-tick backlog; deliveries routed later in the
    /// same chip tick are not yet included).
    pub pending_events: u32,
}

/// Worker-thread sizing the chip's scheduler actually used for one tick:
/// the configured count and the effective count after clamping to the
/// host's available parallelism.
///
/// The effective count is a *host property*, not a simulation property —
/// the record stream is bit-identical across thread counts and machines in
/// every other field — so this block is deliberately excluded from
/// [`TickRecord`] equality and only annotates exports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerMeta {
    /// The thread count the chip was configured with.
    pub threads_configured: u32,
    /// The count actually used: `threads_configured` clamped to the host's
    /// `std::thread::available_parallelism()`.
    pub threads_effective: u32,
}

/// Everything the probes observed during one chip tick.
///
/// The per-tick counters mirror [`brainsim_energy::EventCensus`] semantics
/// (the [`TickRecord::energy`] field *is* this tick's census delta), fault
/// annotations mirror the tick's `TickSummary.faults`, and
/// [`TickRecord::cores`] holds per-core detail in canonical core order when
/// enabled by [`crate::TelemetryConfig::core_detail`].
///
/// Equality compares the simulation payload only: the host-dependent
/// [`TickRecord::scheduler`] annotation is excluded, so two logs collected
/// on hosts with different CPU counts still compare bit-identical.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TickRecord {
    /// The tick that was evaluated.
    pub tick: u64,
    /// Cores actually evaluated this tick.
    pub cores_evaluated: u32,
    /// Cores skipped as provably quiescent by active-core scheduling
    /// (always zero under a full sweep).
    pub cores_skipped: u32,
    /// Total spikes fired by all cores this tick.
    pub spikes: u64,
    /// External output events emitted this tick.
    pub outputs: u32,
    /// Inter-core spike deliveries scheduled this tick.
    pub deliveries: u64,
    /// Mesh hops charged to this tick's routed spikes.
    pub hops: u64,
    /// Tile-boundary link crossings charged this tick.
    pub link_crossings: u64,
    /// Distribution of per-spike hop distances this tick.
    pub hop_histogram: Histogram,
    /// Fault events suffered by this tick's evaluation and routing.
    pub faults: FaultStats,
    /// This tick's energy-census delta (the increment `Chip::census`
    /// gained from this tick), ready for `EnergyModel::report`.
    pub energy: EventCensus,
    /// Per-core activity of the evaluated cores, in canonical row-major
    /// core order. Empty when core detail is disabled.
    pub cores: Vec<CoreActivity>,
    /// Scheduler thread-sizing annotation (host-dependent; excluded from
    /// equality).
    pub scheduler: SchedulerMeta,
}

impl PartialEq for TickRecord {
    fn eq(&self, other: &Self) -> bool {
        // `scheduler` is intentionally absent: see the struct docs.
        self.tick == other.tick
            && self.cores_evaluated == other.cores_evaluated
            && self.cores_skipped == other.cores_skipped
            && self.spikes == other.spikes
            && self.outputs == other.outputs
            && self.deliveries == other.deliveries
            && self.hops == other.hops
            && self.link_crossings == other.link_crossings
            && self.hop_histogram == other.hop_histogram
            && self.faults == other.faults
            && self.energy == other.energy
            && self.cores == other.cores
    }
}

impl Eq for TickRecord {}

impl TickRecord {
    /// Fraction of cores skipped as quiescent this tick (0 when the chip
    /// has no cores).
    pub fn quiescence_rate(&self) -> f64 {
        let total = self.cores_evaluated as u64 + self.cores_skipped as u64;
        if total == 0 {
            0.0
        } else {
            self.cores_skipped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 1000] {
            h.record(v);
        }
        assert_eq!(h.buckets, [1, 1, 2, 2, 2, 2, 2, 2]);
        assert_eq!(h.total(), 14);
    }

    #[test]
    fn histogram_merge_is_elementwise_sum() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(1);
        a.record(5);
        b.record(1);
        b.record(100);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 4);
    }

    #[test]
    fn bucket_floors() {
        let floors: Vec<u64> = (0..HISTOGRAM_BUCKETS)
            .map(Histogram::bucket_floor)
            .collect();
        assert_eq!(floors, vec![0, 1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn equality_ignores_host_dependent_scheduler_meta() {
        let a = TickRecord {
            tick: 3,
            spikes: 9,
            scheduler: SchedulerMeta {
                threads_configured: 8,
                threads_effective: 8,
            },
            ..TickRecord::default()
        };
        let b = TickRecord {
            scheduler: SchedulerMeta {
                threads_configured: 8,
                threads_effective: 1,
            },
            ..a.clone()
        };
        assert_eq!(a, b, "scheduler metadata must not break equality");
        let c = TickRecord {
            spikes: 10,
            ..a.clone()
        };
        assert_ne!(a, c, "payload fields still compare");
    }

    #[test]
    fn quiescence_rate_handles_empty_chip() {
        assert_eq!(TickRecord::default().quiescence_rate(), 0.0);
        let r = TickRecord {
            cores_evaluated: 1,
            cores_skipped: 3,
            ..TickRecord::default()
        };
        assert_eq!(r.quiescence_rate(), 0.75);
    }
}
