//! Textual exporters: JSONL and CSV sinks implementing [`Probe`].
//!
//! The workspace's vendored `serde` is a no-op marker stub, so both formats
//! are rendered by hand with a fixed field order — identical runs produce
//! byte-identical output, which the differential tests rely on.

use std::fmt::Write as _;
use std::io::{self, Write};

use brainsim_energy::EventCensus;
use brainsim_faults::FaultStats;

use crate::record::TickRecord;
use crate::report::RunSummary;
use crate::sink::Probe;

fn render_faults(out: &mut String, f: &FaultStats) {
    let _ = write!(
        out,
        "{{\"cores_dropped\":{},\"neurons_dead\":{},\"neurons_stuck_firing\":{},\
         \"synapses_stuck_zero\":{},\"synapses_stuck_one\":{},\"spikes_suppressed\":{},\
         \"spikes_forced\":{},\"packets_dropped\":{},\"packets_corrupted\":{},\
         \"packets_delayed\":{},\"flits_dropped_overflow\":{},\"deliveries_failed\":{}}}",
        f.cores_dropped,
        f.neurons_dead,
        f.neurons_stuck_firing,
        f.synapses_stuck_zero,
        f.synapses_stuck_one,
        f.spikes_suppressed,
        f.spikes_forced,
        f.packets_dropped,
        f.packets_corrupted,
        f.packets_delayed,
        f.flits_dropped_overflow,
        f.deliveries_failed,
    );
}

fn render_census(out: &mut String, c: &EventCensus) {
    let _ = write!(
        out,
        "{{\"ticks\":{},\"cores\":{},\"synaptic_events\":{},\"neuron_updates\":{},\
         \"spikes\":{},\"axon_events\":{},\"hops\":{},\"link_crossings\":{},\
         \"packets_dropped\":{},\"packets_rejected\":{},\"flit_stalls\":{}}}",
        c.ticks,
        c.cores,
        c.synaptic_events,
        c.neuron_updates,
        c.spikes,
        c.axon_events,
        c.hops,
        c.link_crossings,
        c.packets_dropped,
        c.packets_rejected,
        c.flit_stalls,
    );
}

/// Renders one [`TickRecord`] as a single JSON object (no trailing newline).
pub fn render_jsonl(record: &TickRecord) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"tick\":{},\"cores_evaluated\":{},\"cores_skipped\":{},\"spikes\":{},\
         \"outputs\":{},\"deliveries\":{},\"hops\":{},\"link_crossings\":{},\
         \"hop_histogram\":[",
        record.tick,
        record.cores_evaluated,
        record.cores_skipped,
        record.spikes,
        record.outputs,
        record.deliveries,
        record.hops,
        record.link_crossings,
    );
    for (i, bucket) in record.hop_histogram.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{bucket}");
    }
    out.push_str("],\"faults\":");
    render_faults(&mut out, &record.faults);
    out.push_str(",\"energy\":");
    render_census(&mut out, &record.energy);
    let _ = write!(
        out,
        ",\"scheduler\":{{\"threads_configured\":{},\"threads_effective\":{}}}",
        record.scheduler.threads_configured, record.scheduler.threads_effective,
    );
    out.push_str(",\"cores\":[");
    for (i, core) in record.cores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"core\":{},\"spikes\":{},\"axon_events\":{},\"synaptic_events\":{},\
             \"pending_events\":{}}}",
            core.core, core.spikes, core.axon_events, core.synaptic_events, core.pending_events,
        );
    }
    out.push_str("]}");
    out
}

/// Renders a [`RunSummary`] as a single JSON object (no trailing newline),
/// with the same stable field order guarantees as [`render_jsonl`]. The
/// `resumed_from_tick` field is `null` for uninterrupted runs and the
/// checkpoint tick for resumed ones, so downstream consumers can always
/// tell the two apart instead of silently merging them.
pub fn render_summary_jsonl(summary: &RunSummary) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(out, "{{\"ticks\":{},\"resumed_from_tick\":", summary.ticks);
    match summary.resumed_from_tick {
        Some(tick) => {
            let _ = write!(out, "{tick}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"spikes\":{},\"outputs\":{},\"deliveries\":{},\"hops\":{},\
         \"link_crossings\":{},\"evaluations\":{},\"skips\":{},\"faults\":",
        summary.spikes,
        summary.outputs,
        summary.deliveries,
        summary.hops,
        summary.link_crossings,
        summary.evaluations,
        summary.skips,
    );
    render_faults(&mut out, &summary.faults);
    out.push_str(",\"energy\":");
    render_census(&mut out, &summary.energy);
    out.push('}');
    out
}

/// A [`Probe`] writing one JSON object per tick record to an [`io::Write`]
/// sink (JSON Lines). IO errors are stored and surfaced by
/// [`JsonlExporter::finish`].
#[derive(Debug)]
pub struct JsonlExporter<W: Write> {
    writer: W,
    error: Option<io::Error>,
    lines: u64,
}

impl<W: Write> JsonlExporter<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlExporter<W> {
        JsonlExporter {
            writer,
            error: None,
            lines: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first IO error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Probe for JsonlExporter<W> {
    fn on_tick(&mut self, record: &TickRecord) {
        if self.error.is_some() {
            return;
        }
        let line = render_jsonl(record);
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.lines += 1,
            Err(err) => self.error = Some(err),
        }
    }

    fn on_finish(&mut self) {
        if self.error.is_none() {
            if let Err(err) = self.writer.flush() {
                self.error = Some(err);
            }
        }
    }
}

/// The fixed CSV column set, one row per tick. Per-core detail is not
/// flattened into CSV — use JSONL for that.
pub const CSV_HEADER: &str = "tick,cores_evaluated,cores_skipped,spikes,outputs,deliveries,\
hops,link_crossings,hop_b0,hop_b1,hop_b2,hop_b3,hop_b4,hop_b5,hop_b6,hop_b7,\
fault_events,neuron_updates,synaptic_events,axon_events,packets_rejected,flit_stalls";

/// Renders one [`TickRecord`] as a CSV row matching [`CSV_HEADER`] (no
/// trailing newline).
pub fn render_csv_row(record: &TickRecord) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{},{},{},{},{},{},{},{}",
        record.tick,
        record.cores_evaluated,
        record.cores_skipped,
        record.spikes,
        record.outputs,
        record.deliveries,
        record.hops,
        record.link_crossings,
    );
    for bucket in &record.hop_histogram.buckets {
        let _ = write!(out, ",{bucket}");
    }
    let _ = write!(
        out,
        ",{},{},{},{},{},{}",
        record.faults.total(),
        record.energy.neuron_updates,
        record.energy.synaptic_events,
        record.energy.axon_events,
        record.energy.packets_rejected,
        record.energy.flit_stalls,
    );
    out
}

/// A [`Probe`] writing a header row then one CSV row per tick record. IO
/// errors are stored and surfaced by [`CsvExporter::finish`].
#[derive(Debug)]
pub struct CsvExporter<W: Write> {
    writer: W,
    error: Option<io::Error>,
    rows: u64,
    header_written: bool,
}

impl<W: Write> CsvExporter<W> {
    /// Wraps a writer; the header row is written before the first record.
    pub fn new(writer: W) -> CsvExporter<W> {
        CsvExporter {
            writer,
            error: None,
            rows: 0,
            header_written: false,
        }
    }

    /// Data rows successfully written so far (excluding the header).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flushes and returns the writer, or the first IO error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Probe for CsvExporter<W> {
    fn on_tick(&mut self, record: &TickRecord) {
        if self.error.is_some() {
            return;
        }
        if !self.header_written {
            if let Err(err) = writeln!(self.writer, "{CSV_HEADER}") {
                self.error = Some(err);
                return;
            }
            self.header_written = true;
        }
        match writeln!(self.writer, "{}", render_csv_row(record)) {
            Ok(()) => self.rows += 1,
            Err(err) => self.error = Some(err),
        }
    }

    fn on_finish(&mut self) {
        if self.error.is_none() {
            if let Err(err) = self.writer.flush() {
                self.error = Some(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CoreActivity, HISTOGRAM_BUCKETS};

    fn record() -> TickRecord {
        let mut r = TickRecord {
            tick: 7,
            cores_evaluated: 1,
            cores_skipped: 3,
            spikes: 2,
            outputs: 1,
            deliveries: 2,
            hops: 5,
            link_crossings: 1,
            ..TickRecord::default()
        };
        r.hop_histogram.record(2);
        r.hop_histogram.record(3);
        r.faults.packets_dropped = 1;
        r.energy.neuron_updates = 256;
        r.cores.push(CoreActivity {
            core: 4,
            spikes: 2,
            axon_events: 3,
            synaptic_events: 17,
            pending_events: 0,
        });
        r
    }

    #[test]
    fn jsonl_is_stable_and_complete() {
        let line = render_jsonl(&record());
        assert!(line.starts_with("{\"tick\":7,"));
        assert!(line.contains("\"hop_histogram\":[0,0,2,0,0,0,0,0]"));
        assert!(line.contains("\"packets_dropped\":1"));
        assert!(line.contains("\"neuron_updates\":256"));
        assert!(line.contains("{\"core\":4,\"spikes\":2,\"axon_events\":3,"));
        assert!(line.contains("\"scheduler\":{\"threads_configured\":0,\"threads_effective\":0}"));
        assert!(line.ends_with("}]}"));
        // Identical input → byte-identical output.
        assert_eq!(line, render_jsonl(&record()));
    }

    #[test]
    fn summary_jsonl_labels_resumed_runs() {
        let mut s = RunSummary::new(2);
        s.on_tick(&record());
        let fresh = render_summary_jsonl(&s);
        assert!(fresh.contains("\"resumed_from_tick\":null"));
        s.resumed_from_tick = Some(50);
        let resumed = render_summary_jsonl(&s);
        assert!(resumed.contains("\"resumed_from_tick\":50"));
        assert!(resumed.contains("\"spikes\":2"));
        // Identical input → byte-identical output.
        assert_eq!(resumed, render_summary_jsonl(&s));
    }

    #[test]
    fn jsonl_exporter_writes_one_line_per_record() {
        let mut exporter = JsonlExporter::new(Vec::new());
        exporter.on_tick(&record());
        exporter.on_tick(&record());
        exporter.on_finish();
        assert_eq!(exporter.lines(), 2);
        let bytes = exporter.finish().expect("no io error on Vec sink");
        let text = String::from_utf8(bytes).expect("exporter emits utf-8");
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn csv_header_matches_row_arity() {
        let header_cols = CSV_HEADER.split(',').count();
        let row_cols = render_csv_row(&record()).split(',').count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(header_cols, 14 + HISTOGRAM_BUCKETS);
    }

    #[test]
    fn csv_exporter_emits_header_once() {
        let mut exporter = CsvExporter::new(Vec::new());
        exporter.on_tick(&record());
        exporter.on_tick(&record());
        exporter.on_finish();
        assert_eq!(exporter.rows(), 2);
        let bytes = exporter.finish().expect("no io error on Vec sink");
        let text = String::from_utf8(bytes).expect("exporter emits utf-8");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn exporter_stores_first_io_error() {
        // Accepts writes until one full line has gone through, then fails.
        struct FailAfterFirstLine {
            line_done: bool,
        }
        impl Write for FailAfterFirstLine {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.line_done {
                    return Err(io::Error::other("sink full"));
                }
                if buf.contains(&b'\n') {
                    self.line_done = true;
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut exporter = JsonlExporter::new(FailAfterFirstLine { line_done: false });
        exporter.on_tick(&record());
        exporter.on_tick(&record());
        assert_eq!(exporter.lines(), 1);
        assert!(exporter.finish().is_err());
    }
}
