//! Run-level aggregation: cumulative counters, per-core heatmaps, and a
//! human-readable summary table.

use std::fmt::Write as _;

use brainsim_energy::{EnergyModel, EventCensus};
use brainsim_faults::FaultStats;
use serde::{Deserialize, Serialize};

use crate::record::{Histogram, TickRecord, HISTOGRAM_BUCKETS};
use crate::sink::Probe;

/// Cumulative aggregates over a whole run — fed one [`TickRecord`] at a
/// time (it implements [`Probe`]), never evicted, so it stays exact on
/// arbitrarily long runs even when the record ring wraps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Ticks observed.
    pub ticks: u64,
    /// Total spikes fired.
    pub spikes: u64,
    /// Total external output events.
    pub outputs: u64,
    /// Total inter-core deliveries.
    pub deliveries: u64,
    /// Total mesh hops.
    pub hops: u64,
    /// Total tile-boundary link crossings.
    pub link_crossings: u64,
    /// Total core evaluations performed.
    pub evaluations: u64,
    /// Total core evaluations skipped as provably quiescent.
    pub skips: u64,
    /// Distribution of per-spike hop distances over the run.
    pub hop_histogram: Histogram,
    /// Total fault events.
    pub faults: FaultStats,
    /// The run's cumulative energy census (sum of per-tick deltas).
    pub energy: EventCensus,
    /// Cumulative spikes per core, row-major — the activity heatmap.
    pub core_spikes: Vec<u64>,
    /// Cumulative synaptic events per core, row-major — the load heatmap.
    pub core_synaptic_events: Vec<u64>,
    /// `Some(tick)` when this summary was restored from a checkpoint taken
    /// at `tick`: the aggregates cover the whole logical run (pre-checkpoint
    /// counters travel inside the snapshot), but the record ring restarts
    /// empty at the resume point. Exporters and [`RunSummary::render_table`]
    /// surface the marker so resumed runs are never mistaken for (or
    /// silently merged with) uninterrupted ones.
    pub resumed_from_tick: Option<u64>,
}

impl RunSummary {
    /// An empty summary for a chip with `cores` cores.
    pub fn new(cores: usize) -> RunSummary {
        RunSummary {
            core_spikes: vec![0; cores],
            core_synaptic_events: vec![0; cores],
            ..RunSummary::default()
        }
    }

    /// Mean fraction of cores skipped per tick over the run.
    pub fn quiescence_rate(&self) -> f64 {
        let total = self.evaluations + self.skips;
        if total == 0 {
            0.0
        } else {
            self.skips as f64 / total as f64
        }
    }

    /// Mean spikes per tick.
    pub fn spikes_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.spikes as f64 / self.ticks as f64
        }
    }

    /// Mean hops per delivered spike (0 when nothing was delivered).
    pub fn mean_hops(&self) -> f64 {
        if self.deliveries == 0 {
            0.0
        } else {
            self.hops as f64 / self.deliveries as f64
        }
    }

    /// Reshapes a per-core row-major vector into `height` rows of `width`
    /// (heatmap form). Returns `None` when `width × height` does not match
    /// the core count the summary was created with.
    pub fn heatmap(counts: &[u64], width: usize, height: usize) -> Option<Vec<Vec<u64>>> {
        if width * height != counts.len() {
            return None;
        }
        Some(
            (0..height)
                .map(|y| counts[y * width..(y + 1) * width].to_vec())
                .collect(),
        )
    }

    /// Renders the summary as an aligned text table, including the derived
    /// energy report for the run.
    pub fn render_table(&self, model: &EnergyModel) -> String {
        let mut out = String::new();
        let mut row = |k: &str, v: String| {
            let _ = writeln!(out, "  {k:<26} {v}");
        };
        row("ticks", self.ticks.to_string());
        if let Some(tick) = self.resumed_from_tick {
            row("resumed from tick", tick.to_string());
        }
        row(
            "spikes",
            format!("{} ({:.2}/tick)", self.spikes, self.spikes_per_tick()),
        );
        row("outputs", self.outputs.to_string());
        row(
            "deliveries",
            format!("{} ({:.2} hops mean)", self.deliveries, self.mean_hops()),
        );
        row("hops", self.hops.to_string());
        row("link crossings", self.link_crossings.to_string());
        row(
            "core evaluations",
            format!(
                "{} ({} skipped, {:.1}% quiescent)",
                self.evaluations,
                self.skips,
                self.quiescence_rate() * 100.0
            ),
        );
        row("fault events", self.faults.total().to_string());
        let report = model.report(&self.energy);
        row(
            "energy",
            format!(
                "{:.3} µJ active, {:.3} mW total, {:.2} GSOPS/W",
                report.active_energy_j * 1e6,
                report.total_mw,
                report.gsops_per_watt
            ),
        );
        if !self.hop_histogram.is_empty() {
            row("hop histogram", render_histogram(&self.hop_histogram));
        }
        out
    }
}

/// Renders a histogram as `floor:count` pairs, skipping empty tail buckets.
fn render_histogram(h: &Histogram) -> String {
    let last = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut out = String::new();
    for i in 0..=last {
        if i > 0 {
            out.push(' ');
        }
        let floor = Histogram::bucket_floor(i);
        let tag = if i + 1 == HISTOGRAM_BUCKETS {
            format!("{floor}+")
        } else {
            floor.to_string()
        };
        let _ = write!(out, "{tag}:{}", h.buckets[i]);
    }
    out
}

/// Renders a per-core heatmap as compact ASCII (log-scale digits, `.` = 0),
/// matching the chip trace module's activity-map rendering.
pub fn render_heatmap(map: &[Vec<u64>]) -> String {
    let mut out = String::new();
    for row in map {
        for &count in row {
            let ch = match count {
                0 => '.',
                1..=9 => char::from_digit(count as u32, 10).unwrap_or('?'),
                10..=99 => 'x',
                _ => 'X',
            };
            out.push(ch);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

impl Probe for RunSummary {
    fn on_tick(&mut self, record: &TickRecord) {
        self.ticks += 1;
        self.spikes += record.spikes;
        self.outputs += record.outputs as u64;
        self.deliveries += record.deliveries;
        self.hops += record.hops;
        self.link_crossings += record.link_crossings;
        self.evaluations += record.cores_evaluated as u64;
        self.skips += record.cores_skipped as u64;
        self.hop_histogram.merge(&record.hop_histogram);
        self.faults.merge(&record.faults);
        self.energy.merge(&record.energy);
        for activity in &record.cores {
            let idx = activity.core as usize;
            if idx < self.core_spikes.len() {
                self.core_spikes[idx] += activity.spikes as u64;
                self.core_synaptic_events[idx] += activity.synaptic_events;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CoreActivity;

    fn record(tick: u64) -> TickRecord {
        let mut hop_histogram = Histogram::default();
        hop_histogram.record(2);
        TickRecord {
            tick,
            cores_evaluated: 2,
            cores_skipped: 2,
            spikes: 3,
            outputs: 1,
            deliveries: 2,
            hops: 4,
            hop_histogram,
            energy: EventCensus {
                ticks: 1,
                cores: 4,
                spikes: 3,
                hops: 4,
                ..EventCensus::default()
            },
            cores: vec![
                CoreActivity {
                    core: 1,
                    spikes: 2,
                    axon_events: 1,
                    synaptic_events: 5,
                    pending_events: 0,
                },
                CoreActivity {
                    core: 3,
                    spikes: 1,
                    axon_events: 1,
                    synaptic_events: 2,
                    pending_events: 1,
                },
            ],
            ..TickRecord::default()
        }
    }

    #[test]
    fn summary_accumulates_and_heatmaps() {
        let mut s = RunSummary::new(4);
        s.on_tick(&record(0));
        s.on_tick(&record(1));
        assert_eq!(s.ticks, 2);
        assert_eq!(s.spikes, 6);
        assert_eq!(s.quiescence_rate(), 0.5);
        assert_eq!(s.core_spikes, vec![0, 4, 0, 2]);
        assert_eq!(s.core_synaptic_events, vec![0, 10, 0, 4]);
        assert_eq!(s.energy.hops, 8);
        let map = RunSummary::heatmap(&s.core_spikes, 2, 2).expect("4 cores reshape as 2x2");
        assert_eq!(map, vec![vec![0, 4], vec![0, 2]]);
        assert!(RunSummary::heatmap(&s.core_spikes, 3, 2).is_none());
    }

    #[test]
    fn table_renders_key_lines() {
        let mut s = RunSummary::new(4);
        s.on_tick(&record(0));
        let table = s.render_table(&EnergyModel::default());
        assert!(table.contains("ticks"));
        assert!(table.contains("50.0% quiescent"));
        assert!(table.contains("GSOPS/W"));
        assert!(table.contains("hop histogram"));
        assert!(!table.contains("resumed from tick"));
    }

    #[test]
    fn table_labels_resumed_runs() {
        let mut s = RunSummary::new(4);
        s.on_tick(&record(0));
        s.resumed_from_tick = Some(173);
        let table = s.render_table(&EnergyModel::default());
        assert!(table.contains("resumed from tick"));
        assert!(table.contains("173"));
    }

    #[test]
    fn heatmap_renders_log_buckets() {
        let ascii = render_heatmap(&[vec![0, 5, 42, 1000]]);
        assert_eq!(ascii.trim(), ". 5 x X");
    }

    #[test]
    fn zero_run_rates_are_zero() {
        let s = RunSummary::new(0);
        assert_eq!(s.quiescence_rate(), 0.0);
        assert_eq!(s.spikes_per_tick(), 0.0);
        assert_eq!(s.mean_hops(), 0.0);
    }
}
