//! The probe trait and the ring-buffered collection sink.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::record::TickRecord;
use crate::report::RunSummary;

/// What the chip's instrumentation layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Ring capacity in ticks: the log keeps the most recent `capacity`
    /// records and evicts the oldest beyond that (evictions are counted in
    /// [`TelemetryLog::evicted`]). `None` keeps every record — fine for
    /// tests and short runs, unbounded memory on soak runs.
    pub capacity: Option<usize>,
    /// Record per-core [`crate::CoreActivity`] detail for every evaluated
    /// core. Costs one small struct per evaluated core per tick; the
    /// run-level per-core heatmaps in [`RunSummary`] need it.
    pub core_detail: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            capacity: Some(4096),
            core_detail: true,
        }
    }
}

impl TelemetryConfig {
    /// A config that keeps every record (unbounded ring) with core detail.
    pub fn unbounded() -> TelemetryConfig {
        TelemetryConfig {
            capacity: None,
            core_detail: true,
        }
    }

    /// A config that keeps run-level counters only: bounded ring, no
    /// per-core detail — the cheapest enabled mode.
    pub fn counters_only(capacity: usize) -> TelemetryConfig {
        TelemetryConfig {
            capacity: Some(capacity),
            core_detail: false,
        }
    }
}

/// A consumer of the per-tick record stream.
///
/// Implementors receive records in tick order. The chip records into a
/// [`TelemetryLog`]; probes are driven from it afterwards (or fed records
/// live by custom harnesses). [`RunSummary`] and the exporters implement
/// this trait.
pub trait Probe {
    /// Observes one tick's record.
    fn on_tick(&mut self, record: &TickRecord);

    /// Called once after the last record of a replay (flush point for
    /// buffered sinks). Default: nothing.
    fn on_finish(&mut self) {}
}

/// The ring-buffered telemetry sink the chip records into.
///
/// Holds the last [`TelemetryConfig::capacity`] records and a cumulative
/// [`RunSummary`] fed by *every* record (so run-level aggregates survive
/// ring eviction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryLog {
    config: TelemetryConfig,
    records: VecDeque<TickRecord>,
    evicted: u64,
    summary: RunSummary,
}

impl TelemetryLog {
    /// An empty log for a chip with `cores` cores.
    pub fn new(config: TelemetryConfig, cores: usize) -> TelemetryLog {
        TelemetryLog {
            config,
            records: VecDeque::new(),
            evicted: 0,
            summary: RunSummary::new(cores),
        }
    }

    /// The configuration the log was created with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Reassembles a log from snapshot parts: the original configuration,
    /// the eviction count, and the cumulative summary (which carries the
    /// [`RunSummary::resumed_from_tick`] marker on restored runs). The
    /// record ring restarts empty — per-tick records are deliberately not
    /// checkpointed, so a resumed log cannot double-count: the summary
    /// continues from its saved aggregates and only genuinely new ticks are
    /// pushed on top.
    pub fn from_parts(config: TelemetryConfig, evicted: u64, summary: RunSummary) -> TelemetryLog {
        TelemetryLog {
            config,
            records: VecDeque::new(),
            evicted,
            summary,
        }
    }

    /// Appends one tick's record, evicting the oldest if the ring is full.
    pub fn push(&mut self, record: TickRecord) {
        self.summary.on_tick(&record);
        if let Some(capacity) = self.config.capacity {
            if capacity == 0 {
                self.evicted += 1;
                return;
            }
            while self.records.len() >= capacity {
                self.records.pop_front();
                self.evicted += 1;
            }
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TickRecord> {
        self.records.iter()
    }

    /// The most recent retained record, or `None` while the ring is empty.
    /// O(1); live consumers of the stream (e.g. a runtime health monitor)
    /// read each tick's record here right after the tick completes.
    pub fn latest(&self) -> Option<&TickRecord> {
        self.records.back()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted from the ring so far (0 until the ring wraps).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The cumulative run summary over *all* records ever pushed,
    /// including evicted ones.
    pub fn summary(&self) -> &RunSummary {
        &self.summary
    }

    /// Drives a probe over every retained record, oldest first, then calls
    /// [`Probe::on_finish`].
    pub fn replay<P: Probe>(&self, probe: &mut P) {
        for record in &self.records {
            probe.on_tick(record);
        }
        probe.on_finish();
    }

    /// Clears records, eviction count and the summary; keeps the config.
    pub fn clear(&mut self) {
        let cores = self.summary.core_spikes.len();
        self.records.clear();
        self.evicted = 0;
        self.summary = RunSummary::new(cores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tick: u64, spikes: u64) -> TickRecord {
        TickRecord {
            tick,
            spikes,
            cores_evaluated: 1,
            ..TickRecord::default()
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut log = TelemetryLog::new(
            TelemetryConfig {
                capacity: Some(3),
                core_detail: false,
            },
            4,
        );
        for t in 0..5 {
            log.push(record(t, t));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let ticks: Vec<u64> = log.records().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
        // The summary still covers all five records.
        assert_eq!(log.summary().ticks, 5);
        assert_eq!(log.summary().spikes, 10); // 0+1+2+3+4
    }

    #[test]
    fn latest_tracks_the_newest_record() {
        let mut log = TelemetryLog::new(TelemetryConfig::counters_only(2), 1);
        assert!(log.latest().is_none());
        for t in 0..4 {
            log.push(record(t, t));
            assert_eq!(log.latest().map(|r| r.tick), Some(t));
        }
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut log = TelemetryLog::new(TelemetryConfig::unbounded(), 1);
        for t in 0..100 {
            log.push(record(t, 1));
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.evicted(), 0);
    }

    #[test]
    fn zero_capacity_retains_nothing_but_summarises() {
        let mut log = TelemetryLog::new(
            TelemetryConfig {
                capacity: Some(0),
                core_detail: false,
            },
            1,
        );
        log.push(record(0, 7));
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 1);
        assert_eq!(log.summary().spikes, 7);
    }

    #[test]
    fn clear_resets_but_keeps_config_and_core_count() {
        let mut log = TelemetryLog::new(TelemetryConfig::default(), 9);
        log.push(record(0, 1));
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 0);
        assert_eq!(log.summary().ticks, 0);
        assert_eq!(log.summary().core_spikes.len(), 9);
    }

    #[test]
    fn replay_visits_in_order_and_finishes() {
        struct Collect {
            ticks: Vec<u64>,
            finished: bool,
        }
        impl Probe for Collect {
            fn on_tick(&mut self, r: &TickRecord) {
                self.ticks.push(r.tick);
            }
            fn on_finish(&mut self) {
                self.finished = true;
            }
        }
        let mut log = TelemetryLog::new(TelemetryConfig::unbounded(), 1);
        for t in 0..4 {
            log.push(record(t, 0));
        }
        let mut probe = Collect {
            ticks: Vec::new(),
            finished: false,
        };
        log.replay(&mut probe);
        assert_eq!(probe.ticks, vec![0, 1, 2, 3]);
        assert!(probe.finished);
    }
}
