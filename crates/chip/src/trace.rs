//! Trace infrastructure: output-spike recording and per-core activity maps.

use serde::{Deserialize, Serialize};

use crate::chip::{Chip, TickSummary};

/// Accumulates the chip's output events over a run.
///
/// Unbounded by default; [`OutputTrace::with_capacity`] bounds it to the
/// most recent `capacity` events, evicting the oldest (amortised O(1),
/// memory at most 2 × capacity). Evictions are counted in
/// [`OutputTrace::dropped`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OutputTrace {
    events: Vec<(u64, u32)>,
    /// Bound on retained events; `None` keeps everything.
    capacity: Option<usize>,
    /// Start of the live window in `events` (evicted prefix not yet
    /// compacted away).
    start: usize,
    dropped: u64,
}

/// Traces are equal when they would report the same thing: same capacity,
/// same eviction count, and the same retained events — regardless of how
/// the internal buffer happens to be compacted.
impl PartialEq for OutputTrace {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.dropped == other.dropped
            && self.events() == other.events()
    }
}

impl Eq for OutputTrace {}

impl OutputTrace {
    /// An empty, unbounded trace.
    pub fn new() -> OutputTrace {
        OutputTrace::default()
    }

    /// An empty trace retaining at most the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> OutputTrace {
        OutputTrace {
            capacity: Some(capacity),
            ..OutputTrace::default()
        }
    }

    /// The retention bound, or `None` for an unbounded trace.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Records one tick's outputs.
    pub fn record(&mut self, summary: &TickSummary) {
        for &port in &summary.outputs {
            self.push(summary.tick, port);
        }
    }

    fn push(&mut self, tick: u64, port: u32) {
        self.events.push((tick, port));
        if let Some(capacity) = self.capacity {
            if self.len() > capacity {
                self.start += 1;
                self.dropped += 1;
                // Compact once the dead prefix reaches the live window's
                // size: amortised O(1), memory stays ≤ 2 × capacity.
                if self.start > capacity {
                    self.events.drain(..self.start);
                    self.start = 0;
                }
            }
        }
    }

    /// The retained `(tick, port)` events in emission order (the oldest may
    /// have been evicted on a bounded trace — see [`OutputTrace::truncated`]).
    pub fn events(&self) -> &[(u64, u32)] {
        &self.events[self.start..]
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len() - self.start
    }

    /// Whether the trace retains no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from a bounded trace so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True when the trace no longer holds the run's full output history.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Retained events on one port, as spike ticks.
    pub fn port_ticks(&self, port: u32) -> Vec<u64> {
        self.events()
            .iter()
            .filter(|&&(_, p)| p == port)
            .map(|&(t, _)| t)
            .collect()
    }

    /// Converts the retained events to a dense raster of `ticks × ports`
    /// booleans.
    pub fn to_raster(&self, ticks: usize, ports: usize) -> Vec<Vec<bool>> {
        let mut raster = vec![vec![false; ports]; ticks];
        for &(t, p) in self.events() {
            if (t as usize) < ticks && (p as usize) < ports {
                raster[t as usize][p as usize] = true;
            }
        }
        raster
    }
}

/// Per-core cumulative spike counts, row-major over the grid — the
/// utilisation map of the F7-style reports.
pub fn activity_map(chip: &Chip) -> Vec<Vec<u64>> {
    let config = chip.config();
    (0..config.height)
        .map(|y| {
            (0..config.width)
                .map(|x| chip.core(x, y).map_or(0, |c| c.stats().spikes))
                .collect()
        })
        .collect()
}

/// Renders an activity map as compact ASCII (log-scale digits, `.` = 0).
pub fn render_activity(map: &[Vec<u64>]) -> String {
    let mut out = String::new();
    for row in map {
        for &count in row {
            let ch = match count {
                0 => '.',
                1..=9 => char::from_digit(count as u32, 10).unwrap_or('?'),
                10..=99 => 'x',
                _ => 'X',
            };
            out.push(ch);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

/// A directed link between two adjacent cores, as `(from, to)` grid
/// coordinates.
pub type CoreLink = ((usize, usize), (usize, usize));

/// Static per-link wire loads of a configured chip under dimension-order
/// routing — the congestion analysis the placement stage optimises for.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkLoadReport {
    /// Wires crossing each directed link, keyed by `(from, to)` core pairs
    /// of adjacent cores, sorted for determinism.
    pub loads: Vec<(CoreLink, u64)>,
    /// Total wire-hops (Σ Manhattan distances).
    pub total_wire_hops: u64,
}

impl LinkLoadReport {
    /// Heaviest single-link load.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }

    /// Mean load over links that carry at least one wire.
    pub fn mean_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.total_wire_hops as f64 / self.loads.len() as f64
        }
    }

    /// Number of links carrying at least one wire.
    pub fn used_links(&self) -> usize {
        self.loads.len()
    }
}

/// Computes the static link loads: every neuron-to-axon wire is walked
/// along its X-then-Y dimension-order path and each traversed link's count
/// is incremented.
pub fn link_load(chip: &Chip) -> LinkLoadReport {
    use std::collections::BTreeMap;
    let config = chip.config();
    let mut loads: BTreeMap<CoreLink, u64> = BTreeMap::new();
    let mut total = 0u64;
    for y in 0..config.height {
        for x in 0..config.width {
            let Some(core) = chip.core(x, y) else {
                continue;
            };
            for n in 0..core.neurons() {
                if let brainsim_core::Destination::Axon(target) = core.destination(n) {
                    // Walk the DOR path.
                    let (mut cx, mut cy) = (x as i64, y as i64);
                    let tx = cx + target.offset.dx as i64;
                    let ty = cy + target.offset.dy as i64;
                    while cx != tx {
                        let nx = cx + (tx - cx).signum();
                        *loads
                            .entry(((cx as usize, cy as usize), (nx as usize, cy as usize)))
                            .or_insert(0) += 1;
                        total += 1;
                        cx = nx;
                    }
                    while cy != ty {
                        let ny = cy + (ty - cy).signum();
                        *loads
                            .entry(((cx as usize, cy as usize), (cx as usize, ny as usize)))
                            .or_insert(0) += 1;
                        total += 1;
                        cy = ny;
                    }
                }
            }
        }
    }
    LinkLoadReport {
        loads: loads.into_iter().collect(),
        total_wire_hops: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use crate::config::ChipConfig;
    use brainsim_core::{AxonType, Destination, NeuronConfig, Weight};

    fn tiny_chip() -> Chip {
        let mut b = ChipBuilder::new(ChipConfig {
            width: 2,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            ..ChipConfig::default()
        });
        let relay = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .unwrap();
        b.core_mut(0, 0)
            .neuron(0, relay.clone(), Destination::Output(3))
            .unwrap();
        b.core_mut(0, 0).synapse(0, 0, true).unwrap();
        b.core_mut(1, 0)
            .neuron(0, relay, Destination::Output(7))
            .unwrap();
        b.core_mut(1, 0).synapse(0, 0, true).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn trace_records_output_events() {
        let mut chip = tiny_chip();
        let mut trace = OutputTrace::new();
        chip.inject(0, 0, 0, 0).unwrap();
        chip.inject(1, 0, 0, 1).unwrap();
        for _ in 0..4 {
            let summary = chip.tick();
            trace.record(&summary);
        }
        assert_eq!(trace.events(), &[(0, 3), (1, 7)]);
        assert_eq!(trace.port_ticks(3), vec![0]);
        assert_eq!(trace.port_ticks(7), vec![1]);
        let raster = trace.to_raster(4, 8);
        assert!(raster[0][3] && raster[1][7]);
        assert_eq!(raster.iter().flatten().filter(|&&s| s).count(), 2);
    }

    fn summary(tick: u64, outputs: Vec<u32>) -> TickSummary {
        TickSummary {
            tick,
            spikes: outputs.len() as u64,
            outputs,
            faults: Default::default(),
            cores_evaluated: 1,
        }
    }

    #[test]
    fn bounded_trace_evicts_oldest_and_counts() {
        let mut trace = OutputTrace::with_capacity(3);
        for t in 0..10 {
            trace.record(&summary(t, vec![t as u32]));
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events(), &[(7, 7), (8, 8), (9, 9)]);
        assert_eq!(trace.dropped(), 7);
        assert!(trace.truncated());
        // Compaction bounds memory at 2 × capacity.
        assert!(trace.events.len() <= 6);
        // Port queries and rasters see only the retained window.
        assert_eq!(trace.port_ticks(2), Vec::<u64>::new());
        assert_eq!(trace.port_ticks(8), vec![8]);
        let raster = trace.to_raster(10, 10);
        assert_eq!(raster.iter().flatten().filter(|&&s| s).count(), 3);
    }

    #[test]
    fn unbounded_trace_never_truncates() {
        let mut trace = OutputTrace::new();
        for t in 0..100 {
            trace.record(&summary(t, vec![0]));
        }
        assert_eq!(trace.len(), 100);
        assert!(!trace.truncated());
        assert_eq!(trace.capacity(), None);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut trace = OutputTrace::with_capacity(0);
        trace.record(&summary(0, vec![1, 2]));
        assert!(trace.is_empty());
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn equality_compares_the_logical_window() {
        let mut a = OutputTrace::with_capacity(2);
        let mut b = OutputTrace::with_capacity(2);
        for t in 0..5 {
            a.record(&summary(t, vec![9]));
            b.record(&summary(t, vec![9]));
        }
        assert_eq!(a, b);
        b.record(&summary(5, vec![9]));
        assert_ne!(a, b);
    }

    #[test]
    fn activity_map_counts_core_spikes() {
        let mut chip = tiny_chip();
        chip.inject(0, 0, 0, 0).unwrap();
        chip.inject(0, 0, 0, 1).unwrap();
        chip.inject(1, 0, 0, 2).unwrap();
        for _ in 0..4 {
            chip.tick();
        }
        let map = activity_map(&chip);
        assert_eq!(map, vec![vec![2, 1]]);
        let ascii = render_activity(&map);
        assert!(ascii.contains('2') && ascii.contains('1'));
    }

    #[test]
    fn render_uses_log_buckets() {
        let ascii = render_activity(&[vec![0, 5, 42, 1000]]);
        assert_eq!(ascii.trim(), ". 5 x X");
    }

    #[test]
    fn link_load_walks_dor_paths() {
        use brainsim_core::{AxonTarget, CoreOffset};
        // 3×2 grid; one wire (0,0)→(2,1): DOR path E, E, N.
        let mut b = ChipBuilder::new(ChipConfig {
            width: 3,
            height: 2,
            core_axons: 2,
            core_neurons: 2,
            ..ChipConfig::default()
        });
        let relay = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .unwrap();
        b.core_mut(0, 0)
            .neuron(
                0,
                relay,
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(2, 1),
                    axon: 0,
                    delay: 1,
                }),
            )
            .unwrap();
        let chip = b.build().unwrap();
        let report = link_load(&chip);
        assert_eq!(report.total_wire_hops, 3);
        assert_eq!(report.used_links(), 3);
        assert_eq!(report.max_load(), 1);
        let links: Vec<_> = report.loads.iter().map(|&(l, _)| l).collect();
        assert!(links.contains(&((0, 0), (1, 0))));
        assert!(links.contains(&((1, 0), (2, 0))));
        assert!(links.contains(&((2, 0), (2, 1))));
    }

    #[test]
    fn link_load_accumulates_shared_links() {
        use brainsim_core::{AxonTarget, CoreOffset};
        // Two wires sharing the (0,0)→(1,0) link.
        let mut b = ChipBuilder::new(ChipConfig {
            width: 3,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            ..ChipConfig::default()
        });
        let relay = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .unwrap();
        for n in 0..2 {
            let reach = if n == 0 { 1 } else { 2 };
            b.core_mut(0, 0)
                .neuron(
                    n,
                    relay.clone(),
                    Destination::Axon(AxonTarget {
                        offset: CoreOffset::new(reach, 0),
                        axon: 0,
                        delay: 1,
                    }),
                )
                .unwrap();
        }
        let chip = b.build().unwrap();
        let report = link_load(&chip);
        assert_eq!(report.max_load(), 2); // both wires cross (0,0)→(1,0)
        assert_eq!(report.total_wire_hops, 3);
    }
}
