//! Trace infrastructure: output-spike recording and per-core activity maps.

use serde::{Deserialize, Serialize};

use crate::chip::{Chip, TickSummary};

/// Accumulates the chip's output events over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputTrace {
    events: Vec<(u64, u32)>,
}

impl OutputTrace {
    /// An empty trace.
    pub fn new() -> OutputTrace {
        OutputTrace::default()
    }

    /// Records one tick's outputs.
    pub fn record(&mut self, summary: &TickSummary) {
        for &port in &summary.outputs {
            self.events.push((summary.tick, port));
        }
    }

    /// All `(tick, port)` events in emission order.
    pub fn events(&self) -> &[(u64, u32)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events on one port, as spike ticks.
    pub fn port_ticks(&self, port: u32) -> Vec<u64> {
        self.events
            .iter()
            .filter(|&&(_, p)| p == port)
            .map(|&(t, _)| t)
            .collect()
    }

    /// Converts to a dense raster of `ticks × ports` booleans.
    pub fn to_raster(&self, ticks: usize, ports: usize) -> Vec<Vec<bool>> {
        let mut raster = vec![vec![false; ports]; ticks];
        for &(t, p) in &self.events {
            if (t as usize) < ticks && (p as usize) < ports {
                raster[t as usize][p as usize] = true;
            }
        }
        raster
    }
}

/// Per-core cumulative spike counts, row-major over the grid — the
/// utilisation map of the F7-style reports.
pub fn activity_map(chip: &Chip) -> Vec<Vec<u64>> {
    let config = chip.config();
    (0..config.height)
        .map(|y| {
            (0..config.width)
                .map(|x| chip.core(x, y).map_or(0, |c| c.stats().spikes))
                .collect()
        })
        .collect()
}

/// Renders an activity map as compact ASCII (log-scale digits, `.` = 0).
pub fn render_activity(map: &[Vec<u64>]) -> String {
    let mut out = String::new();
    for row in map {
        for &count in row {
            let ch = match count {
                0 => '.',
                1..=9 => char::from_digit(count as u32, 10).unwrap_or('?'),
                10..=99 => 'x',
                _ => 'X',
            };
            out.push(ch);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

/// A directed link between two adjacent cores, as `(from, to)` grid
/// coordinates.
pub type CoreLink = ((usize, usize), (usize, usize));

/// Static per-link wire loads of a configured chip under dimension-order
/// routing — the congestion analysis the placement stage optimises for.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkLoadReport {
    /// Wires crossing each directed link, keyed by `(from, to)` core pairs
    /// of adjacent cores, sorted for determinism.
    pub loads: Vec<(CoreLink, u64)>,
    /// Total wire-hops (Σ Manhattan distances).
    pub total_wire_hops: u64,
}

impl LinkLoadReport {
    /// Heaviest single-link load.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }

    /// Mean load over links that carry at least one wire.
    pub fn mean_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.total_wire_hops as f64 / self.loads.len() as f64
        }
    }

    /// Number of links carrying at least one wire.
    pub fn used_links(&self) -> usize {
        self.loads.len()
    }
}

/// Computes the static link loads: every neuron-to-axon wire is walked
/// along its X-then-Y dimension-order path and each traversed link's count
/// is incremented.
pub fn link_load(chip: &Chip) -> LinkLoadReport {
    use std::collections::BTreeMap;
    let config = chip.config();
    let mut loads: BTreeMap<CoreLink, u64> = BTreeMap::new();
    let mut total = 0u64;
    for y in 0..config.height {
        for x in 0..config.width {
            let Some(core) = chip.core(x, y) else {
                continue;
            };
            for n in 0..core.neurons() {
                if let brainsim_core::Destination::Axon(target) = core.destination(n) {
                    // Walk the DOR path.
                    let (mut cx, mut cy) = (x as i64, y as i64);
                    let tx = cx + target.offset.dx as i64;
                    let ty = cy + target.offset.dy as i64;
                    while cx != tx {
                        let nx = cx + (tx - cx).signum();
                        *loads
                            .entry(((cx as usize, cy as usize), (nx as usize, cy as usize)))
                            .or_insert(0) += 1;
                        total += 1;
                        cx = nx;
                    }
                    while cy != ty {
                        let ny = cy + (ty - cy).signum();
                        *loads
                            .entry(((cx as usize, cy as usize), (cx as usize, ny as usize)))
                            .or_insert(0) += 1;
                        total += 1;
                        cy = ny;
                    }
                }
            }
        }
    }
    LinkLoadReport {
        loads: loads.into_iter().collect(),
        total_wire_hops: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use crate::config::ChipConfig;
    use brainsim_core::{AxonType, Destination, NeuronConfig, Weight};

    fn tiny_chip() -> Chip {
        let mut b = ChipBuilder::new(ChipConfig {
            width: 2,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            ..ChipConfig::default()
        });
        let relay = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .unwrap();
        b.core_mut(0, 0)
            .neuron(0, relay.clone(), Destination::Output(3))
            .unwrap();
        b.core_mut(0, 0).synapse(0, 0, true).unwrap();
        b.core_mut(1, 0)
            .neuron(0, relay, Destination::Output(7))
            .unwrap();
        b.core_mut(1, 0).synapse(0, 0, true).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn trace_records_output_events() {
        let mut chip = tiny_chip();
        let mut trace = OutputTrace::new();
        chip.inject(0, 0, 0, 0).unwrap();
        chip.inject(1, 0, 0, 1).unwrap();
        for _ in 0..4 {
            let summary = chip.tick();
            trace.record(&summary);
        }
        assert_eq!(trace.events(), &[(0, 3), (1, 7)]);
        assert_eq!(trace.port_ticks(3), vec![0]);
        assert_eq!(trace.port_ticks(7), vec![1]);
        let raster = trace.to_raster(4, 8);
        assert!(raster[0][3] && raster[1][7]);
        assert_eq!(raster.iter().flatten().filter(|&&s| s).count(), 2);
    }

    #[test]
    fn activity_map_counts_core_spikes() {
        let mut chip = tiny_chip();
        chip.inject(0, 0, 0, 0).unwrap();
        chip.inject(0, 0, 0, 1).unwrap();
        chip.inject(1, 0, 0, 2).unwrap();
        for _ in 0..4 {
            chip.tick();
        }
        let map = activity_map(&chip);
        assert_eq!(map, vec![vec![2, 1]]);
        let ascii = render_activity(&map);
        assert!(ascii.contains('2') && ascii.contains('1'));
    }

    #[test]
    fn render_uses_log_buckets() {
        let ascii = render_activity(&[vec![0, 5, 42, 1000]]);
        assert_eq!(ascii.trim(), ". 5 x X");
    }

    #[test]
    fn link_load_walks_dor_paths() {
        use brainsim_core::{AxonTarget, CoreOffset};
        // 3×2 grid; one wire (0,0)→(2,1): DOR path E, E, N.
        let mut b = ChipBuilder::new(ChipConfig {
            width: 3,
            height: 2,
            core_axons: 2,
            core_neurons: 2,
            ..ChipConfig::default()
        });
        let relay = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .unwrap();
        b.core_mut(0, 0)
            .neuron(
                0,
                relay,
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(2, 1),
                    axon: 0,
                    delay: 1,
                }),
            )
            .unwrap();
        let chip = b.build().unwrap();
        let report = link_load(&chip);
        assert_eq!(report.total_wire_hops, 3);
        assert_eq!(report.used_links(), 3);
        assert_eq!(report.max_load(), 1);
        let links: Vec<_> = report.loads.iter().map(|&(l, _)| l).collect();
        assert!(links.contains(&((0, 0), (1, 0))));
        assert!(links.contains(&((1, 0), (2, 0))));
        assert!(links.contains(&((2, 0), (2, 1))));
    }

    #[test]
    fn link_load_accumulates_shared_links() {
        use brainsim_core::{AxonTarget, CoreOffset};
        // Two wires sharing the (0,0)→(1,0) link.
        let mut b = ChipBuilder::new(ChipConfig {
            width: 3,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            ..ChipConfig::default()
        });
        let relay = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .unwrap();
        for n in 0..2 {
            let reach = if n == 0 { 1 } else { 2 };
            b.core_mut(0, 0)
                .neuron(
                    n,
                    relay.clone(),
                    Destination::Axon(AxonTarget {
                        offset: CoreOffset::new(reach, 0),
                        axon: 0,
                        delay: 1,
                    }),
                )
                .unwrap();
        }
        let chip = b.build().unwrap();
        let report = link_load(&chip);
        assert_eq!(report.max_load(), 2); // both wires cross (0,0)→(1,0)
        assert_eq!(report.total_wire_hops, 3);
    }
}
