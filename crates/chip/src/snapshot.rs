//! The chip-level snapshot: assembly of the `brainsim-snapshot` container
//! from complete chip state, and the wire codec for the chip's own
//! configuration section.
//!
//! A [`Snapshot`] is the typed, in-memory image [`crate::Chip::checkpoint`]
//! produces and [`crate::Chip::restore`] consumes. [`Snapshot::to_bytes`] /
//! [`Snapshot::from_bytes`] map it onto the versioned, CRC-checksummed
//! section container; [`Snapshot::save`] / [`Snapshot::load`] add
//! crash-consistent file IO (write-temp → fsync → rename).
//!
//! Section layout (tags from [`SectionId`]):
//!
//! | section     | contents                                               |
//! |-------------|--------------------------------------------------------|
//! | `config`    | [`ChipConfig`]: grid, core dims, seed, semantics       |
//! | `chip`      | tick cursor, hop/crossing/output counters, fault stats |
//! | `cores`     | one [`brainsim_core::CoreState`] per core, row-major   |
//! | `faults`    | the retained [`FaultPlan`] (optional)                  |
//! | `telemetry` | [`TelemetrySnapshot`]: config, evictions, run summary  |
//! | `noc`       | standalone [`brainsim_noc::NocState`] (optional)       |
//! | `app`       | opaque harness payload, e.g. a running checksum        |

use std::path::Path;

use brainsim_core::CoreState;
use brainsim_faults::{FaultPlan, FaultStats};
use brainsim_noc::NocState;
use brainsim_snapshot::codec;
use brainsim_snapshot::wire::{Reader, WireError, Writer};
use brainsim_snapshot::{
    decode_container, encode_container, load_verified, save_atomic, RestoreError, SectionId,
    SnapshotIoError,
};
use brainsim_telemetry::{RunSummary, TelemetryConfig};

use crate::config::{ChipConfig, CoreScheduling, TickSemantics, TileConfig};

/// The telemetry image a snapshot carries: enough to resume collection
/// without double-counting. The record ring is deliberately *not*
/// checkpointed — the cumulative [`RunSummary`] (which covers every record
/// ever pushed) travels instead, and the restored log restarts with an
/// empty ring, so pre-checkpoint ticks can never be folded in twice.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The collection configuration in effect.
    pub config: TelemetryConfig,
    /// Records evicted from the ring before the checkpoint.
    pub evicted: u64,
    /// The cumulative run summary at the checkpoint.
    pub summary: RunSummary,
}

/// A complete, typed image of chip state at a tick boundary.
///
/// Produced by [`crate::Chip::checkpoint`]; consumed by
/// [`crate::Chip::restore`]. Restoring and continuing yields the
/// bit-identical event stream an uninterrupted run produces, at any thread
/// count, under either scheduler, on the SWAR or scalar kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The chip configuration (restored verbatim, including thread count
    /// and scheduling mode).
    pub config: ChipConfig,
    /// The next tick to evaluate.
    pub now: u64,
    /// Total mesh hops charged so far.
    pub hops: u64,
    /// Total tile-boundary link crossings so far.
    pub link_crossings: u64,
    /// Total external output events so far.
    pub outputs_total: u64,
    /// Chip-level (routing) fault accounting.
    pub fault_stats: FaultStats,
    /// Per-core state images in row-major order.
    pub cores: Vec<CoreState>,
    /// The fault plan applied to the chip, if any. Restore re-arms the
    /// link-fault injector from it; structural faults are *not* re-applied
    /// (the burned crossbars and core fault images already carry them).
    pub plan: Option<FaultPlan>,
    /// Telemetry image, when telemetry was enabled.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Standalone mesh-NoC state, for cycle-accurate harnesses that
    /// checkpoint a [`brainsim_noc::MeshNoc`] alongside the chip.
    pub noc: Option<NocState>,
    /// Opaque application payload (e.g. a harness's running output
    /// checksum); empty when unused.
    pub app: Vec<u8>,
}

fn write_chip_config(w: &mut Writer, c: &ChipConfig) {
    w.usize(c.width);
    w.usize(c.height);
    w.usize(c.core_axons);
    w.usize(c.core_neurons);
    w.u32(c.seed);
    w.u8(match c.semantics {
        TickSemantics::Deterministic => 0,
        TickSemantics::Relaxed => 1,
    });
    w.usize(c.threads);
    w.u8(match c.scheduling {
        CoreScheduling::Active => 0,
        CoreScheduling::Sweep => 1,
    });
    match c.tile {
        None => w.bool(false),
        Some(t) => {
            w.bool(true);
            w.usize(t.width);
            w.usize(t.height);
            w.u8(t.link_latency);
        }
    }
}

fn read_chip_config(r: &mut Reader) -> Result<ChipConfig, WireError> {
    Ok(ChipConfig {
        width: r.usize()?,
        height: r.usize()?,
        core_axons: r.usize()?,
        core_neurons: r.usize()?,
        seed: r.u32()?,
        semantics: match r.u8()? {
            0 => TickSemantics::Deterministic,
            1 => TickSemantics::Relaxed,
            _ => return Err(WireError::Malformed("semantics tag")),
        },
        threads: r.usize()?,
        scheduling: match r.u8()? {
            0 => CoreScheduling::Active,
            1 => CoreScheduling::Sweep,
            _ => return Err(WireError::Malformed("scheduling tag")),
        },
        tile: if r.bool()? {
            Some(TileConfig {
                width: r.usize()?,
                height: r.usize()?,
                link_latency: r.u8()?,
            })
        } else {
            None
        },
    })
}

/// Runs a section decoder over `payload`, requiring full consumption and
/// attributing any wire error to `section`.
fn decode_section<T>(
    section: SectionId,
    payload: &[u8],
    f: impl FnOnce(&mut Reader) -> Result<T, WireError>,
) -> Result<T, RestoreError> {
    let mut r = Reader::new(payload);
    let value = f(&mut r).map_err(|e| RestoreError::from_wire(section, e))?;
    r.finish()
        .map_err(|e| RestoreError::from_wire(section, e))?;
    Ok(value)
}

impl Snapshot {
    /// Encodes the snapshot into the versioned, checksummed container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut sections: Vec<(SectionId, Vec<u8>)> = Vec::with_capacity(7);

        let mut w = Writer::new();
        write_chip_config(&mut w, &self.config);
        sections.push((SectionId::Config, w.into_bytes()));

        let mut w = Writer::new();
        w.u64(self.now);
        w.u64(self.hops);
        w.u64(self.link_crossings);
        w.u64(self.outputs_total);
        codec::write_fault_stats(&mut w, &self.fault_stats);
        sections.push((SectionId::Chip, w.into_bytes()));

        let mut w = Writer::new();
        w.usize(self.cores.len());
        for core in &self.cores {
            codec::write_core_state(&mut w, core);
        }
        sections.push((SectionId::Cores, w.into_bytes()));

        if let Some(plan) = &self.plan {
            let mut w = Writer::new();
            codec::write_fault_plan(&mut w, plan);
            sections.push((SectionId::Faults, w.into_bytes()));
        }
        if let Some(t) = &self.telemetry {
            let mut w = Writer::new();
            codec::write_telemetry_config(&mut w, &t.config);
            w.u64(t.evicted);
            codec::write_run_summary(&mut w, &t.summary);
            sections.push((SectionId::Telemetry, w.into_bytes()));
        }
        if let Some(noc) = &self.noc {
            let mut w = Writer::new();
            codec::write_noc_state(&mut w, noc);
            sections.push((SectionId::Noc, w.into_bytes()));
        }
        if !self.app.is_empty() {
            sections.push((SectionId::App, self.app.clone()));
        }
        encode_container(&sections)
    }

    /// Decodes a snapshot from container bytes. Total over arbitrary
    /// input: every malformation returns a typed [`RestoreError`]; no byte
    /// sequence panics.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] — bad magic, version mismatch, truncation, section
    /// CRC failure, missing/duplicate/unknown sections, or a field that
    /// fails its own validation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, RestoreError> {
        let sections = decode_container(bytes)?;
        let find = |id: SectionId| sections.iter().find(|(s, _)| *s == id).map(|(_, p)| *p);
        let require = |id: SectionId| find(id).ok_or(RestoreError::MissingSection { section: id });

        let config = decode_section(SectionId::Config, require(SectionId::Config)?, |r| {
            read_chip_config(r)
        })?;
        let (now, hops, link_crossings, outputs_total, fault_stats) =
            decode_section(SectionId::Chip, require(SectionId::Chip)?, |r| {
                Ok((
                    r.u64()?,
                    r.u64()?,
                    r.u64()?,
                    r.u64()?,
                    codec::read_fault_stats(r)?,
                ))
            })?;
        let cores = decode_section(SectionId::Cores, require(SectionId::Cores)?, |r| {
            // A serialised core is far larger than 16 bytes; the bound
            // keeps a corrupted count from over-allocating.
            let count = r.len(16)?;
            let mut cores = Vec::with_capacity(count);
            for _ in 0..count {
                cores.push(codec::read_core_state(r)?);
            }
            Ok(cores)
        })?;
        let plan = find(SectionId::Faults)
            .map(|p| decode_section(SectionId::Faults, p, codec::read_fault_plan))
            .transpose()?;
        let telemetry = find(SectionId::Telemetry)
            .map(|p| {
                decode_section(SectionId::Telemetry, p, |r| {
                    Ok(TelemetrySnapshot {
                        config: codec::read_telemetry_config(r)?,
                        evicted: r.u64()?,
                        summary: codec::read_run_summary(r)?,
                    })
                })
            })
            .transpose()?;
        let noc = find(SectionId::Noc)
            .map(|p| decode_section(SectionId::Noc, p, codec::read_noc_state))
            .transpose()?;
        let app = find(SectionId::App).map(<[u8]>::to_vec).unwrap_or_default();

        Ok(Snapshot {
            config,
            now,
            hops,
            link_crossings,
            outputs_total,
            fault_stats,
            cores,
            plan,
            telemetry,
            noc,
            app,
        })
    }

    /// Writes the snapshot to `path` crash-consistently (write-temp →
    /// fsync → rename): a crash at any instant leaves `path` either absent
    /// or holding its complete previous content.
    ///
    /// # Errors
    ///
    /// [`SnapshotIoError::Io`] when the filesystem fails.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotIoError> {
        save_atomic(path, &self.to_bytes()).map_err(SnapshotIoError::Io)
    }

    /// Reads and decodes the snapshot at `path`, verifying every section
    /// CRC along the way.
    ///
    /// # Errors
    ///
    /// [`SnapshotIoError::Io`] when the file cannot be read,
    /// [`SnapshotIoError::Restore`] when its bytes are not a valid
    /// snapshot.
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotIoError> {
        let bytes = load_verified(path)?;
        Ok(Snapshot::from_bytes(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            config: ChipConfig {
                width: 2,
                height: 1,
                core_axons: 4,
                core_neurons: 4,
                ..ChipConfig::default()
            },
            now: 7,
            hops: 11,
            link_crossings: 0,
            outputs_total: 3,
            fault_stats: FaultStats::default(),
            cores: Vec::new(),
            plan: Some(FaultPlan::new(9).with_link_drop(0.25)),
            telemetry: None,
            noc: None,
            app: b"checksum".to_vec(),
        }
    }

    #[test]
    fn container_round_trip_without_cores() {
        // Core-image round-trips are covered in brainsim-snapshot's codec
        // tests and the chip-level checkpoint tests; this exercises the
        // section assembly itself.
        let snap = sample_snapshot();
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("decode");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn missing_required_section_is_typed() {
        // An App-only container parses at the container level but is not a
        // chip snapshot.
        let bytes = encode_container(&[(SectionId::App, vec![1, 2, 3])]);
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(RestoreError::MissingSection {
                section: SectionId::Config
            })
        );
    }

    #[test]
    fn trailing_garbage_inside_a_section_is_typed() {
        let mut snap = sample_snapshot();
        snap.app = Vec::new();
        let mut bytes = snap.to_bytes();
        // Grow the config section by one byte and fix up its length and
        // CRC so only the semantic layer can catch it.
        let config_payload_at = 12 + 16;
        let mut payload = {
            let mut w = Writer::new();
            write_chip_config(&mut w, &snap.config);
            w.into_bytes()
        };
        payload.push(0xEE);
        let mut rebuilt = bytes[..12].to_vec();
        rebuilt.extend_from_slice(&SectionId::Config.tag().to_le_bytes());
        rebuilt.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rebuilt.extend_from_slice(&brainsim_snapshot::crc32(&payload).to_le_bytes());
        rebuilt.extend_from_slice(&payload);
        rebuilt.extend_from_slice(&bytes[config_payload_at + payload.len() - 1..]);
        bytes = rebuilt;
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(RestoreError::Malformed {
                section: SectionId::Config,
                what: "trailing bytes"
            })
        );
    }
}
