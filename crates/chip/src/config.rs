//! Chip-level configuration.

use serde::{Deserialize, Serialize};

/// Multi-chip tiling: the core grid is divided into tiles of
/// `width × height` cores, each tile modelling one physical chip. Packets
/// crossing a tile boundary traverse the serialised peripheral link:
/// each boundary crossing adds `link_latency` ticks of delivery delay and
/// one link-crossing event to the energy census.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConfig {
    /// Tile width in cores.
    pub width: usize,
    /// Tile height in cores.
    pub height: usize,
    /// Extra delivery latency per boundary crossing, ticks.
    pub link_latency: u8,
}

/// Delivery-timing contract for inter-core spikes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TickSemantics {
    /// The architectural contract: a spike from tick `t` with axonal delay
    /// `d ≥ 1` is integrated at tick `t + d`. Core evaluation order within a
    /// tick is unobservable; simulation is deterministic and parallelisable.
    #[default]
    Deterministic,
    /// Ablation: effective delay `d − 1`, i.e. a delay-1 spike tries to land
    /// in the *same* tick. Whether it arrives before or after its target
    /// evaluates depends on the sweep order, so results become
    /// order-dependent — the hazard the tick barrier exists to prevent.
    ///
    /// **Serial-only contract:** because correctness of the ablation *is*
    /// the sweep order, a relaxed chip always evaluates on a single thread.
    /// [`crate::ChipBuilder::build`] rejects `threads > 1` under this
    /// semantics with [`crate::ChipBuildError::RelaxedParallel`] rather than
    /// silently ignoring the setting.
    Relaxed,
}

/// How the chip selects which cores to evaluate each tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreScheduling {
    /// Active-core scheduling (the default): cores that are provably
    /// quiescent — no pending scheduler events and a cached zero-input
    /// fixed point ([`brainsim_core::NeurosynapticCore::is_quiescent`]) —
    /// are skipped in O(1) per tick instead of paying a full evaluation
    /// sweep. Results (rasters, outputs, statistics, LFSR streams) are
    /// bit-identical to [`CoreScheduling::Sweep`] by construction; the
    /// differential test suite proves it.
    #[default]
    Active,
    /// Reference behaviour: evaluate every core every tick, as the seed
    /// implementation did. Kept as the obviously-correct baseline for
    /// equivalence testing and as the benchmark's serial reference.
    Sweep,
}

/// Static parameters of a chip instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Cores per row.
    pub width: usize,
    /// Cores per column.
    pub height: usize,
    /// Axons per core (256 on the silicon).
    pub core_axons: usize,
    /// Neurons per core (256 on the silicon).
    pub core_neurons: usize,
    /// Base LFSR seed; core `(x, y)` is seeded with a value derived from it.
    pub seed: u32,
    /// Delivery-timing contract.
    pub semantics: TickSemantics,
    /// Number of worker threads for the tick pipeline (1 = sequential).
    /// Threads parallelise both Phase A (core evaluation) and Phase B
    /// (spike routing) of the deterministic tick.
    /// Only [`TickSemantics::Deterministic`] may use more than one thread;
    /// the builder rejects a relaxed-parallel combination.
    pub threads: usize,
    /// Which cores are evaluated each tick (quiescence skipping vs full
    /// sweep). Either choice is bit-identical; `Active` is faster on any
    /// workload with idle cores.
    pub scheduling: CoreScheduling,
    /// Multi-chip tiling, if the grid spans several physical chips.
    pub tile: Option<TileConfig>,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            width: 4,
            height: 4,
            core_axons: 256,
            core_neurons: 256,
            seed: 0x5EED_C0DE,
            semantics: TickSemantics::Deterministic,
            threads: 1,
            scheduling: CoreScheduling::default(),
            tile: None,
        }
    }
}

impl ChipConfig {
    /// The tile index of core `(x, y)` (both zero when untiled).
    pub fn tile_of(&self, x: usize, y: usize) -> (usize, usize) {
        match self.tile {
            Some(t) => (x / t.width.max(1), y / t.height.max(1)),
            None => (0, 0),
        }
    }

    /// Number of tile-boundary crossings between two cores under
    /// dimension-order routing (0 when untiled or same tile).
    pub fn crossings(&self, from: (usize, usize), to: (usize, usize)) -> u32 {
        let a = self.tile_of(from.0, from.1);
        let b = self.tile_of(to.0, to.1);
        (a.0.abs_diff(b.0) + a.1.abs_diff(b.1)) as u32
    }
}

impl ChipConfig {
    /// Total number of cores.
    pub fn cores(&self) -> usize {
        self.width * self.height
    }

    /// Total number of neurons.
    pub fn neurons(&self) -> usize {
        self.cores() * self.core_neurons
    }

    /// Total number of programmable synapses (crossbar bits).
    pub fn synapses(&self) -> u64 {
        self.cores() as u64 * self.core_axons as u64 * self.core_neurons as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_deterministic_sequential() {
        let c = ChipConfig::default();
        assert_eq!(c.semantics, TickSemantics::Deterministic);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn totals() {
        let c = ChipConfig {
            width: 64,
            height: 64,
            core_axons: 256,
            core_neurons: 256,
            ..ChipConfig::default()
        };
        assert_eq!(c.cores(), 4096);
        assert_eq!(c.neurons(), 1_048_576);
        assert_eq!(c.synapses(), 268_435_456);
    }
}
