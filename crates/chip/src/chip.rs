//! The chip runtime: the deterministic tick pipeline (evaluate → route →
//! deliver), active-core scheduling, and event accounting.
//!
//! ## Execution model
//!
//! A deterministic tick runs in two phases:
//!
//! * **Phase A — evaluation.** Every *active* core is evaluated at tick `t`.
//!   Under [`CoreScheduling::Active`] a core whose scheduler is empty and
//!   whose neurons sit at a zero-input fixed point is provably a no-op and
//!   is skipped in O(1) (its statistics advance as if it had been
//!   evaluated). Active cores are partitioned into contiguous shards and
//!   evaluated on scoped threads; each worker owns a disjoint `&mut` range
//!   of the core array, so no locking is needed.
//! * **Phase B — routing.** The fired list — `(core, neuron)` pairs in
//!   canonical row-major order — is partitioned into contiguous shards that
//!   are routed concurrently into private [`RouteBatch`]es. Fault decisions
//!   key on the `(tick, core, neuron)` launch coordinate, which is unique
//!   and order-independent, so concurrent shards reach identical verdicts.
//!   Batches merge in shard order: outputs concatenate (reproducing the
//!   serial order exactly) and counters sum (order-independent). Deliveries
//!   then apply serially; scheduling an axon event is an idempotent bitmap
//!   OR, so their order is immaterial.
//!
//! Every cross-thread combination step is either order-preserving
//! (concatenation of ordered shards) or commutative (counter sums), which
//! is why rasters, outputs, and fault statistics are bit-identical across
//! thread counts and scheduling modes — the property the differential suite
//! in `tests/parallel_equivalence.rs` checks.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use brainsim_core::{CoreStats, Destination, NeurosynapticCore};
use brainsim_energy::EventCensus;
use brainsim_faults::{FaultInjector, FaultPlan, FaultStats, LinkFault};
use brainsim_noc::route_hops;
use brainsim_telemetry::{
    CoreActivity, Histogram, SchedulerMeta, TelemetryConfig, TelemetryLog, TickRecord,
};

use crate::builder::validate_wiring;
use crate::config::{ChipConfig, CoreScheduling, TickSemantics};
use crate::snapshot::{Snapshot, TelemetrySnapshot};
use brainsim_snapshot::RestoreError;

/// What happened during one chip tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickSummary {
    /// The tick that was evaluated.
    pub tick: u64,
    /// Total spikes produced by all cores.
    pub spikes: u64,
    /// External output events (port ids), in deterministic core/neuron order.
    pub outputs: Vec<u32>,
    /// Link faults suffered by this tick's spike deliveries (all zero
    /// without a fault plan).
    pub faults: FaultStats,
    /// Cores actually evaluated this tick; the rest were provably quiescent
    /// and skipped by active-core scheduling. Always the full core count
    /// under [`CoreScheduling::Sweep`]; invariant across thread counts.
    pub cores_evaluated: u64,
}

/// Fatal error from [`Chip::try_tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickError {
    /// A core panicked while being evaluated (a violated internal
    /// invariant, e.g. a core whose clock was driven out of step with the
    /// chip). The panic is caught on the worker thread and surfaced after
    /// every worker has joined, so a poisoned core can neither hang nor
    /// tear down the evaluation scope. The tick did not complete: cores may
    /// disagree on the current tick, and the chip must be rebuilt before
    /// further use.
    CorePanicked {
        /// Flat (row-major) index of the failing core.
        core: usize,
        /// The tick being evaluated.
        tick: u64,
        /// Stringified panic payload.
        message: String,
    },
}

impl fmt::Display for TickError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TickError::CorePanicked {
                core,
                tick,
                message,
            } => {
                write!(f, "core {core} panicked during tick {tick}: {message}")
            }
        }
    }
}

impl std::error::Error for TickError {}

/// Renders a caught panic payload as text; `&str` and `String` payloads
/// (everything `panic!` and the `assert!` family produce) pass through.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One routed spike delivery: `(target core, axon, lead)`, where `lead` is
/// the delivery lead time relative to the launch tick (axonal delay plus
/// tile-link latency plus any fault delay; always ≥ 1).
type Delivery = (usize, usize, u64);

/// One Phase-A worker's result: `(core index, fired neurons)` pairs in
/// canonical order, or the first panic observed in the shard.
type FiredShard = Result<Vec<(usize, Vec<u16>)>, TickError>;

/// Everything [`Chip::begin_tick`] captures before Phase A, handed back to
/// [`Chip::finish_tick`] after the caller has evaluated the active cores.
pub(crate) struct TickPrelude {
    telemetry_on: bool,
    census_before: EventCensus,
    core_detail: bool,
    active: Vec<usize>,
    stats_before: Vec<CoreStats>,
}

impl TickPrelude {
    /// The cores Phase A must evaluate, in canonical row-major order.
    pub(crate) fn active(&self) -> &[usize] {
        &self.active
    }
}

/// The result of routing one shard of the fired list. Batches from
/// concurrently routed shards merge deterministically: `outputs` and
/// `deliveries` concatenate in shard order (shards are contiguous slices of
/// the canonically ordered fired list), and every counter is an
/// order-independent sum.
#[derive(Debug, Default)]
struct RouteBatch {
    outputs: Vec<u32>,
    deliveries: Vec<Delivery>,
    hops: u64,
    link_crossings: u64,
    faults: FaultStats,
    /// Per-spike hop-distance histogram, collected only when telemetry is
    /// enabled (`None` keeps the hot path allocation-free and branchless
    /// beyond one tag test per routed spike).
    hop_histogram: Option<Histogram>,
}

impl RouteBatch {
    /// A fresh batch; `telemetry` arms the hop-distance histogram.
    fn with_telemetry(telemetry: bool) -> RouteBatch {
        RouteBatch {
            hop_histogram: telemetry.then(Histogram::default),
            ..RouteBatch::default()
        }
    }

    fn absorb(&mut self, other: RouteBatch) {
        self.outputs.extend(other.outputs);
        self.deliveries.extend(other.deliveries);
        self.hops += other.hops;
        self.link_crossings += other.link_crossings;
        self.faults.merge(&other.faults);
        if let (Some(mine), Some(theirs)) = (self.hop_histogram.as_mut(), other.hop_histogram) {
            mine.merge(&theirs);
        }
    }
}

/// Routes one spike: applies the `(tick, core, neuron)`-keyed link fault,
/// resolves the destination, and records the outcome in `batch`. Reads chip
/// state immutably and writes only `batch`, so shards of spikes can be
/// routed concurrently.
fn resolve_spike(
    config: &ChipConfig,
    cores: &[NeurosynapticCore],
    injector: Option<&FaultInjector>,
    t: u64,
    core_index: usize,
    neuron: u16,
    batch: &mut RouteBatch,
) {
    let x = core_index % config.width;
    let y = core_index / config.width;
    // One spike launches per (tick, core, neuron): a unique,
    // order-independent fault-decision coordinate.
    let fault = injector.and_then(|i| i.link_fault(t, core_index as u64, neuron as u64));
    match cores[core_index].destination(neuron as usize) {
        Destination::Disabled => {}
        Destination::Output(port) => {
            // Output pads cross one peripheral link; drops apply,
            // corruption/delay have no meaning there.
            if matches!(fault, Some(LinkFault::Drop)) {
                batch.faults.packets_dropped += 1;
            } else {
                batch.outputs.push(port);
            }
        }
        Destination::Axon(target) => {
            if matches!(fault, Some(LinkFault::Drop)) {
                batch.faults.packets_dropped += 1;
                return;
            }
            let (mut tx, mut ty) = (
                (x as i64 + target.offset.dx as i64) as usize,
                (y as i64 + target.offset.dy as i64) as usize,
            );
            let mut extra_delay = 0u64;
            match fault {
                Some(LinkFault::Corrupt { salt }) => {
                    batch.faults.packets_corrupted += 1;
                    (tx, ty) = brainsim_faults::pick_cell(salt, config.width, config.height);
                }
                Some(LinkFault::Delay(ticks)) => {
                    batch.faults.packets_delayed += 1;
                    extra_delay = ticks as u64;
                }
                _ => {}
            }
            let tidx = ty * config.width + tx;
            let spike_hops =
                route_hops((tx as i64 - x as i64) as i32, (ty as i64 - y as i64) as i32) as u64;
            batch.hops += spike_hops;
            if let Some(hist) = batch.hop_histogram.as_mut() {
                hist.record(spike_hops);
            }
            let crossings = config.crossings((x, y), (tx, ty));
            let link_delay =
                crossings as u64 * config.tile.map(|tc| tc.link_latency as u64).unwrap_or(0);
            batch.link_crossings += crossings as u64;
            let lead = target.delay as u64 + link_delay + extra_delay;
            batch.deliveries.push((tidx, target.axon as usize, lead));
        }
    }
}

/// Error from [`Chip::inject`] and [`Chip::inject_word`]. Both entry points
/// share this type and validate identically: grid bounds here, then the
/// target core's own delivery checks ([`brainsim_core::DeliverError`]) —
/// a pinned contract covered by the `inject_validation` /
/// `inject_word_validation` tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// Core coordinates outside the grid.
    OffGrid(usize, usize),
    /// The core rejected the delivery (bad axon or timing horizon).
    Deliver(brainsim_core::DeliverError),
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::OffGrid(x, y) => write!(f, "core ({x}, {y}) outside the grid"),
            InjectError::Deliver(e) => write!(f, "delivery failed: {e}"),
        }
    }
}

impl std::error::Error for InjectError {}

impl From<brainsim_core::DeliverError> for InjectError {
    fn from(e: brainsim_core::DeliverError) -> Self {
        InjectError::Deliver(e)
    }
}

/// A configured chip; see the crate docs for the execution model.
#[derive(Debug, Clone)]
pub struct Chip {
    config: ChipConfig,
    cores: Vec<NeurosynapticCore>,
    now: u64,
    hops: u64,
    link_crossings: u64,
    outputs_total: u64,
    /// Link-fault injector for inter-core spike routing; `None` (the
    /// default) keeps the routing loop fault-free.
    injector: Option<FaultInjector>,
    /// Cumulative chip-level (routing) fault accounting.
    fault_stats: FaultStats,
    /// Per-tick instrumentation sink; `None` (the default) keeps the tick
    /// pipeline on its uninstrumented fast path (one tag test per tick).
    /// Boxed so the disabled chip pays one pointer of state.
    telemetry: Option<Box<TelemetryLog>>,
    /// The fault plan applied via [`Chip::set_fault_plan`], retained so a
    /// checkpoint can carry it. [`FaultInjector`] is a stateless function of
    /// the plan, so the plan is the canonical serializable form.
    plan: Option<FaultPlan>,
    /// `config.threads` clamped to the host's available parallelism,
    /// resolved once at construction. Phases A and B size their shard pools
    /// from this, so oversubscribed configs stop spawning threads the host
    /// cannot run; the clamp is recorded per tick in
    /// [`brainsim_telemetry::SchedulerMeta`].
    effective_threads: usize,
    /// The incrementally maintained active set for the deferred-skip
    /// scheduler (sorted flat core indices). `None` forces a full
    /// quiescence scan on the next tick — the state after construction,
    /// restore, reset, and fault-plan application. Only consulted under
    /// [`CoreScheduling::Active`] with deterministic semantics; quiescent
    /// cores outside the set are left untouched (their clocks lag) and are
    /// bulk fast-forwarded on wake, so idle silicon costs zero memory
    /// traffic per tick instead of a header write per core.
    active_set: Option<Vec<usize>>,
}

impl Chip {
    pub(crate) fn from_parts(config: ChipConfig, cores: Vec<NeurosynapticCore>) -> Chip {
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let effective_threads = config.threads.min(host).max(1);
        Chip {
            config,
            cores,
            now: 0,
            hops: 0,
            link_crossings: 0,
            outputs_total: 0,
            injector: None,
            fault_stats: FaultStats::default(),
            telemetry: None,
            plan: None,
            effective_threads,
            active_set: None,
        }
    }

    /// The worker-thread count the chip actually uses: the configured
    /// count clamped to the host's available parallelism.
    pub fn effective_threads(&self) -> usize {
        self.effective_threads
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The next tick to be evaluated.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total mesh hops charged so far.
    pub fn hops(&self) -> u64 {
        self.hops
    }

    /// Total inter-chip (tile boundary) link crossings so far.
    pub fn link_crossings(&self) -> u64 {
        self.link_crossings
    }

    /// Total external output events emitted so far.
    pub fn outputs_total(&self) -> u64 {
        self.outputs_total
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        y * self.config.width + x
    }

    /// The flat core array in canonical row-major order, mutable — the
    /// batched backend's Phase A hook.
    pub(crate) fn cores_mut(&mut self) -> &mut [NeurosynapticCore] {
        &mut self.cores
    }

    /// The fault plan applied to this chip, if any — the batched backend's
    /// replica-divergence probe.
    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// The flat core array in canonical row-major order.
    pub(crate) fn cores_flat(&self) -> &[NeurosynapticCore] {
        &self.cores
    }

    /// Read access to core `(x, y)`, or `None` if the coordinates lie
    /// outside the grid.
    pub fn core(&self, x: usize, y: usize) -> Option<&NeurosynapticCore> {
        if x < self.config.width && y < self.config.height {
            Some(&self.cores[y * self.config.width + x])
        } else {
            None
        }
    }

    /// Applies a fault plan chip-wide: structural faults (dropout, dead /
    /// stuck neurons, stuck-at synapses) are burned into every core, and
    /// link faults (drop / corrupt / delay) arm the spike-routing loop.
    ///
    /// Apply any given plan at most once — structural burn-in compounds if
    /// re-applied. Arming is legal at any tick boundary, including mid-run
    /// (how fault-campaign harnesses model wear-out): structural faults
    /// take effect from the next tick, and the link injector is a pure
    /// function of `(tick, core, neuron)`, so a mid-run arming is
    /// bit-identical across thread counts and schedulers. A benign plan is
    /// a no-op and leaves the fault-free fast path intact.
    ///
    /// Stacking plans: structural faults accumulate (each plan burns its
    /// own synapses/neurons on top of what is already there), but the
    /// link injector always reflects the *most recently applied* plan —
    /// the same single retained plan a checkpoint records and a restore
    /// re-arms from. A later plan without link faults therefore sheds an
    /// earlier plan's link behavior, keeping live and restored chips
    /// bit-identical.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        let injector = FaultInjector::new(plan);
        if injector.is_benign() {
            return;
        }
        // Fault masks are applied to exact per-core state: replay any
        // deferred skips first, and rescan quiescence afterwards (a plan
        // can flip either way — dropout silences a core, stuck-firing
        // wakes one).
        self.wake_all();
        self.active_set = None;
        for idx in 0..self.cores.len() {
            let x = idx % self.config.width;
            let y = idx / self.config.width;
            self.cores[idx].apply_faults(&injector, x, y);
        }
        self.injector = if injector.has_link_faults() {
            Some(injector)
        } else {
            None
        };
        self.plan = Some(*plan);
    }

    /// Enables per-tick telemetry collection from the next tick on. Any
    /// previously collected log is replaced by a fresh one.
    ///
    /// Every subsequent tick appends one [`TickRecord`] — counters, fault
    /// annotations, the tick's energy-census delta, and (when
    /// [`TelemetryConfig::core_detail`] is set) per-core activity in
    /// canonical row-major order — to a ring-buffered [`TelemetryLog`].
    /// Collection is deterministic: the record stream is bit-identical at
    /// any thread count.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        self.telemetry = Some(Box::new(TelemetryLog::new(config, self.cores.len())));
    }

    /// The telemetry log collected so far, or `None` when telemetry is
    /// disabled.
    pub fn telemetry(&self) -> Option<&TelemetryLog> {
        self.telemetry.as_deref()
    }

    /// Disables telemetry and hands back the collected log (`None` if
    /// telemetry was never enabled).
    pub fn take_telemetry(&mut self) -> Option<Box<TelemetryLog>> {
        self.telemetry.take()
    }

    /// Total spike events still waiting in the cores' delay-scheduler
    /// rings — the chip-wide backlog. Zero means the chip is quiesced: no
    /// in-flight event can alter future state without new input. The
    /// recovery engine's migration step reads this to decide whether a
    /// checkpoint captures a drained or a loaded chip (both are
    /// crash-consistent; a drained one migrates with an empty backlog).
    pub fn pending_events_total(&self) -> u64 {
        self.cores.iter().map(|c| c.pending_events() as u64).sum()
    }

    /// Aggregate fault statistics: routing-level faults plus every core's
    /// structural and spike faults.
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = self.fault_stats;
        for core in &self.cores {
            total.merge(&core.stats().faults);
        }
        total
    }

    /// Captures the complete chip state as a [`Snapshot`]: every core's
    /// membrane potentials, LFSR, crossbar, scheduler ring, statistics, and
    /// fault image; the chip-level counters and routing-fault accounting;
    /// the retained fault plan; and the telemetry run summary.
    ///
    /// Call between ticks (any tick boundary is crash-consistent). A chip
    /// rebuilt via [`Chip::restore`] and run onward produces the
    /// bit-identical event stream an uninterrupted run produces — at any
    /// thread count, under either scheduler, on the SWAR or scalar kernels
    /// — because the tick pipeline's cross-thread combination steps are
    /// order-preserving or commutative and all randomness lives in the
    /// per-core LFSRs captured here.
    pub fn checkpoint(&self) -> Snapshot {
        Snapshot {
            config: self.config,
            now: self.now,
            hops: self.hops,
            link_crossings: self.link_crossings,
            outputs_total: self.outputs_total,
            fault_stats: self.fault_stats,
            cores: self
                .cores
                .iter()
                .map(|c| {
                    // Virtualise any deferred-skip lag so the image is
                    // bit-identical to one captured under eager skipping
                    // (a lagging core is quiescent, so only the clock and
                    // the skip accounting differ).
                    let mut state = c.export_state();
                    let lag = self.now.saturating_sub(state.now);
                    if lag > 0 {
                        state.stats.ticks += lag;
                        if !c.is_dropped() {
                            state.stats.neuron_updates += lag * c.neurons() as u64;
                        }
                        state.now = self.now;
                    }
                    state
                })
                .collect(),
            plan: self.plan,
            telemetry: self.telemetry.as_deref().map(|log| TelemetrySnapshot {
                config: *log.config(),
                evicted: log.evicted(),
                summary: log.summary().clone(),
            }),
            noc: None,
            app: Vec::new(),
        }
    }

    /// Rebuilds a chip from a [`Snapshot`], validating everything the
    /// builder would have validated: consistent dimensions, every core
    /// image's own invariants, and cross-core wiring (a snapshot cannot
    /// smuggle in wiring [`crate::ChipBuilder::build`] would reject).
    ///
    /// Structural faults are **not** re-applied — the burned crossbars and
    /// per-core fault images in the snapshot already carry them; only the
    /// link-fault injector is re-armed from the retained plan. Restored
    /// telemetry resumes with an empty record ring and its run summary
    /// marked [`brainsim_telemetry::RunSummary::resumed_from_tick`], so
    /// pre-checkpoint ticks are never double-counted.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Invalid`] when the snapshot is well-formed bytes-wise
    /// but describes a chip that cannot exist: zero dimensions, a
    /// relaxed-semantics multi-thread config, a core count or core shape
    /// that disagrees with the config, a core whose clock is out of step
    /// with the chip, a core image failing its own validation, or invalid
    /// wiring. Never panics.
    pub fn restore(snapshot: Snapshot) -> Result<Chip, RestoreError> {
        let config = snapshot.config;
        if config.width == 0
            || config.height == 0
            || config.core_axons == 0
            || config.core_neurons == 0
        {
            return Err(RestoreError::Invalid("zero chip dimension".to_string()));
        }
        if config.semantics == TickSemantics::Relaxed && config.threads > 1 {
            return Err(RestoreError::Invalid(
                "relaxed tick semantics cannot run with multiple threads".to_string(),
            ));
        }
        if snapshot.cores.len() != config.cores() {
            return Err(RestoreError::Invalid(format!(
                "snapshot has {} cores but the config's grid holds {}",
                snapshot.cores.len(),
                config.cores()
            )));
        }
        let mut cores = Vec::with_capacity(snapshot.cores.len());
        for (i, state) in snapshot.cores.iter().enumerate() {
            if state.axons != config.core_axons || state.neurons != config.core_neurons {
                return Err(RestoreError::Invalid(format!(
                    "core {i} is {}x{} but the config says {}x{}",
                    state.axons, state.neurons, config.core_axons, config.core_neurons
                )));
            }
            if state.now != snapshot.now {
                return Err(RestoreError::Invalid(format!(
                    "core {i} clock is at tick {} but the chip is at tick {}",
                    state.now, snapshot.now
                )));
            }
            let core = NeurosynapticCore::import_state(state)
                .map_err(|e| RestoreError::Invalid(format!("core {i}: {e}")))?;
            cores.push(core);
        }
        validate_wiring(&config, &cores).map_err(|e| RestoreError::Invalid(e.to_string()))?;
        crate::builder::pack_cores(&mut cores);

        let mut chip = Chip::from_parts(config, cores);
        chip.now = snapshot.now;
        chip.hops = snapshot.hops;
        chip.link_crossings = snapshot.link_crossings;
        chip.outputs_total = snapshot.outputs_total;
        chip.fault_stats = snapshot.fault_stats;
        if let Some(plan) = snapshot.plan {
            // Re-arm only the link-fault injector; the snapshot's core
            // images already carry every structural fault, and re-burning
            // them would compound dropout/stuck faults.
            let injector = FaultInjector::new(&plan);
            if injector.has_link_faults() {
                chip.injector = Some(injector);
            }
            chip.plan = Some(plan);
        }
        if let Some(t) = snapshot.telemetry {
            let mut summary = t.summary;
            summary.resumed_from_tick = Some(chip.now);
            chip.telemetry = Some(Box::new(TelemetryLog::from_parts(
                t.config, t.evicted, summary,
            )));
        }
        Ok(chip)
    }

    /// Injects an external spike onto axon `axon` of core `(x, y)`, due at
    /// `target_tick`.
    ///
    /// # Errors
    ///
    /// [`InjectError::OffGrid`] for bad coordinates, otherwise the core's
    /// own validation ([`brainsim_core::DeliverError`]).
    pub fn inject(
        &mut self,
        x: usize,
        y: usize,
        axon: usize,
        target_tick: u64,
    ) -> Result<(), InjectError> {
        if x >= self.config.width || y >= self.config.height {
            return Err(InjectError::OffGrid(x, y));
        }
        let idx = self.index(x, y);
        let now = self.now;
        Self::fast_forward(&mut self.cores[idx], now);
        self.cores[idx].deliver(axon, target_tick)?;
        self.note_woken(idx);
        Ok(())
    }

    /// Injects an event on every set bit of `bits` — axons `word*64 + b` of
    /// core `(x, y)` — for `target_tick`: the burst form of
    /// [`Chip::inject`]. Equivalent to one `inject` per set bit, at one
    /// grid lookup and one scheduler OR for the whole word.
    ///
    /// # Errors
    ///
    /// As for [`Chip::inject`]; a set bit past the core's axon count is
    /// [`brainsim_core::DeliverError::NoSuchAxon`] and nothing is injected.
    pub fn inject_word(
        &mut self,
        x: usize,
        y: usize,
        word: usize,
        bits: u64,
        target_tick: u64,
    ) -> Result<(), InjectError> {
        if x >= self.config.width || y >= self.config.height {
            return Err(InjectError::OffGrid(x, y));
        }
        let idx = self.index(x, y);
        let now = self.now;
        Self::fast_forward(&mut self.cores[idx], now);
        self.cores[idx].deliver_word(word, bits, target_tick)?;
        self.note_woken(idx);
        Ok(())
    }

    /// Evaluates one global tick.
    ///
    /// # Panics
    ///
    /// Panics if a core's evaluation panicked; [`Chip::try_tick`] is the
    /// non-panicking form.
    pub fn tick(&mut self) -> TickSummary {
        match self.try_tick() {
            Ok(summary) => summary,
            Err(e) => panic!("{e}"),
        }
    }

    /// Evaluates one global tick, surfacing a core-evaluation panic as a
    /// typed [`TickError`] instead of unwinding.
    ///
    /// # Errors
    ///
    /// [`TickError::CorePanicked`] if any core's evaluation panicked. The
    /// failed tick did not complete; the chip is poisoned and must be
    /// rebuilt before further use.
    pub fn try_tick(&mut self) -> Result<TickSummary, TickError> {
        let t = self.now;
        match self.config.semantics {
            TickSemantics::Deterministic => self.tick_deterministic(t),
            TickSemantics::Relaxed => self.tick_relaxed(t),
        }
    }

    /// Flat indices of the cores that must be evaluated this tick, in
    /// canonical row-major order. Under [`CoreScheduling::Sweep`] that is
    /// every core; under [`CoreScheduling::Active`] every core that is not
    /// provably quiescent — taken from the incrementally maintained
    /// [`Chip::active_set`] when one is cached, so a tick over mostly-idle
    /// silicon never reads the idle cores at all. A full scan runs only
    /// when the cache was invalidated (construction, restore, reset,
    /// fault-plan application).
    ///
    /// The cache is exact, not a heuristic: a quiescent core can only
    /// become non-quiescent through a spike delivery, an injection, or a
    /// fault application, and every one of those paths re-registers the
    /// core (or invalidates the cache). A skipped tick is a provable no-op,
    /// so deferring it cannot change any observable state.
    fn take_active(&mut self) -> Vec<usize> {
        match self.config.scheduling {
            CoreScheduling::Sweep => (0..self.cores.len()).collect(),
            CoreScheduling::Active => match self.active_set.take() {
                Some(set) => set,
                None => (0..self.cores.len())
                    .filter(|&i| !self.cores[i].is_quiescent())
                    .collect(),
            },
        }
    }

    /// Whether ticks defer idle-core clock advancement (and therefore
    /// whether lagging clocks must be virtualised by readers and
    /// fast-forwarded on wake). Relaxed semantics keeps its own eager
    /// per-core loop.
    #[inline]
    fn defers_skips(&self) -> bool {
        self.config.scheduling == CoreScheduling::Active
            && self.config.semantics == TickSemantics::Deterministic
    }

    /// Fast-forwards one core's clock to `target` (a provable no-op replay
    /// of the ticks it sat out — see [`NeurosynapticCore::skip_ticks`]).
    #[inline]
    fn fast_forward(core: &mut NeurosynapticCore, target: u64) {
        let behind = target.saturating_sub(core.now());
        if behind > 0 {
            core.skip_ticks(behind);
        }
    }

    /// Fast-forwards every lagging core to the chip clock. Called before
    /// operations that want exact per-core state without virtualisation
    /// (fault-plan application, and nothing on the per-tick path).
    fn wake_all(&mut self) {
        let now = self.now;
        for core in &mut self.cores {
            Self::fast_forward(core, now);
        }
    }

    /// Registers a core woken between ticks (injection) with the cached
    /// active set, keeping the set sorted. No-op when the cache is
    /// invalidated — the next tick's full scan will find the core.
    fn note_woken(&mut self, idx: usize) {
        if let Some(set) = self.active_set.as_mut() {
            if let Err(pos) = set.binary_search(&idx) {
                set.insert(pos, idx);
            }
        }
    }

    /// Phase A on scoped threads: shards are contiguous runs of the sorted
    /// active list, and each worker receives the disjoint `&mut` sub-slice
    /// of the core array spanning its shard — no locking, and the fired
    /// list comes back in canonical core order. A panicking core is caught
    /// on its worker and surfaced as [`TickError::CorePanicked`] after all
    /// workers have joined, so a poisoned core cannot hang the scope.
    fn evaluate_parallel(
        cores: &mut [NeurosynapticCore],
        active: &[usize],
        threads: usize,
        t: u64,
    ) -> Result<Vec<(usize, Vec<u16>)>, TickError> {
        let threads = threads.min(active.len());
        let chunk = active.len().div_ceil(threads);
        let results: Vec<FiredShard> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut rest = cores;
            let mut consumed = 0usize;
            for shard in active.chunks(chunk) {
                let lo = shard[0];
                let hi = shard[shard.len() - 1] + 1;
                let tail = std::mem::take(&mut rest);
                let (_, tail) = tail.split_at_mut(lo - consumed);
                let (mine, tail) = tail.split_at_mut(hi - lo);
                rest = tail;
                consumed = hi;
                handles.push((
                    lo,
                    scope.spawn(move || {
                        let mut fired = Vec::with_capacity(shard.len());
                        for &idx in shard {
                            let core = &mut mine[idx - lo];
                            match catch_unwind(AssertUnwindSafe(|| core.tick(t))) {
                                Ok(spikes) => fired.push((idx, spikes)),
                                Err(p) => {
                                    return Err(TickError::CorePanicked {
                                        core: idx,
                                        tick: t,
                                        message: panic_message(p),
                                    })
                                }
                            }
                        }
                        Ok(fired)
                    }),
                ));
            }
            handles
                .into_iter()
                .map(|(lo, h)| {
                    // Workers catch per-core panics themselves; a join
                    // error would mean a panic outside that guard —
                    // still typed, attributed to the shard's first core.
                    h.join().unwrap_or_else(|p| {
                        Err(TickError::CorePanicked {
                            core: lo,
                            tick: t,
                            message: panic_message(p),
                        })
                    })
                })
                .collect()
        });
        let mut fired = Vec::with_capacity(active.len());
        for shard in results {
            fired.extend(shard?);
        }
        Ok(fired)
    }

    /// Field-wise census delta `after − before`, normalised to one tick.
    fn census_delta(before: &EventCensus, after: &EventCensus) -> EventCensus {
        EventCensus {
            ticks: 1,
            cores: after.cores,
            synaptic_events: after.synaptic_events - before.synaptic_events,
            neuron_updates: after.neuron_updates - before.neuron_updates,
            spikes: after.spikes - before.spikes,
            axon_events: after.axon_events - before.axon_events,
            hops: after.hops - before.hops,
            link_crossings: after.link_crossings - before.link_crossings,
            packets_dropped: after.packets_dropped - before.packets_dropped,
            packets_rejected: after.packets_rejected - before.packets_rejected,
            flit_stalls: after.flit_stalls - before.flit_stalls,
        }
    }

    /// Per-core activity deltas for the `evaluated` cores (canonical order)
    /// against their pre-evaluation stat snapshots, sampled right after
    /// Phase A — before this tick's routed deliveries land.
    fn core_activity(&self, evaluated: &[usize], before: &[CoreStats]) -> Vec<CoreActivity> {
        evaluated
            .iter()
            .zip(before)
            .map(|(&idx, prev)| {
                let s = self.cores[idx].stats();
                CoreActivity {
                    core: idx as u32,
                    spikes: (s.spikes - prev.spikes) as u32,
                    axon_events: (s.axon_events - prev.axon_events) as u32,
                    synaptic_events: s.synaptic_events - prev.synaptic_events,
                    pending_events: self.cores[idx].pending_events() as u32,
                }
            })
            .collect()
    }

    fn tick_deterministic(&mut self, t: u64) -> Result<TickSummary, TickError> {
        let prelude = self.begin_tick(t)?;

        // Phase A: evaluate the active cores (on scoped threads when
        // configured).
        let active = &prelude.active;
        let fired: Vec<(usize, Vec<u16>)> = if self.effective_threads > 1 && active.len() > 1 {
            Self::evaluate_parallel(&mut self.cores, active, self.effective_threads, t)?
        } else {
            let mut fired = Vec::with_capacity(active.len());
            for &idx in active {
                let core = &mut self.cores[idx];
                let spikes = catch_unwind(AssertUnwindSafe(|| core.tick(t))).map_err(|p| {
                    TickError::CorePanicked {
                        core: idx,
                        tick: t,
                        message: panic_message(p),
                    }
                })?;
                fired.push((idx, spikes));
            }
            fired
        };

        self.finish_tick(t, prelude, fired)
    }

    /// The tick prologue shared by the solo pipeline and the batched
    /// backend ([`crate::ChipBatch`]): telemetry pre-capture, the active
    /// list, and the quiescence skips. After this, Phase A may evaluate
    /// the active cores by any bit-identical means (threaded shards, the
    /// serial loop, or the fused lane tick) before [`Chip::finish_tick`].
    pub(crate) fn begin_tick(&mut self, t: u64) -> Result<TickPrelude, TickError> {
        // Telemetry pre-capture: a census snapshot (for the per-tick energy
        // delta) and per-core stat snapshots of the active cores (for
        // activity deltas). All skipped when telemetry is off.
        let telemetry_on = self.telemetry.is_some();
        let census_before = if telemetry_on {
            self.census()
        } else {
            EventCensus::default()
        };
        let core_detail = telemetry_on
            && self
                .telemetry
                .as_deref()
                .is_some_and(|l| l.config().core_detail);
        debug_assert_eq!(t, self.now, "tick prologue out of order");
        let active = self.take_active();
        let stats_before: Vec<CoreStats> = if core_detail {
            active.iter().map(|&i| *self.cores[i].stats()).collect()
        } else {
            Vec::new()
        };
        Ok(TickPrelude {
            telemetry_on,
            census_before,
            core_detail,
            active,
            stats_before,
        })
    }

    /// The tick epilogue shared by the solo pipeline and the batched
    /// backend: per-core activity sampling, Phase B spike routing, serial
    /// delivery, counters, and the telemetry record — statement for
    /// statement the tail of the solo deterministic tick, so a batched
    /// lane's summary and telemetry are bit-identical to its solo twin's.
    /// `fired` must be Phase A's output in canonical core order.
    pub(crate) fn finish_tick(
        &mut self,
        t: u64,
        prelude: TickPrelude,
        fired: Vec<(usize, Vec<u16>)>,
    ) -> Result<TickSummary, TickError> {
        let TickPrelude {
            telemetry_on,
            census_before,
            core_detail,
            active,
            stats_before,
        } = prelude;
        let cores_evaluated = active.len() as u64;

        // Per-core activity deltas, sampled between the phases: evaluation
        // is complete, this tick's deliveries have not yet landed.
        let activity = if core_detail {
            self.core_activity(&active, &stats_before)
        } else {
            Vec::new()
        };

        // Phase B: route every spike launched in tick t. Contiguous shards
        // of the fired list are routed concurrently into private batches;
        // merging in shard order reproduces the canonical (core, neuron)
        // serial order exactly.
        let spikes: u64 = fired.iter().map(|(_, f)| f.len() as u64).sum();
        let injector = self.injector.as_ref();
        let batch = if self.effective_threads > 1 && fired.len() > 1 && spikes > 1 {
            let shards: Vec<RouteBatch> = {
                let cores = &self.cores;
                let config = &self.config;
                let chunk = fired
                    .len()
                    .div_ceil(self.effective_threads.min(fired.len()));
                std::thread::scope(|scope| {
                    let handles: Vec<_> = fired
                        .chunks(chunk)
                        .map(|shard| {
                            scope.spawn(move || {
                                let mut batch = RouteBatch::with_telemetry(telemetry_on);
                                for &(core_index, ref fired_neurons) in shard {
                                    for &neuron in fired_neurons {
                                        resolve_spike(
                                            config, cores, injector, t, core_index, neuron,
                                            &mut batch,
                                        );
                                    }
                                }
                                batch
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(b) => b,
                            // Routing is pure and cannot legitimately
                            // panic; if it somehow does, propagate.
                            Err(p) => std::panic::resume_unwind(p),
                        })
                        .collect()
                })
            };
            let mut merged = RouteBatch::with_telemetry(telemetry_on);
            for shard in shards {
                merged.absorb(shard);
            }
            merged
        } else {
            let mut batch = RouteBatch::with_telemetry(telemetry_on);
            for &(core_index, ref fired_neurons) in &fired {
                for &neuron in fired_neurons {
                    resolve_spike(
                        &self.config,
                        &self.cores,
                        injector,
                        t,
                        core_index,
                        neuron,
                        &mut batch,
                    );
                }
            }
            batch
        };

        // Deliveries mutate target schedulers, so they apply serially — but
        // their order is immaterial: scheduling an axon event is an
        // idempotent bitmap OR and failure counting is a per-delivery
        // property.
        let RouteBatch {
            outputs,
            deliveries,
            hops,
            link_crossings,
            mut faults,
            hop_histogram,
        } = batch;
        let deliveries_count = deliveries.len() as u64;
        let track_active = self.defers_skips();
        let mut woken: Vec<usize> = Vec::new();
        for (tidx, axon, lead) in deliveries {
            let core = &mut self.cores[tidx];
            // A quiescent target may have sat out any number of ticks under
            // the deferred-skip scheduler; replay them (a provable no-op)
            // before the event lands, so its clock and accounting match a
            // core that was eagerly skipped every tick.
            Self::fast_forward(core, t + 1);
            if core.deliver(axon, t + lead).is_err() {
                // Builder-validated wiring cannot fail here, so a refused
                // delivery is always fault-induced (bad corrupted axon, or
                // a delay past the scheduling horizon): absorb and count.
                faults.deliveries_failed += 1;
            } else if track_active {
                woken.push(tidx);
            }
        }
        if track_active {
            // Next tick's active set: this tick's survivors (evaluated
            // cores that did not settle back to quiescence) merged with
            // every core a delivery just woke. Exact, per the argument on
            // [`Chip::take_active`].
            woken.sort_unstable();
            woken.dedup();
            let mut next = Vec::with_capacity(active.len() + woken.len());
            let mut wi = woken.into_iter().peekable();
            for &idx in &active {
                while let Some(&w) = wi.peek() {
                    if w >= idx {
                        break;
                    }
                    wi.next();
                    next.push(w);
                }
                if wi.peek() == Some(&idx) {
                    wi.next();
                    next.push(idx);
                } else if !self.cores[idx].is_quiescent() {
                    next.push(idx);
                }
            }
            next.extend(wi);
            self.active_set = Some(next);
        }
        self.hops += hops;
        self.link_crossings += link_crossings;
        self.fault_stats.merge(&faults);
        self.outputs_total += outputs.len() as u64;
        self.now = t + 1;
        if telemetry_on {
            let energy = Self::census_delta(&census_before, &self.census());
            let record = TickRecord {
                tick: t,
                cores_evaluated: cores_evaluated as u32,
                cores_skipped: (self.cores.len() - active.len()) as u32,
                spikes,
                outputs: outputs.len() as u32,
                deliveries: deliveries_count,
                hops,
                link_crossings,
                hop_histogram: hop_histogram.unwrap_or_default(),
                faults,
                energy,
                cores: activity,
                scheduler: SchedulerMeta {
                    threads_configured: self.config.threads as u32,
                    threads_effective: self.effective_threads as u32,
                },
            };
            if let Some(log) = self.telemetry.as_deref_mut() {
                log.push(record);
            }
        }
        Ok(TickSummary {
            tick: t,
            spikes,
            outputs,
            faults,
            cores_evaluated,
        })
    }

    fn tick_relaxed(&mut self, t: u64) -> Result<TickSummary, TickError> {
        // Interleaved sweep: each core is evaluated and its spikes delivered
        // immediately with effective delay d − 1. Cores earlier in the sweep
        // may thus receive same-tick events from cores later in the sweep
        // only at t + 1 — the order dependence this mode exists to exhibit.
        //
        // Active-core scheduling composes with the sweep: the quiescence
        // check happens at the core's sweep position, after every earlier
        // core's same-tick deliveries have landed (a landed event makes the
        // scheduler non-idle, vetoing the skip). A later core's delivery to
        // an already-skipped core clamps to that core's advanced clock
        // (t + 1), exactly as it would after a full no-op evaluation.
        let telemetry_on = self.telemetry.is_some();
        let census_before = if telemetry_on {
            self.census()
        } else {
            EventCensus::default()
        };
        let core_detail = telemetry_on
            && self
                .telemetry
                .as_deref()
                .is_some_and(|l| l.config().core_detail);
        let mut outputs = Vec::new();
        let mut spikes = 0u64;
        let mut faults = FaultStats::default();
        let mut cores_evaluated = 0u64;
        let mut tick_hops = 0u64;
        let mut tick_crossings = 0u64;
        let mut deliveries_count = 0u64;
        let mut hop_histogram = Histogram::default();
        let mut activity: Vec<CoreActivity> = Vec::new();
        for core_index in 0..self.cores.len() {
            let core = &mut self.cores[core_index];
            if self.config.scheduling == CoreScheduling::Active && core.is_quiescent() {
                catch_unwind(AssertUnwindSafe(|| core.skip_tick(t))).map_err(|p| {
                    TickError::CorePanicked {
                        core: core_index,
                        tick: t,
                        message: panic_message(p),
                    }
                })?;
                continue;
            }
            cores_evaluated += 1;
            let stats_before = if core_detail {
                *core.stats()
            } else {
                CoreStats::default()
            };
            let fired = catch_unwind(AssertUnwindSafe(|| core.tick(t))).map_err(|p| {
                TickError::CorePanicked {
                    core: core_index,
                    tick: t,
                    message: panic_message(p),
                }
            })?;
            spikes += fired.len() as u64;
            if core_detail {
                // Sampled right after this core's evaluation, before any of
                // its (or later cores') same-tick deliveries land here —
                // matching the deterministic path's between-phases sample.
                let s = self.cores[core_index].stats();
                activity.push(CoreActivity {
                    core: core_index as u32,
                    spikes: (s.spikes - stats_before.spikes) as u32,
                    axon_events: (s.axon_events - stats_before.axon_events) as u32,
                    synaptic_events: s.synaptic_events - stats_before.synaptic_events,
                    pending_events: self.cores[core_index].pending_events() as u32,
                });
            }
            let mut batch = RouteBatch::with_telemetry(telemetry_on);
            for &neuron in &fired {
                resolve_spike(
                    &self.config,
                    &self.cores,
                    self.injector.as_ref(),
                    t,
                    core_index,
                    neuron,
                    &mut batch,
                );
            }
            let RouteBatch {
                outputs: shard_outputs,
                deliveries,
                hops,
                link_crossings,
                faults: shard_faults,
                hop_histogram: shard_histogram,
            } = batch;
            outputs.extend(shard_outputs);
            faults.merge(&shard_faults);
            self.hops += hops;
            self.link_crossings += link_crossings;
            tick_hops += hops;
            tick_crossings += link_crossings;
            deliveries_count += deliveries.len() as u64;
            if let Some(hist) = shard_histogram {
                hop_histogram.merge(&hist);
            }
            for (tidx, axon, lead) in deliveries {
                // Effective delay d − 1, clamped so a spike never lands in
                // a tick its target has already evaluated.
                let delivery = (t + lead - 1).max(self.cores[tidx].now());
                if self.cores[tidx].deliver(axon, delivery).is_err() {
                    faults.deliveries_failed += 1;
                }
            }
        }
        self.fault_stats.merge(&faults);
        self.outputs_total += outputs.len() as u64;
        self.now = t + 1;
        if telemetry_on {
            let energy = Self::census_delta(&census_before, &self.census());
            let record = TickRecord {
                tick: t,
                cores_evaluated: cores_evaluated as u32,
                cores_skipped: (self.cores.len() as u64 - cores_evaluated) as u32,
                spikes,
                outputs: outputs.len() as u32,
                deliveries: deliveries_count,
                hops: tick_hops,
                link_crossings: tick_crossings,
                hop_histogram,
                faults,
                energy,
                cores: activity,
                scheduler: SchedulerMeta {
                    threads_configured: self.config.threads as u32,
                    threads_effective: self.effective_threads as u32,
                },
            };
            if let Some(log) = self.telemetry.as_deref_mut() {
                log.push(record);
            }
        }
        Ok(TickSummary {
            tick: t,
            spikes,
            outputs,
            faults,
            cores_evaluated,
        })
    }

    /// Runs `ticks` ticks, returning the concatenated output events as
    /// `(tick, port)` pairs and the total spike count.
    pub fn run(&mut self, ticks: u64) -> (Vec<(u64, u32)>, u64) {
        let mut outputs = Vec::new();
        let mut spikes = 0;
        for _ in 0..ticks {
            let summary = self.tick();
            spikes += summary.spikes;
            outputs.extend(summary.outputs.iter().map(|&p| (summary.tick, p)));
        }
        (outputs, spikes)
    }

    /// The cumulative event census for the energy model.
    pub fn census(&self) -> EventCensus {
        let fault_totals = self.fault_stats();
        let mut census = EventCensus {
            cores: self.cores.len() as u64,
            hops: self.hops,
            link_crossings: self.link_crossings,
            packets_dropped: fault_totals.packets_dropped + fault_totals.flits_dropped_overflow,
            ..Default::default()
        };
        let mut ticks = 0;
        for core in &self.cores {
            let s = core.stats();
            // A core the deferred-skip scheduler left untouched carries a
            // lagging clock; charge the skipped ticks it would have
            // accumulated under eager skipping (one no-op update per
            // neuron per tick, none when dropped) without writing it.
            let lag = self.now.saturating_sub(core.now());
            census.synaptic_events += s.synaptic_events;
            census.neuron_updates += s.neuron_updates
                + if core.is_dropped() {
                    0
                } else {
                    lag * core.neurons() as u64
                };
            census.spikes += s.spikes;
            census.axon_events += s.axon_events;
            ticks = ticks.max(s.ticks + lag);
        }
        census.ticks = ticks;
        census
    }

    /// Chaos-engineering hook: forces core `index` out of tick sync so the
    /// chip's **next** evaluation of that core panics — contained by
    /// [`Chip::try_tick`] as [`TickError::CorePanicked`], never an unwind
    /// through the caller. Fault-campaign and serving-runtime harnesses use
    /// this to exercise supervision paths (crash isolation, checkpoint
    /// restart) with a deterministic, addressable failure.
    ///
    /// The core is first woken with a pending event so neither scheduler
    /// can skip it, then its private clock is driven one tick past the
    /// chip's — the same desynchronisation an internal invariant violation
    /// would produce. After poisoning, the chip is condemned: the next
    /// `try_tick` fails and the chip must be rebuilt or restored from a
    /// checkpoint before further use.
    ///
    /// Returns `false` (and leaves the chip healthy) when `index` is out
    /// of range.
    pub fn chaos_desync_core(&mut self, index: usize) -> bool {
        if index >= self.cores.len() {
            return false;
        }
        let now = self.now;
        let x = index % self.config.width;
        let y = index / self.config.width;
        // Park an event one tick out so the core stays provably
        // non-quiescent (axon 0 always exists) — the deferred-skip
        // scheduler must evaluate it and hit the clock check.
        if self.inject(x, y, 0, now + 1).is_err() {
            return false;
        }
        // Advance the core's private clock past the chip's. The evaluation
        // itself is orderly; its spikes are deliberately not routed — the
        // chip is condemned from here on, so the divergence is moot.
        let _ = self.cores[index].tick(now);
        true
    }

    /// Resets all cores, the tick counter and the accounting; keeps wiring.
    pub fn reset(&mut self) {
        for core in &mut self.cores {
            core.reset();
        }
        self.active_set = None;
        self.now = 0;
        self.hops = 0;
        self.link_crossings = 0;
        self.outputs_total = 0;
        // Event-level fault counts clear; the injector and the cores'
        // structural faults persist (defective silicon stays defective).
        self.fault_stats = FaultStats::default();
        // Telemetry starts over with the same configuration.
        if let Some(log) = self.telemetry.as_deref_mut() {
            log.clear();
        }
    }
}

/// The stepping seam: the scheduler-facing surface of a tick-driven chip,
/// separated from ownership.
///
/// A serving runtime (`brainsim-serve`) multiplexes thousands of chips it
/// does not own over a worker pool; its drive loop needs exactly four
/// things — the clock, a fallible tick, burst injection, and the backlog —
/// and nothing that would couple it to this crate's concrete [`Chip`]
/// (construction, checkpointing, and placement stay with the owner). Any
/// future backend (a [`crate::ChipBatch`] lane adapter, a remote proxy, a
/// mock in a scheduler test) slots in behind this trait.
///
/// Contract: implementations must surface evaluation panics as
/// [`TickError`] (never unwind through `try_tick`), and a failed tick
/// leaves the implementation condemned — the driver must stop stepping it
/// until the owner rebuilds or restores it.
pub trait Steppable {
    /// The next tick to be evaluated.
    fn now(&self) -> u64;

    /// Evaluates one tick, surfacing evaluation panics as a typed error.
    ///
    /// # Errors
    ///
    /// [`TickError`] when evaluation failed; the implementation is
    /// condemned and must not be stepped again.
    fn try_tick(&mut self) -> Result<TickSummary, TickError>;

    /// Injects one external spike (see [`Chip::inject`]).
    ///
    /// # Errors
    ///
    /// [`InjectError`] for off-grid coordinates or a rejected delivery.
    fn inject(
        &mut self,
        x: usize,
        y: usize,
        axon: usize,
        target_tick: u64,
    ) -> Result<(), InjectError>;

    /// Burst-injects a word of events (see [`Chip::inject_word`]).
    ///
    /// # Errors
    ///
    /// [`InjectError`] for off-grid coordinates or a rejected delivery.
    fn inject_word(
        &mut self,
        x: usize,
        y: usize,
        word: usize,
        bits: u64,
        target_tick: u64,
    ) -> Result<(), InjectError>;

    /// Spike events still waiting in the delay schedulers (the backlog).
    fn pending_events_total(&self) -> u64;
}

impl Steppable for Chip {
    fn now(&self) -> u64 {
        Chip::now(self)
    }

    fn try_tick(&mut self) -> Result<TickSummary, TickError> {
        Chip::try_tick(self)
    }

    fn inject(
        &mut self,
        x: usize,
        y: usize,
        axon: usize,
        target_tick: u64,
    ) -> Result<(), InjectError> {
        Chip::inject(self, x, y, axon, target_tick)
    }

    fn inject_word(
        &mut self,
        x: usize,
        y: usize,
        word: usize,
        bits: u64,
        target_tick: u64,
    ) -> Result<(), InjectError> {
        Chip::inject_word(self, x, y, word, bits, target_tick)
    }

    fn pending_events_total(&self) -> u64 {
        Chip::pending_events_total(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use brainsim_core::{AxonTarget, AxonType, CoreOffset, NeuronConfig, Weight};

    fn relay_config() -> NeuronConfig {
        NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .unwrap()
    }

    /// A 1×N chain of relay cores: input at core 0 axon 0, each core's
    /// neuron 0 forwards east to the next core's axon 0; the last core
    /// outputs to port 99.
    fn relay_chain(n: usize, semantics: TickSemantics, threads: usize) -> Chip {
        relay_chain_with(n, semantics, threads, CoreScheduling::default())
    }

    fn relay_chain_with(
        n: usize,
        semantics: TickSemantics,
        threads: usize,
        scheduling: CoreScheduling,
    ) -> Chip {
        let mut b = ChipBuilder::new(ChipConfig {
            width: n,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            semantics,
            threads,
            scheduling,
            ..ChipConfig::default()
        });
        for x in 0..n {
            let dest = if x + 1 < n {
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(1, 0),
                    axon: 0,
                    delay: 1,
                })
            } else {
                Destination::Output(99)
            };
            b.core_mut(x, 0).neuron(0, relay_config(), dest).unwrap();
            b.core_mut(x, 0).synapse(0, 0, true).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn spike_propagates_one_core_per_tick() {
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        // Core 0 fires at tick 0, core 1 at tick 1, ..., output at tick 3.
        let (outputs, spikes) = chip.run(6);
        assert_eq!(outputs, vec![(3, 99)]);
        assert_eq!(spikes, 4);
        assert_eq!(chip.hops(), 3);
    }

    #[test]
    fn relaxed_semantics_propagates_same_tick_along_sweep_order() {
        // With the relaxed ablation, a west→east chain rides the sweep
        // order: the whole chain fires within a single tick.
        let mut chip = relay_chain(4, TickSemantics::Relaxed, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = chip.run(2);
        assert_eq!(
            outputs,
            vec![(0, 99)],
            "relaxed mode collapses the chain into one tick"
        );
    }

    #[test]
    fn deterministic_results_are_thread_count_invariant() {
        let run = |threads: usize| {
            let mut chip = relay_chain(8, TickSemantics::Deterministic, threads);
            for t in 0..8 {
                chip.inject(0, 0, 0, t).unwrap();
            }
            chip.run(20)
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn active_scheduling_is_bit_identical_to_sweep() {
        // Sparse stimulus with idle gaps so cores genuinely go quiescent
        // mid-run; every observable must match the full sweep exactly.
        let run = |scheduling: CoreScheduling| {
            let mut chip = relay_chain_with(6, TickSemantics::Deterministic, 1, scheduling);
            let mut summaries = Vec::new();
            for t in 0..40u64 {
                if matches!(t, 0 | 9 | 23) {
                    chip.inject(0, 0, 0, t).unwrap();
                }
                let s = chip.tick();
                summaries.push((s.tick, s.spikes, s.outputs, s.faults));
            }
            (summaries, chip.census(), chip.fault_stats(), chip.hops())
        };
        assert_eq!(run(CoreScheduling::Active), run(CoreScheduling::Sweep));
    }

    #[test]
    fn idle_cores_are_skipped_and_wake_on_delivery() {
        let mut chip = relay_chain(5, TickSemantics::Deterministic, 1);
        // Nothing pending: every core is provably quiescent.
        assert_eq!(chip.tick().cores_evaluated, 0);
        chip.inject(0, 0, 0, 2).unwrap();
        // The pending event wakes exactly core 0; the spike then walks the
        // chain, waking one downstream core per tick.
        assert_eq!(chip.tick().cores_evaluated, 1);
        let s = chip.tick();
        assert_eq!((s.cores_evaluated, s.spikes), (1, 1));
        chip.run(6);
        // Chain drained: fully idle again, still bit-identical accounting
        // (census counts skipped cores as evaluated no-ops).
        assert_eq!(chip.tick().cores_evaluated, 0);
        assert_eq!(chip.census().neuron_updates, 2 * 5 * 10);
    }

    #[test]
    fn relaxed_active_scheduling_matches_sweep() {
        let run = |scheduling: CoreScheduling| {
            let mut chip = relay_chain_with(4, TickSemantics::Relaxed, 1, scheduling);
            chip.inject(0, 0, 0, 0).unwrap();
            chip.inject(2, 0, 0, 3).unwrap();
            let (outputs, spikes) = chip.run(8);
            (outputs, spikes, chip.census())
        };
        assert_eq!(run(CoreScheduling::Active), run(CoreScheduling::Sweep));
    }

    #[test]
    fn faulted_routing_is_thread_count_invariant() {
        // Corruption + delay exercise every RouteBatch field; the parallel
        // shard merge must reproduce the serial tallies exactly.
        let run = |threads: usize| {
            let mut chip = relay_chain_with(
                8,
                TickSemantics::Deterministic,
                threads,
                CoreScheduling::Sweep,
            );
            chip.set_fault_plan(
                &FaultPlan::new(21)
                    .with_link_corrupt(0.3)
                    .with_link_delay(0.3, 2),
            );
            for t in 0..12 {
                chip.inject(0, 0, 0, t).unwrap();
            }
            let mut summaries = Vec::new();
            for _ in 0..32 {
                summaries.push(chip.tick());
            }
            (summaries, chip.fault_stats(), chip.census())
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn poisoned_core_yields_typed_error_not_a_hang() {
        // Desync core 0's clock, then tick with 8 workers over a full
        // sweep: the worker's panic must come back as a TickError after
        // every thread has joined — not hang the scope, not unwind.
        let mut chip = relay_chain_with(8, TickSemantics::Deterministic, 8, CoreScheduling::Sweep);
        chip.cores[0].tick(0); // core 0 now expects tick 1; the chip says 0
        let err = chip
            .try_tick()
            .expect_err("desynced core must fail the tick");
        let TickError::CorePanicked {
            core,
            tick,
            message,
        } = err;
        assert_eq!((core, tick), (0, 0));
        assert!(message.contains("out of tick order"), "got: {message}");
    }

    #[test]
    fn poisoned_core_fails_serial_and_skip_paths_too() {
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap(); // keep core 0 active (not skipped)
        chip.cores[0].tick(0);
        assert!(matches!(
            chip.try_tick(),
            Err(TickError::CorePanicked {
                core: 0,
                tick: 0,
                ..
            })
        ));

        // A desynced *quiescent* core still fails under Sweep scheduling
        // (every core is evaluated, so the clock check fires)...
        let mut chip = relay_chain_with(4, TickSemantics::Deterministic, 1, CoreScheduling::Sweep);
        chip.cores[2].tick(0);
        assert!(matches!(
            chip.try_tick(),
            Err(TickError::CorePanicked {
                core: 2,
                tick: 0,
                ..
            })
        ));

        // ...while the deferred-skip scheduler leaves quiescent cores
        // untouched: their clocks lag and are fast-forwarded on wake, so
        // the same desync is absorbed once the chip clock catches up.
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.cores[2].tick(0);
        chip.try_tick().expect("quiescent core is never touched");
        chip.inject(0, 0, 0, chip.now()).unwrap();
        let (outputs, _) = chip.run(5);
        assert_eq!(outputs.len(), 1, "relay still reaches the output");
    }

    #[test]
    #[should_panic(expected = "panicked during tick")]
    fn tick_repanics_on_core_error() {
        let mut chip = relay_chain_with(2, TickSemantics::Deterministic, 1, CoreScheduling::Sweep);
        chip.cores[1].tick(0);
        chip.tick();
    }

    #[test]
    fn inject_validation() {
        let mut chip = relay_chain(2, TickSemantics::Deterministic, 1);
        assert!(matches!(
            chip.inject(5, 0, 0, 0),
            Err(InjectError::OffGrid(5, 0))
        ));
        assert!(matches!(
            chip.inject(0, 0, 9, 0),
            Err(InjectError::Deliver(_))
        ));
        assert!(matches!(
            chip.inject(0, 0, 0, 99),
            Err(InjectError::Deliver(_))
        ));
    }

    #[test]
    fn inject_word_validation() {
        // The burst form shares InjectError with `inject` and validates
        // identically: grid bounds first, then the core's delivery checks.
        let mut chip = relay_chain(2, TickSemantics::Deterministic, 1);
        assert!(matches!(
            chip.inject_word(5, 0, 0, 1, 0),
            Err(InjectError::OffGrid(5, 0))
        ));
        // Set bit past the core's axon count (core has 2 axons).
        assert!(matches!(
            chip.inject_word(0, 0, 0, 1 << 9, 0),
            Err(InjectError::Deliver(_))
        ));
        // Beyond the 15-tick scheduler horizon.
        assert!(matches!(
            chip.inject_word(0, 0, 0, 1, 99),
            Err(InjectError::Deliver(_))
        ));
        // A valid word injection behaves exactly like the per-axon form.
        let mut word_chip = relay_chain(2, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 1).unwrap();
        word_chip.inject_word(0, 0, 0, 1, 1).unwrap();
        for _ in 0..4 {
            assert_eq!(chip.tick(), word_chip.tick());
        }
    }

    #[test]
    fn census_accumulates_all_cores() {
        let mut chip = relay_chain(3, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(5);
        let census = chip.census();
        assert_eq!(census.cores, 3);
        assert_eq!(census.ticks, 5);
        assert_eq!(census.spikes, 3);
        assert_eq!(census.synaptic_events, 3);
        assert_eq!(census.hops, 2);
        // 2 neurons × 3 cores × 5 ticks.
        assert_eq!(census.neuron_updates, 30);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut chip = relay_chain(2, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(4);
        chip.reset();
        assert_eq!(chip.now(), 0);
        assert_eq!(chip.hops(), 0);
        assert_eq!(chip.census().spikes, 0);
        // Still functional after reset.
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = chip.run(3);
        assert_eq!(outputs, vec![(1, 99)]);
    }

    #[test]
    fn tiled_chain_adds_link_latency_at_boundaries() {
        use crate::config::TileConfig;
        // 4 cores in a row, tiled 2×1: the boundary between cores 1 and 2
        // is an inter-chip link with 3 ticks of latency.
        let mut b = ChipBuilder::new(ChipConfig {
            width: 4,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            tile: Some(TileConfig {
                width: 2,
                height: 1,
                link_latency: 3,
            }),
            ..ChipConfig::default()
        });
        for x in 0..4 {
            let dest = if x + 1 < 4 {
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(1, 0),
                    axon: 0,
                    delay: 1,
                })
            } else {
                Destination::Output(9)
            };
            b.core_mut(x, 0).neuron(0, relay_config(), dest).unwrap();
            b.core_mut(x, 0).synapse(0, 0, true).unwrap();
        }
        let mut chip = b.build().unwrap();
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = chip.run(10);
        // Hops 0→1 (1 tick), 1→2 (+1 +3 link), 2→3 (1): output at tick 6.
        assert_eq!(outputs, vec![(6, 9)]);
        assert_eq!(chip.link_crossings(), 1);
        assert_eq!(chip.census().link_crossings, 1);
    }

    #[test]
    fn link_latency_beyond_horizon_rejected() {
        use crate::config::TileConfig;
        let mut b = ChipBuilder::new(ChipConfig {
            width: 4,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            tile: Some(TileConfig {
                width: 1,
                height: 1,
                link_latency: 8,
            }),
            ..ChipConfig::default()
        });
        // Target 2 tiles away: delay 1 + 2 × 8 = 17 > 15.
        b.core_mut(0, 0)
            .neuron(
                0,
                relay_config(),
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(2, 0),
                    axon: 0,
                    delay: 1,
                }),
            )
            .unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            crate::builder::ChipBuildError::LinkDelayBeyondHorizon { total: 17, .. }
        ));
    }

    #[test]
    fn untiled_chip_has_no_link_crossings() {
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(6);
        assert_eq!(chip.link_crossings(), 0);
    }

    #[test]
    fn total_link_fault_still_completes_run() {
        // Acceptance: with every link faulted (100% drop), `Chip::run`
        // completes without panicking — all traffic is dropped, nothing
        // escapes to the output pads.
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.set_fault_plan(&FaultPlan::new(7).with_link_drop(1.0));
        for t in 0..8 {
            chip.inject(0, 0, 0, t).unwrap();
        }
        let (outputs, spikes) = chip.run(16);
        assert!(outputs.is_empty(), "all output traffic must be dropped");
        // Core 0 still fires on the injected spikes; nothing propagates.
        assert_eq!(spikes, 8);
        let stats = chip.fault_stats();
        assert_eq!(stats.packets_dropped, 8);
        assert_eq!(stats.total(), 8);
    }

    #[test]
    fn fault_plan_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut chip = relay_chain(6, TickSemantics::Deterministic, 1);
            chip.set_fault_plan(&FaultPlan::new(seed).with_link_drop(0.4));
            let mut trace = Vec::new();
            let mut spikes = 0;
            for t in 0..48 {
                if t < 32 {
                    chip.inject(0, 0, 0, t).unwrap();
                }
                let summary = chip.tick();
                spikes += summary.spikes;
                trace.extend(summary.outputs.iter().map(|&p| (t, p)));
            }
            (trace, spikes, chip.fault_stats())
        };
        assert_eq!(run(11), run(11), "same seed must reproduce exactly");
        assert_ne!(run(11).0, run(12).0, "different seeds must diverge");
    }

    #[test]
    fn benign_plan_leaves_chip_on_fast_path() {
        let mut faulted = relay_chain(4, TickSemantics::Deterministic, 1);
        faulted.set_fault_plan(&FaultPlan::new(3));
        let mut clean = relay_chain(4, TickSemantics::Deterministic, 1);
        for chip in [&mut faulted, &mut clean] {
            chip.inject(0, 0, 0, 0).unwrap();
        }
        assert_eq!(faulted.run(6), clean.run(6));
        assert!(faulted.fault_stats().is_empty());
    }

    #[test]
    fn dropped_core_breaks_the_chain() {
        // Core dropout at 100%: every core is dead, so even the injected
        // spike integrates into silence.
        let mut chip = relay_chain(3, TickSemantics::Deterministic, 1);
        chip.set_fault_plan(&FaultPlan::new(5).with_core_dropout(1.0));
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, spikes) = chip.run(6);
        assert!(outputs.is_empty());
        assert_eq!(spikes, 0);
        assert_eq!(chip.fault_stats().cores_dropped, 3);
    }

    #[test]
    fn corrupted_spikes_stay_on_grid_and_deliver_or_count() {
        // 100% corruption: every routed spike is retargeted somewhere on
        // the grid. The run must complete, and every launch is accounted
        // for as either a corrupted delivery or a failed one.
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.set_fault_plan(&FaultPlan::new(9).with_link_corrupt(1.0));
        for t in 0..8 {
            chip.inject(0, 0, 0, t).unwrap();
        }
        chip.run(16);
        let stats = chip.fault_stats();
        assert!(stats.packets_corrupted > 0);
        assert!(stats.deliveries_failed <= stats.packets_corrupted);
    }

    #[test]
    fn delay_fault_postpones_output() {
        // 100% delay of 3 extra ticks on a 2-core chain: the relay hop
        // lands 3 ticks later; the final output-pad crossing is also hit
        // but delay has no meaning there, so only arrival time shifts.
        let mut clean = relay_chain(2, TickSemantics::Deterministic, 1);
        clean.inject(0, 0, 0, 0).unwrap();
        let (clean_out, _) = clean.run(12);

        let mut slow = relay_chain(2, TickSemantics::Deterministic, 1);
        slow.set_fault_plan(&FaultPlan::new(2).with_link_delay(1.0, 3));
        slow.inject(0, 0, 0, 0).unwrap();
        let (slow_out, _) = slow.run(12);

        assert_eq!(clean_out, vec![(1, 99)]);
        assert_eq!(slow_out, vec![(4, 99)]);
        // Only the inter-core hop counts: output-pad crossings cannot be
        // delayed, so the launch from the last core is unaffected.
        assert_eq!(slow.fault_stats().packets_delayed, 1);
    }

    #[test]
    fn reset_clears_event_faults_but_keeps_the_plan_armed() {
        let mut chip = relay_chain(3, TickSemantics::Deterministic, 1);
        chip.set_fault_plan(&FaultPlan::new(4).with_link_drop(1.0));
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(4);
        assert!(chip.fault_stats().packets_dropped > 0);
        chip.reset();
        assert_eq!(chip.fault_stats().packets_dropped, 0);
        // The injector persists: faults keep firing after reset.
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = chip.run(4);
        assert!(outputs.is_empty());
        assert!(chip.fault_stats().packets_dropped > 0);
    }

    #[test]
    fn westward_and_vertical_routing() {
        // 2×2 grid: (1, 1) → (0, 0) via offset (−1, −1).
        let mut b = ChipBuilder::new(ChipConfig {
            width: 2,
            height: 2,
            core_axons: 2,
            core_neurons: 2,
            ..ChipConfig::default()
        });
        b.core_mut(1, 1)
            .neuron(
                0,
                relay_config(),
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(-1, -1),
                    axon: 1,
                    delay: 2,
                }),
            )
            .unwrap();
        b.core_mut(1, 1).synapse(0, 0, true).unwrap();
        b.core_mut(0, 0)
            .neuron(1, relay_config(), Destination::Output(5))
            .unwrap();
        b.core_mut(0, 0).axon_type(1, AxonType::A0).unwrap();
        b.core_mut(0, 0).synapse(1, 1, true).unwrap();
        let mut chip = b.build().unwrap();
        chip.inject(1, 1, 0, 0).unwrap();
        let (outputs, _) = chip.run(5);
        // Fires at (1,1) tick 0; delay 2 → (0,0) integrates tick 2.
        assert_eq!(outputs, vec![(2, 5)]);
        assert_eq!(chip.hops(), 2);
    }

    #[test]
    fn telemetry_records_mirror_tick_observables() {
        use brainsim_telemetry::TelemetryConfig;
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.enable_telemetry(TelemetryConfig::unbounded());
        chip.inject(0, 0, 0, 0).unwrap();
        let mut summaries = Vec::new();
        for _ in 0..6 {
            summaries.push(chip.tick());
        }
        let log = chip.telemetry().expect("telemetry enabled");
        assert_eq!(log.len(), 6);
        for (record, summary) in log.records().zip(&summaries) {
            assert_eq!(record.tick, summary.tick);
            assert_eq!(record.spikes, summary.spikes);
            assert_eq!(record.outputs as usize, summary.outputs.len());
            assert_eq!(record.faults, summary.faults);
            assert_eq!(record.cores_evaluated as u64, summary.cores_evaluated);
            assert_eq!(
                record.cores_evaluated as usize + record.cores_skipped as usize,
                4
            );
            assert_eq!(record.energy.ticks, 1);
            // Per-core detail covers exactly the evaluated cores, in order.
            assert_eq!(record.cores.len() as u64, summary.cores_evaluated);
            let spikes: u64 = record.cores.iter().map(|c| c.spikes as u64).sum();
            assert_eq!(spikes, record.spikes);
        }
        // The per-tick energy deltas sum to the chip's cumulative census,
        // and the run summary agrees with the chip accumulators.
        let mut energy_total = EventCensus::default();
        for record in log.records() {
            energy_total.merge(&record.energy);
        }
        assert_eq!(energy_total, chip.census());
        let s = log.summary();
        assert_eq!(s.hops, chip.hops());
        assert_eq!(s.spikes, 4);
        assert_eq!(s.core_spikes, vec![1, 1, 1, 1]);
        assert_eq!(s.hop_histogram.total(), 3, "three 1-hop relay deliveries");
    }

    #[test]
    fn telemetry_does_not_perturb_results() {
        let run = |instrument: bool| {
            let mut chip = relay_chain(6, TickSemantics::Deterministic, 2);
            if instrument {
                chip.enable_telemetry(brainsim_telemetry::TelemetryConfig::default());
            }
            for t in 0..6 {
                chip.inject(0, 0, 0, t).unwrap();
            }
            let out = chip.run(16);
            (out, chip.census(), chip.fault_stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn telemetry_stream_is_thread_count_invariant() {
        let run = |threads: usize| {
            let mut chip = relay_chain(8, TickSemantics::Deterministic, threads);
            chip.enable_telemetry(brainsim_telemetry::TelemetryConfig::unbounded());
            chip.set_fault_plan(
                &FaultPlan::new(21)
                    .with_link_corrupt(0.3)
                    .with_link_delay(0.3, 2),
            );
            for t in 0..8 {
                chip.inject(0, 0, 0, t).unwrap();
            }
            chip.run(24);
            *chip.take_telemetry().expect("telemetry enabled")
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn scheduler_meta_records_host_clamped_thread_count() {
        use brainsim_telemetry::TelemetryConfig;
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // An absurdly oversubscribed config must clamp to the host.
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 4096);
        assert_eq!(chip.effective_threads(), 4096.min(host));
        chip.enable_telemetry(TelemetryConfig::unbounded());
        chip.inject(0, 0, 0, 0).unwrap();
        chip.tick();
        let log = chip.telemetry().expect("telemetry enabled");
        let record = log.records().next().expect("one record");
        assert_eq!(record.scheduler.threads_configured, 4096);
        assert_eq!(record.scheduler.threads_effective as usize, 4096.min(host));
        // The relaxed path annotates too.
        let mut relaxed = relay_chain(2, TickSemantics::Relaxed, 1);
        relaxed.enable_telemetry(TelemetryConfig::unbounded());
        relaxed.tick();
        let log = relaxed.telemetry().expect("telemetry enabled");
        let record = log.records().next().expect("one record");
        assert_eq!(record.scheduler.threads_configured, 1);
        assert_eq!(record.scheduler.threads_effective, 1);
    }

    #[test]
    fn telemetry_relaxed_path_records_too() {
        use brainsim_telemetry::TelemetryConfig;
        let mut chip = relay_chain(4, TickSemantics::Relaxed, 1);
        chip.enable_telemetry(TelemetryConfig::unbounded());
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(3);
        let log = chip.telemetry().expect("telemetry enabled");
        assert_eq!(log.len(), 3);
        // Relaxed collapses the chain into tick 0: all four spikes land in
        // the first record.
        let first = log.records().next().expect("record for tick 0");
        assert_eq!(first.spikes, 4);
        assert_eq!(first.outputs, 1);
        assert_eq!(first.cores.len(), 4);
        let mut energy_total = EventCensus::default();
        for record in log.records() {
            energy_total.merge(&record.energy);
        }
        assert_eq!(energy_total, chip.census());
    }

    #[test]
    fn telemetry_reset_restarts_collection() {
        use brainsim_telemetry::TelemetryConfig;
        let mut chip = relay_chain(2, TickSemantics::Deterministic, 1);
        chip.enable_telemetry(TelemetryConfig::default());
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(4);
        assert_eq!(chip.telemetry().map(|l| l.len()), Some(4));
        chip.reset();
        let log = chip.telemetry().expect("telemetry survives reset");
        assert!(log.is_empty());
        assert_eq!(log.summary().ticks, 0);
        chip.run(2);
        assert_eq!(chip.telemetry().map(|l| l.len()), Some(2));
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        // Run 3 ticks, checkpoint, and compare the remaining ticks of the
        // restored chip against the uninterrupted original, summary by
        // summary.
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 2);
        for t in 0..6 {
            chip.inject(0, 0, 0, t).unwrap();
        }
        chip.tick();
        chip.tick();
        chip.tick();
        let snapshot = chip.checkpoint();
        let bytes = snapshot.to_bytes();
        let mut resumed =
            Chip::restore(Snapshot::from_bytes(&bytes).expect("decode")).expect("restore");
        assert_eq!(resumed.now(), chip.now());
        for _ in 0..8 {
            assert_eq!(resumed.tick(), chip.tick());
        }
        assert_eq!(resumed.hops(), chip.hops());
        assert_eq!(resumed.outputs_total(), chip.outputs_total());
        assert_eq!(resumed.fault_stats(), chip.fault_stats());
        assert_eq!(resumed.census(), chip.census());
    }

    #[test]
    fn restore_rearms_link_faults_without_reburning_structural_ones() {
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        let plan = FaultPlan::new(7).with_link_drop(0.3).with_dead_neuron(0.25);
        chip.set_fault_plan(&plan);
        let structural_before = chip.fault_stats().neurons_dead;
        for t in 0..10 {
            chip.inject(0, 0, 0, t).unwrap();
        }
        chip.run(4);
        let mut resumed = Chip::restore(chip.checkpoint()).expect("restore");
        // Structural faults must come through the core images untouched,
        // not be re-rolled or compounded by restore.
        assert_eq!(resumed.fault_stats().neurons_dead, structural_before);
        for _ in 0..10 {
            assert_eq!(resumed.tick(), chip.tick());
        }
        assert_eq!(resumed.fault_stats(), chip.fault_stats());
    }

    #[test]
    fn restored_telemetry_is_marked_and_does_not_double_count() {
        use brainsim_telemetry::TelemetryConfig;
        let mut chip = relay_chain(3, TickSemantics::Deterministic, 1);
        chip.enable_telemetry(TelemetryConfig::default());
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(4);
        let ticks_before = chip.telemetry().expect("log").summary().ticks;
        let mut resumed = Chip::restore(chip.checkpoint()).expect("restore");
        let log = resumed.telemetry().expect("telemetry restored");
        assert!(log.is_empty(), "record ring must restart empty");
        assert_eq!(log.summary().resumed_from_tick, Some(4));
        assert_eq!(log.summary().ticks, ticks_before);
        resumed.run(2);
        chip.run(2);
        let (a, b) = (
            resumed.take_telemetry().unwrap(),
            chip.take_telemetry().unwrap(),
        );
        // Cumulative counters match the uninterrupted run exactly; only the
        // resume marker differs.
        let mut normalized = a.summary().clone();
        normalized.resumed_from_tick = None;
        assert_eq!(&normalized, b.summary());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let chip = relay_chain(2, TickSemantics::Deterministic, 1);
        let good = chip.checkpoint();

        let mut wrong_count = good.clone();
        wrong_count.cores.pop();
        assert!(matches!(
            Chip::restore(wrong_count),
            Err(RestoreError::Invalid(_))
        ));

        let mut skewed_clock = good.clone();
        skewed_clock.cores[1].now += 1;
        assert!(matches!(
            Chip::restore(skewed_clock),
            Err(RestoreError::Invalid(_))
        ));

        let mut relaxed_parallel = good.clone();
        relaxed_parallel.config.semantics = TickSemantics::Relaxed;
        relaxed_parallel.config.threads = 8;
        assert!(matches!(
            Chip::restore(relaxed_parallel),
            Err(RestoreError::Invalid(_))
        ));

        let mut zero_dim = good;
        zero_dim.config.width = 0;
        assert!(matches!(
            Chip::restore(zero_dim),
            Err(RestoreError::Invalid(_))
        ));
    }

    #[test]
    fn steppable_seam_drives_a_chip_it_does_not_own() {
        // A scheduler-shaped driver: owns nothing, sees only the trait.
        fn drive(chip: &mut dyn Steppable, ticks: u64) -> Vec<u32> {
            let mut outputs = Vec::new();
            for _ in 0..ticks {
                let summary = chip.try_tick().expect("healthy chip");
                outputs.extend(summary.outputs);
            }
            outputs
        }

        let mut owned = relay_chain(3, TickSemantics::Deterministic, 1);
        owned.inject(0, 0, 0, 0).unwrap();
        let via_seam = drive(&mut owned, 6);

        let mut reference = relay_chain(3, TickSemantics::Deterministic, 1);
        reference.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = reference.run(6);
        assert_eq!(
            via_seam,
            outputs.iter().map(|&(_, p)| p).collect::<Vec<_>>()
        );
        assert_eq!(Steppable::now(&owned), 6);
        assert_eq!(
            Steppable::pending_events_total(&owned),
            owned.pending_events_total()
        );
    }

    #[test]
    fn chaos_desync_poisons_exactly_one_tick_later() {
        // Under both schedulers the poisoned core must fail the next tick
        // as a typed error — including the deferred-skip scheduler, which
        // would otherwise never touch a quiescent core.
        for scheduling in [CoreScheduling::Active, CoreScheduling::Sweep] {
            let mut chip = relay_chain_with(4, TickSemantics::Deterministic, 1, scheduling);
            chip.try_tick().expect("healthy before poisoning");
            assert!(chip.chaos_desync_core(2));
            let err = chip.try_tick().expect_err("poisoned core must fail");
            let TickError::CorePanicked { core, message, .. } = err;
            assert_eq!(core, 2);
            assert!(message.contains("out of tick order"), "got: {message}");
        }
        // Out-of-range index: refused, chip stays healthy.
        let mut chip = relay_chain(2, TickSemantics::Deterministic, 1);
        assert!(!chip.chaos_desync_core(99));
        chip.try_tick().expect("still healthy");
    }

    #[test]
    fn snapshot_survives_the_file_layer() {
        let dir = std::env::temp_dir().join(format!("brainsim-chip-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chip.bsnp");
        let mut chip = relay_chain(3, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(2);
        chip.checkpoint().save(&path).expect("save");
        let loaded = Snapshot::load(&path).expect("load");
        assert_eq!(loaded, chip.checkpoint());
        let mut resumed = Chip::restore(loaded).expect("restore");
        for _ in 0..4 {
            assert_eq!(resumed.tick(), chip.tick());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
