//! The chip runtime: tick barrier, spike routing, event accounting.

use std::fmt;

use brainsim_core::{Destination, NeurosynapticCore};
use brainsim_energy::EventCensus;
use brainsim_faults::{FaultInjector, FaultPlan, FaultStats, LinkFault};
use brainsim_noc::route_hops;

use crate::config::{ChipConfig, TickSemantics};

/// What happened during one chip tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickSummary {
    /// The tick that was evaluated.
    pub tick: u64,
    /// Total spikes produced by all cores.
    pub spikes: u64,
    /// External output events (port ids), in deterministic core/neuron order.
    pub outputs: Vec<u32>,
    /// Link faults suffered by this tick's spike deliveries (all zero
    /// without a fault plan).
    pub faults: FaultStats,
}

/// Error from [`Chip::inject`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// Core coordinates outside the grid.
    OffGrid(usize, usize),
    /// The core rejected the delivery (bad axon or timing horizon).
    Deliver(brainsim_core::DeliverError),
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::OffGrid(x, y) => write!(f, "core ({x}, {y}) outside the grid"),
            InjectError::Deliver(e) => write!(f, "delivery failed: {e}"),
        }
    }
}

impl std::error::Error for InjectError {}

impl From<brainsim_core::DeliverError> for InjectError {
    fn from(e: brainsim_core::DeliverError) -> Self {
        InjectError::Deliver(e)
    }
}

/// A configured chip; see the crate docs for the execution model.
#[derive(Debug, Clone)]
pub struct Chip {
    config: ChipConfig,
    cores: Vec<NeurosynapticCore>,
    now: u64,
    hops: u64,
    link_crossings: u64,
    outputs_total: u64,
    /// Link-fault injector for inter-core spike routing; `None` (the
    /// default) keeps the routing loop fault-free.
    injector: Option<FaultInjector>,
    /// Cumulative chip-level (routing) fault accounting.
    fault_stats: FaultStats,
}

impl Chip {
    pub(crate) fn from_parts(config: ChipConfig, cores: Vec<NeurosynapticCore>) -> Chip {
        Chip {
            config,
            cores,
            now: 0,
            hops: 0,
            link_crossings: 0,
            outputs_total: 0,
            injector: None,
            fault_stats: FaultStats::default(),
        }
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The next tick to be evaluated.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total mesh hops charged so far.
    pub fn hops(&self) -> u64 {
        self.hops
    }

    /// Total inter-chip (tile boundary) link crossings so far.
    pub fn link_crossings(&self) -> u64 {
        self.link_crossings
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        y * self.config.width + x
    }

    /// Read access to core `(x, y)`, or `None` if the coordinates lie
    /// outside the grid.
    pub fn core(&self, x: usize, y: usize) -> Option<&NeurosynapticCore> {
        if x < self.config.width && y < self.config.height {
            Some(&self.cores[y * self.config.width + x])
        } else {
            None
        }
    }

    /// Applies a fault plan chip-wide: structural faults (dropout, dead /
    /// stuck neurons, stuck-at synapses) are burned into every core, and
    /// link faults (drop / corrupt / delay) arm the spike-routing loop.
    ///
    /// Apply a plan at most once, before the first tick. A benign plan is a
    /// no-op and leaves the fault-free fast path intact.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        let injector = FaultInjector::new(plan);
        if injector.is_benign() {
            return;
        }
        for idx in 0..self.cores.len() {
            let x = idx % self.config.width;
            let y = idx / self.config.width;
            self.cores[idx].apply_faults(&injector, x, y);
        }
        if injector.has_link_faults() {
            self.injector = Some(injector);
        }
    }

    /// Aggregate fault statistics: routing-level faults plus every core's
    /// structural and spike faults.
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = self.fault_stats;
        for core in &self.cores {
            total.merge(&core.stats().faults);
        }
        total
    }

    /// Injects an external spike onto axon `axon` of core `(x, y)`, due at
    /// `target_tick`.
    ///
    /// # Errors
    ///
    /// [`InjectError::OffGrid`] for bad coordinates, otherwise the core's
    /// own validation ([`brainsim_core::DeliverError`]).
    pub fn inject(
        &mut self,
        x: usize,
        y: usize,
        axon: usize,
        target_tick: u64,
    ) -> Result<(), InjectError> {
        if x >= self.config.width || y >= self.config.height {
            return Err(InjectError::OffGrid(x, y));
        }
        let idx = self.index(x, y);
        self.cores[idx].deliver(axon, target_tick)?;
        Ok(())
    }

    /// Evaluates one global tick.
    pub fn tick(&mut self) -> TickSummary {
        let t = self.now;
        match self.config.semantics {
            TickSemantics::Deterministic => self.tick_deterministic(t),
            TickSemantics::Relaxed => self.tick_relaxed(t),
        }
    }

    fn tick_deterministic(&mut self, t: u64) -> TickSummary {
        // Phase A: evaluate every core at tick t (parallel if configured).
        let fired: Vec<Vec<u16>> = if self.config.threads > 1 && self.cores.len() > 1 {
            let threads = self.config.threads.min(self.cores.len());
            let chunk = self.cores.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .cores
                    .chunks_mut(chunk)
                    .map(|cores| {
                        scope.spawn(move || {
                            cores.iter_mut().map(|c| c.tick(t)).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("core evaluation thread panicked"))
                    .collect()
            })
        } else {
            self.cores.iter_mut().map(|c| c.tick(t)).collect()
        };

        // Phase B: route every spike launched in tick t.
        let injector = self.injector.clone();
        let mut outputs = Vec::new();
        let mut spikes = 0u64;
        let mut faults = FaultStats::default();
        for (core_index, fired_neurons) in fired.iter().enumerate() {
            spikes += fired_neurons.len() as u64;
            let x = core_index % self.config.width;
            let y = core_index / self.config.width;
            for &neuron in fired_neurons {
                // One spike launches per (tick, core, neuron): a unique,
                // order-independent fault-decision coordinate.
                let fault = injector
                    .as_ref()
                    .and_then(|i| i.link_fault(t, core_index as u64, neuron as u64));
                match self.cores[core_index].destination(neuron as usize) {
                    Destination::Disabled => {}
                    Destination::Output(port) => {
                        // Output pads cross one peripheral link; drops
                        // apply, corruption/delay have no meaning there.
                        if matches!(fault, Some(LinkFault::Drop)) {
                            faults.packets_dropped += 1;
                        } else {
                            outputs.push(port);
                        }
                    }
                    Destination::Axon(target) => {
                        if matches!(fault, Some(LinkFault::Drop)) {
                            faults.packets_dropped += 1;
                            continue;
                        }
                        let (mut tx, mut ty) = (
                            (x as i64 + target.offset.dx as i64) as usize,
                            (y as i64 + target.offset.dy as i64) as usize,
                        );
                        let mut extra_delay = 0u64;
                        match fault {
                            Some(LinkFault::Corrupt { salt }) => {
                                faults.packets_corrupted += 1;
                                (tx, ty) = brainsim_faults::pick_cell(
                                    salt,
                                    self.config.width,
                                    self.config.height,
                                );
                            }
                            Some(LinkFault::Delay(ticks)) => {
                                faults.packets_delayed += 1;
                                extra_delay = ticks as u64;
                            }
                            _ => {}
                        }
                        let tidx = ty * self.config.width + tx;
                        self.hops +=
                            route_hops((tx as i64 - x as i64) as i32, (ty as i64 - y as i64) as i32)
                                as u64;
                        let crossings = self.config.crossings((x, y), (tx, ty));
                        let link_delay = crossings as u64
                            * self.config.tile.map(|tc| tc.link_latency as u64).unwrap_or(0);
                        self.link_crossings += crossings as u64;
                        let due = t + target.delay as u64 + link_delay + extra_delay;
                        if self.cores[tidx].deliver(target.axon as usize, due).is_err() {
                            // Builder-validated wiring cannot fail here, so a
                            // refused delivery is always fault-induced (bad
                            // corrupted axon, or a delay past the scheduling
                            // horizon): absorb and count it.
                            faults.deliveries_failed += 1;
                        }
                    }
                }
            }
        }

        self.fault_stats.merge(&faults);
        self.outputs_total += outputs.len() as u64;
        self.now = t + 1;
        TickSummary {
            tick: t,
            spikes,
            outputs,
            faults,
        }
    }

    fn tick_relaxed(&mut self, t: u64) -> TickSummary {
        // Interleaved sweep: each core is evaluated and its spikes delivered
        // immediately with effective delay d − 1. Cores earlier in the sweep
        // may thus receive same-tick events from cores later in the sweep
        // only at t + 1 — the order dependence this mode exists to exhibit.
        let injector = self.injector.clone();
        let mut outputs = Vec::new();
        let mut spikes = 0u64;
        let mut faults = FaultStats::default();
        for core_index in 0..self.cores.len() {
            let fired = self.cores[core_index].tick(t);
            spikes += fired.len() as u64;
            let x = core_index % self.config.width;
            let y = core_index / self.config.width;
            for &neuron in &fired {
                let fault = injector
                    .as_ref()
                    .and_then(|i| i.link_fault(t, core_index as u64, neuron as u64));
                match self.cores[core_index].destination(neuron as usize) {
                    Destination::Disabled => {}
                    Destination::Output(port) => {
                        if matches!(fault, Some(LinkFault::Drop)) {
                            faults.packets_dropped += 1;
                        } else {
                            outputs.push(port);
                        }
                    }
                    Destination::Axon(target) => {
                        if matches!(fault, Some(LinkFault::Drop)) {
                            faults.packets_dropped += 1;
                            continue;
                        }
                        let (mut tx, mut ty) = (
                            (x as i64 + target.offset.dx as i64) as usize,
                            (y as i64 + target.offset.dy as i64) as usize,
                        );
                        let mut extra_delay = 0u64;
                        match fault {
                            Some(LinkFault::Corrupt { salt }) => {
                                faults.packets_corrupted += 1;
                                (tx, ty) = brainsim_faults::pick_cell(
                                    salt,
                                    self.config.width,
                                    self.config.height,
                                );
                            }
                            Some(LinkFault::Delay(ticks)) => {
                                faults.packets_delayed += 1;
                                extra_delay = ticks as u64;
                            }
                            _ => {}
                        }
                        let tidx = ty * self.config.width + tx;
                        self.hops +=
                            route_hops((tx as i64 - x as i64) as i32, (ty as i64 - y as i64) as i32)
                                as u64;
                        let crossings = self.config.crossings((x, y), (tx, ty));
                        let link_delay = crossings as u64
                            * self.config.tile.map(|tc| tc.link_latency as u64).unwrap_or(0);
                        self.link_crossings += crossings as u64;
                        let eager = t + target.delay as u64 - 1 + link_delay + extra_delay;
                        let delivery = eager.max(self.cores[tidx].now());
                        if self.cores[tidx].deliver(target.axon as usize, delivery).is_err() {
                            faults.deliveries_failed += 1;
                        }
                    }
                }
            }
        }
        self.fault_stats.merge(&faults);
        self.outputs_total += outputs.len() as u64;
        self.now = t + 1;
        TickSummary {
            tick: t,
            spikes,
            outputs,
            faults,
        }
    }

    /// Runs `ticks` ticks, returning the concatenated output events as
    /// `(tick, port)` pairs and the total spike count.
    pub fn run(&mut self, ticks: u64) -> (Vec<(u64, u32)>, u64) {
        let mut outputs = Vec::new();
        let mut spikes = 0;
        for _ in 0..ticks {
            let summary = self.tick();
            spikes += summary.spikes;
            outputs.extend(summary.outputs.iter().map(|&p| (summary.tick, p)));
        }
        (outputs, spikes)
    }

    /// The cumulative event census for the energy model.
    pub fn census(&self) -> EventCensus {
        let fault_totals = self.fault_stats();
        let mut census = EventCensus {
            cores: self.cores.len() as u64,
            hops: self.hops,
            link_crossings: self.link_crossings,
            packets_dropped: fault_totals.packets_dropped + fault_totals.flits_dropped_overflow,
            ..Default::default()
        };
        let mut ticks = 0;
        for core in &self.cores {
            let s = core.stats();
            census.synaptic_events += s.synaptic_events;
            census.neuron_updates += s.neuron_updates;
            census.spikes += s.spikes;
            census.axon_events += s.axon_events;
            ticks = ticks.max(s.ticks);
        }
        census.ticks = ticks;
        census
    }

    /// Resets all cores, the tick counter and the accounting; keeps wiring.
    pub fn reset(&mut self) {
        for core in &mut self.cores {
            core.reset();
        }
        self.now = 0;
        self.hops = 0;
        self.link_crossings = 0;
        self.outputs_total = 0;
        // Event-level fault counts clear; the injector and the cores'
        // structural faults persist (defective silicon stays defective).
        self.fault_stats = FaultStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use brainsim_core::{AxonTarget, AxonType, CoreOffset, NeuronConfig, Weight};

    fn relay_config() -> NeuronConfig {
        NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .unwrap()
    }

    /// A 1×N chain of relay cores: input at core 0 axon 0, each core's
    /// neuron 0 forwards east to the next core's axon 0; the last core
    /// outputs to port 99.
    fn relay_chain(n: usize, semantics: TickSemantics, threads: usize) -> Chip {
        let mut b = ChipBuilder::new(ChipConfig {
            width: n,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            semantics,
            threads,
            ..ChipConfig::default()
        });
        for x in 0..n {
            let dest = if x + 1 < n {
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(1, 0),
                    axon: 0,
                    delay: 1,
                })
            } else {
                Destination::Output(99)
            };
            b.core_mut(x, 0).neuron(0, relay_config(), dest).unwrap();
            b.core_mut(x, 0).synapse(0, 0, true).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn spike_propagates_one_core_per_tick() {
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        // Core 0 fires at tick 0, core 1 at tick 1, ..., output at tick 3.
        let (outputs, spikes) = chip.run(6);
        assert_eq!(outputs, vec![(3, 99)]);
        assert_eq!(spikes, 4);
        assert_eq!(chip.hops(), 3);
    }

    #[test]
    fn relaxed_semantics_propagates_same_tick_along_sweep_order() {
        // With the relaxed ablation, a west→east chain rides the sweep
        // order: the whole chain fires within a single tick.
        let mut chip = relay_chain(4, TickSemantics::Relaxed, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = chip.run(2);
        assert_eq!(outputs, vec![(0, 99)], "relaxed mode collapses the chain into one tick");
    }

    #[test]
    fn deterministic_results_are_thread_count_invariant() {
        let run = |threads: usize| {
            let mut chip = relay_chain(8, TickSemantics::Deterministic, threads);
            for t in 0..8 {
                chip.inject(0, 0, 0, t).unwrap();
            }
            chip.run(20)
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn inject_validation() {
        let mut chip = relay_chain(2, TickSemantics::Deterministic, 1);
        assert!(matches!(chip.inject(5, 0, 0, 0), Err(InjectError::OffGrid(5, 0))));
        assert!(matches!(chip.inject(0, 0, 9, 0), Err(InjectError::Deliver(_))));
        assert!(matches!(chip.inject(0, 0, 0, 99), Err(InjectError::Deliver(_))));
    }

    #[test]
    fn census_accumulates_all_cores() {
        let mut chip = relay_chain(3, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(5);
        let census = chip.census();
        assert_eq!(census.cores, 3);
        assert_eq!(census.ticks, 5);
        assert_eq!(census.spikes, 3);
        assert_eq!(census.synaptic_events, 3);
        assert_eq!(census.hops, 2);
        // 2 neurons × 3 cores × 5 ticks.
        assert_eq!(census.neuron_updates, 30);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut chip = relay_chain(2, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(4);
        chip.reset();
        assert_eq!(chip.now(), 0);
        assert_eq!(chip.hops(), 0);
        assert_eq!(chip.census().spikes, 0);
        // Still functional after reset.
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = chip.run(3);
        assert_eq!(outputs, vec![(1, 99)]);
    }

    #[test]
    fn tiled_chain_adds_link_latency_at_boundaries() {
        use crate::config::TileConfig;
        // 4 cores in a row, tiled 2×1: the boundary between cores 1 and 2
        // is an inter-chip link with 3 ticks of latency.
        let mut b = ChipBuilder::new(ChipConfig {
            width: 4,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            tile: Some(TileConfig {
                width: 2,
                height: 1,
                link_latency: 3,
            }),
            ..ChipConfig::default()
        });
        for x in 0..4 {
            let dest = if x + 1 < 4 {
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(1, 0),
                    axon: 0,
                    delay: 1,
                })
            } else {
                Destination::Output(9)
            };
            b.core_mut(x, 0).neuron(0, relay_config(), dest).unwrap();
            b.core_mut(x, 0).synapse(0, 0, true).unwrap();
        }
        let mut chip = b.build().unwrap();
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = chip.run(10);
        // Hops 0→1 (1 tick), 1→2 (+1 +3 link), 2→3 (1): output at tick 6.
        assert_eq!(outputs, vec![(6, 9)]);
        assert_eq!(chip.link_crossings(), 1);
        assert_eq!(chip.census().link_crossings, 1);
    }

    #[test]
    fn link_latency_beyond_horizon_rejected() {
        use crate::config::TileConfig;
        let mut b = ChipBuilder::new(ChipConfig {
            width: 4,
            height: 1,
            core_axons: 2,
            core_neurons: 2,
            tile: Some(TileConfig {
                width: 1,
                height: 1,
                link_latency: 8,
            }),
            ..ChipConfig::default()
        });
        // Target 2 tiles away: delay 1 + 2 × 8 = 17 > 15.
        b.core_mut(0, 0)
            .neuron(
                0,
                relay_config(),
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(2, 0),
                    axon: 0,
                    delay: 1,
                }),
            )
            .unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            crate::builder::ChipBuildError::LinkDelayBeyondHorizon { total: 17, .. }
        ));
    }

    #[test]
    fn untiled_chip_has_no_link_crossings() {
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(6);
        assert_eq!(chip.link_crossings(), 0);
    }

    #[test]
    fn total_link_fault_still_completes_run() {
        // Acceptance: with every link faulted (100% drop), `Chip::run`
        // completes without panicking — all traffic is dropped, nothing
        // escapes to the output pads.
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.set_fault_plan(&FaultPlan::new(7).with_link_drop(1.0));
        for t in 0..8 {
            chip.inject(0, 0, 0, t).unwrap();
        }
        let (outputs, spikes) = chip.run(16);
        assert!(outputs.is_empty(), "all output traffic must be dropped");
        // Core 0 still fires on the injected spikes; nothing propagates.
        assert_eq!(spikes, 8);
        let stats = chip.fault_stats();
        assert_eq!(stats.packets_dropped, 8);
        assert_eq!(stats.total(), 8);
    }

    #[test]
    fn fault_plan_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut chip = relay_chain(6, TickSemantics::Deterministic, 1);
            chip.set_fault_plan(&FaultPlan::new(seed).with_link_drop(0.4));
            let mut trace = Vec::new();
            let mut spikes = 0;
            for t in 0..48 {
                if t < 32 {
                    chip.inject(0, 0, 0, t).unwrap();
                }
                let summary = chip.tick();
                spikes += summary.spikes;
                trace.extend(summary.outputs.iter().map(|&p| (t, p)));
            }
            (trace, spikes, chip.fault_stats())
        };
        assert_eq!(run(11), run(11), "same seed must reproduce exactly");
        assert_ne!(run(11).0, run(12).0, "different seeds must diverge");
    }

    #[test]
    fn benign_plan_leaves_chip_on_fast_path() {
        let mut faulted = relay_chain(4, TickSemantics::Deterministic, 1);
        faulted.set_fault_plan(&FaultPlan::new(3));
        let mut clean = relay_chain(4, TickSemantics::Deterministic, 1);
        for chip in [&mut faulted, &mut clean] {
            chip.inject(0, 0, 0, 0).unwrap();
        }
        assert_eq!(faulted.run(6), clean.run(6));
        assert!(faulted.fault_stats().is_empty());
    }

    #[test]
    fn dropped_core_breaks_the_chain() {
        // Core dropout at 100%: every core is dead, so even the injected
        // spike integrates into silence.
        let mut chip = relay_chain(3, TickSemantics::Deterministic, 1);
        chip.set_fault_plan(&FaultPlan::new(5).with_core_dropout(1.0));
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, spikes) = chip.run(6);
        assert!(outputs.is_empty());
        assert_eq!(spikes, 0);
        assert_eq!(chip.fault_stats().cores_dropped, 3);
    }

    #[test]
    fn corrupted_spikes_stay_on_grid_and_deliver_or_count() {
        // 100% corruption: every routed spike is retargeted somewhere on
        // the grid. The run must complete, and every launch is accounted
        // for as either a corrupted delivery or a failed one.
        let mut chip = relay_chain(4, TickSemantics::Deterministic, 1);
        chip.set_fault_plan(&FaultPlan::new(9).with_link_corrupt(1.0));
        for t in 0..8 {
            chip.inject(0, 0, 0, t).unwrap();
        }
        chip.run(16);
        let stats = chip.fault_stats();
        assert!(stats.packets_corrupted > 0);
        assert!(stats.deliveries_failed <= stats.packets_corrupted);
    }

    #[test]
    fn delay_fault_postpones_output() {
        // 100% delay of 3 extra ticks on a 2-core chain: the relay hop
        // lands 3 ticks later; the final output-pad crossing is also hit
        // but delay has no meaning there, so only arrival time shifts.
        let mut clean = relay_chain(2, TickSemantics::Deterministic, 1);
        clean.inject(0, 0, 0, 0).unwrap();
        let (clean_out, _) = clean.run(12);

        let mut slow = relay_chain(2, TickSemantics::Deterministic, 1);
        slow.set_fault_plan(&FaultPlan::new(2).with_link_delay(1.0, 3));
        slow.inject(0, 0, 0, 0).unwrap();
        let (slow_out, _) = slow.run(12);

        assert_eq!(clean_out, vec![(1, 99)]);
        assert_eq!(slow_out, vec![(4, 99)]);
        // Only the inter-core hop counts: output-pad crossings cannot be
        // delayed, so the launch from the last core is unaffected.
        assert_eq!(slow.fault_stats().packets_delayed, 1);
    }

    #[test]
    fn reset_clears_event_faults_but_keeps_the_plan_armed() {
        let mut chip = relay_chain(3, TickSemantics::Deterministic, 1);
        chip.set_fault_plan(&FaultPlan::new(4).with_link_drop(1.0));
        chip.inject(0, 0, 0, 0).unwrap();
        chip.run(4);
        assert!(chip.fault_stats().packets_dropped > 0);
        chip.reset();
        assert_eq!(chip.fault_stats().packets_dropped, 0);
        // The injector persists: faults keep firing after reset.
        chip.inject(0, 0, 0, 0).unwrap();
        let (outputs, _) = chip.run(4);
        assert!(outputs.is_empty());
        assert!(chip.fault_stats().packets_dropped > 0);
    }

    #[test]
    fn westward_and_vertical_routing() {
        // 2×2 grid: (1, 1) → (0, 0) via offset (−1, −1).
        let mut b = ChipBuilder::new(ChipConfig {
            width: 2,
            height: 2,
            core_axons: 2,
            core_neurons: 2,
            ..ChipConfig::default()
        });
        b.core_mut(1, 1)
            .neuron(
                0,
                relay_config(),
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(-1, -1),
                    axon: 1,
                    delay: 2,
                }),
            )
            .unwrap();
        b.core_mut(1, 1).synapse(0, 0, true).unwrap();
        b.core_mut(0, 0)
            .neuron(1, relay_config(), Destination::Output(5))
            .unwrap();
        b.core_mut(0, 0).axon_type(1, AxonType::A0).unwrap();
        b.core_mut(0, 0).synapse(1, 1, true).unwrap();
        let mut chip = b.build().unwrap();
        chip.inject(1, 1, 0, 0).unwrap();
        let (outputs, _) = chip.run(5);
        // Fires at (1,1) tick 0; delay 2 → (0,0) integrates tick 2.
        assert_eq!(outputs, vec![(2, 5)]);
        assert_eq!(chip.hops(), 2);
    }
}
