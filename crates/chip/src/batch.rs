//! Batched many-chip execution: [`ChipBatch`] steps N identical-topology
//! replica chips ("lanes") through one chip-major pass per tick.
//!
//! ## Execution model
//!
//! All lanes advance in lockstep. Each tick runs every lane's prologue
//! (telemetry pre-capture, active list, quiescence skips), then walks the
//! core grid **core-major**: for each core position, the lanes that are
//! active there and still true replicas (see *divergence* below) are
//! evaluated together through the fused lane tick
//! ([`brainsim_core::tick_uniform_lanes`]) — synaptic integration feeds
//! one [`brainsim_core::LaneSwarKernel`] that inserts each axon row once
//! per *distinct lane subset* rather than once per lane, and the
//! population scan sweeps every lane's copy of a 64-neuron block before
//! moving on. Remaining lanes fall back to the ordinary solo core tick.
//! Each lane then routes its own spikes through the unmodified Phase B
//! pipeline and epilogue ([`Chip::finish_tick`]).
//!
//! Every lane's observable behaviour — [`TickSummary`], event census,
//! fault statistics, telemetry records, spike rasters — is bit-identical
//! to a solo [`Chip`] run with the same seed, drive, and fault plan. The
//! fused path only engages where that is provable; everything else takes
//! the lane's own solo path, so divergence costs speed, never fidelity.
//!
//! ## Divergence
//!
//! The fused integration reads **one** lane's crossbar for the whole
//! group, which is only sound while the lanes' crossbars are identical.
//! Per-lane *synapse* faults burn into a lane's crossbar and break that;
//! [`ChipBatch`] therefore tracks a per-lane `diverged` flag, set when a
//! lane's applied fault plan differs from the prototype's (detected on
//! every tick, so plans applied through [`ChipBatch::lane_mut`] are
//! caught too). Dead / stuck-firing neurons and whole-core dropout are
//! already excluded per core by the fusibility predicate, and link faults
//! are pure functions of `(tick, core, neuron)` applied in per-lane
//! Phase B — neither diverges the crossbars.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use brainsim_core::{tick_uniform_lanes, LaneSwarKernel, NeurosynapticCore};
use brainsim_faults::FaultPlan;
use brainsim_snapshot::RestoreError;

use crate::chip::{panic_message, Chip, InjectError, TickError, TickSummary};
use crate::config::TickSemantics;
use crate::snapshot::Snapshot;

/// Error from [`ChipBatch::new_replicas`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// The lane count must be in `1..=64` (lane sets travel as `u64`
    /// masks inside the fused kernel).
    LaneCount(usize),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::LaneCount(n) => {
                write!(f, "lane count {n} out of range (must be 1..=64)")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Error from [`ChipBatch::try_tick`], attributing the failure to a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchTickError {
    /// A lane's clock disagrees with lane 0's — some lane was ticked or
    /// restored out of lockstep through [`ChipBatch::lane_mut`].
    OutOfStep {
        /// The offending lane.
        lane: usize,
        /// That lane's next tick.
        at: u64,
        /// Lane 0's next tick.
        expected: u64,
    },
    /// A lane's tick failed.
    Tick {
        /// The lane whose tick failed.
        lane: usize,
        /// The underlying tick error.
        error: TickError,
    },
}

impl fmt::Display for BatchTickError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchTickError::OutOfStep { lane, at, expected } => write!(
                f,
                "lane {lane} is at tick {at} but the batch is at tick {expected}"
            ),
            BatchTickError::Tick { lane, error } => write!(f, "lane {lane}: {error}"),
        }
    }
}

impl std::error::Error for BatchTickError {}

/// N identical-topology replica chips stepped in one chip-major pass; see
/// the module docs for the execution model and divergence rules.
#[derive(Debug, Clone)]
pub struct ChipBatch {
    lanes: Vec<Chip>,
    /// Whether a lane's crossbars may differ from the replica set's (a
    /// per-lane fault plan was applied): the lane then always takes its
    /// solo path. Monotonic — divergence is never cleared, except by
    /// [`ChipBatch::restore_lane`] proving crossbar identity again.
    diverged: Vec<bool>,
    /// The prototype's fault plan at replication time; a lane whose
    /// retained plan differs has (potentially) burned its crossbars.
    proto_plan: Option<FaultPlan>,
    /// Reusable fused-integration scratch, sized to the core shape and
    /// lane count once.
    kernel: LaneSwarKernel,
}

impl ChipBatch {
    /// Creates `lanes` replicas of `proto` — same grid, crossbars, neuron
    /// parameters, tick cursor, and fault plan; per-lane drive, seeds-in-
    /// effect (carried by the cloned cores), and subsequently applied
    /// fault plans are free to differ.
    ///
    /// # Errors
    ///
    /// [`BatchError::LaneCount`] unless `1 <= lanes <= 64`.
    pub fn new_replicas(proto: &Chip, lanes: usize) -> Result<ChipBatch, BatchError> {
        if !(1..=64).contains(&lanes) {
            return Err(BatchError::LaneCount(lanes));
        }
        Ok(ChipBatch {
            lanes: vec![proto.clone(); lanes],
            diverged: vec![false; lanes],
            proto_plan: proto.fault_plan().copied(),
            kernel: LaneSwarKernel::new(proto.config().core_neurons, lanes),
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The next tick the batch will evaluate (lane 0's clock; all lanes
    /// agree after every [`ChipBatch::try_tick`]).
    pub fn now(&self) -> u64 {
        self.lanes[0].now()
    }

    /// Read access to one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane(&self, lane: usize) -> &Chip {
        &self.lanes[lane]
    }

    /// Mutable access to one lane — for telemetry enablement, fault-plan
    /// arming, or direct injection. Mutations must leave the lane at the
    /// same tick as the rest of the batch, or the next
    /// [`ChipBatch::try_tick`] reports [`BatchTickError::OutOfStep`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_mut(&mut self, lane: usize) -> &mut Chip {
        &mut self.lanes[lane]
    }

    /// Injects events on every set bit of `bits` — axons `word*64 + b` of
    /// core `(x, y)` in lane `lane` — for `target_tick`: the per-lane form
    /// of [`Chip::inject_word`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    ///
    /// # Errors
    ///
    /// As for [`Chip::inject_word`].
    pub fn inject_word(
        &mut self,
        lane: usize,
        x: usize,
        y: usize,
        word: usize,
        bits: u64,
        target_tick: u64,
    ) -> Result<(), InjectError> {
        self.lanes[lane].inject_word(x, y, word, bits, target_tick)
    }

    /// Applies a fault plan to one lane (the per-lane form of
    /// [`Chip::set_fault_plan`]), marking the lane diverged so the fused
    /// integration never reads a burned crossbar as a replica's.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn set_fault_plan_lane(&mut self, lane: usize, plan: &FaultPlan) {
        self.lanes[lane].set_fault_plan(plan);
        self.refresh_divergence();
    }

    /// Captures one lane's complete state as a [`Snapshot`] — the
    /// per-lane form of [`Chip::checkpoint`]. Call between ticks.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn checkpoint_lane(&self, lane: usize) -> Snapshot {
        self.lanes[lane].checkpoint()
    }

    /// Replaces one lane with a chip rebuilt from `snapshot` (the
    /// per-lane form of [`Chip::restore`]). The restored lane must match
    /// the batch's chip configuration and clock. Its crossbars are
    /// compared against an undiverged lane's: on a match the lane rejoins
    /// the fused path, otherwise it is conservatively marked diverged and
    /// runs solo (still bit-identical, just unfused).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] from [`Chip::restore`], or
    /// [`RestoreError::Invalid`] if the snapshot's configuration or clock
    /// disagrees with the batch.
    pub fn restore_lane(&mut self, lane: usize, snapshot: Snapshot) -> Result<(), RestoreError> {
        let chip = Chip::restore(snapshot)?;
        if chip.config() != self.lanes[0].config() {
            return Err(RestoreError::Invalid(
                "snapshot configuration differs from the batch's".to_string(),
            ));
        }
        let expected = if self.lanes.len() > 1 && lane == 0 {
            self.lanes[1].now()
        } else {
            self.lanes[0].now()
        };
        if chip.now() != expected {
            return Err(RestoreError::Invalid(format!(
                "snapshot is at tick {} but the batch is at tick {expected}",
                chip.now()
            )));
        }
        self.lanes[lane] = chip;
        self.refresh_divergence();
        // A restored lane rejoins fusion only if some undiverged lane
        // vouches for its crossbars bit for bit.
        if self.diverged[lane] {
            return Ok(());
        }
        let reference = (0..self.lanes.len()).find(|&l| l != lane && !self.diverged[l]);
        let vouched = reference.is_some_and(|r| {
            crossbars_identical(self.lanes[lane].cores_flat(), self.lanes[r].cores_flat())
        });
        if !vouched && self.lanes.len() > 1 {
            self.diverged[lane] = true;
        }
        Ok(())
    }

    /// Whether a lane has left the fused path for good (a per-lane fault
    /// plan or an unvouched restore). A diverged lane still produces
    /// bit-identical results through its solo path.
    pub fn lane_diverged(&self, lane: usize) -> bool {
        self.diverged[lane]
    }

    /// Marks every lane whose retained fault plan differs from the
    /// prototype's as diverged. Runs every tick, so plans applied behind
    /// the batch's back (through [`ChipBatch::lane_mut`]) are caught
    /// before any fused integration could read a burned crossbar.
    fn refresh_divergence(&mut self) {
        for (lane, chip) in self.lanes.iter().enumerate() {
            if !self.diverged[lane] && chip.fault_plan() != self.proto_plan.as_ref() {
                self.diverged[lane] = true;
            }
        }
    }

    /// Evaluates one global tick on every lane, returning the per-lane
    /// summaries in lane order. Each summary is bit-identical to what the
    /// lane's solo twin would have returned.
    ///
    /// # Errors
    ///
    /// [`BatchTickError::OutOfStep`] if the lanes' clocks disagree;
    /// [`BatchTickError::Tick`] if a lane's evaluation failed (that lane
    /// is poisoned, and lanes later in the walk did not complete the
    /// tick — rebuild the batch).
    pub fn try_tick(&mut self) -> Result<Vec<TickSummary>, BatchTickError> {
        let t = self.lanes[0].now();
        for (lane, chip) in self.lanes.iter().enumerate() {
            if chip.now() != t {
                return Err(BatchTickError::OutOfStep {
                    lane,
                    at: chip.now(),
                    expected: t,
                });
            }
        }
        self.refresh_divergence();

        if self.lanes[0].config().semantics == TickSemantics::Relaxed {
            // Relaxed semantics interleaves evaluation and delivery per
            // core — there is no fusible phase structure. Each lane takes
            // its own solo relaxed tick.
            return self
                .lanes
                .iter_mut()
                .enumerate()
                .map(|(lane, chip)| {
                    chip.try_tick()
                        .map_err(|error| BatchTickError::Tick { lane, error })
                })
                .collect();
        }

        // Prologue per lane: telemetry pre-capture, active list,
        // quiescence skips.
        let mut preludes = Vec::with_capacity(self.lanes.len());
        for (lane, chip) in self.lanes.iter_mut().enumerate() {
            preludes.push(
                chip.begin_tick(t)
                    .map_err(|error| BatchTickError::Tick { lane, error })?,
            );
        }

        // Phase A, core-major: fuse where provable, solo elsewhere. Each
        // lane's fired list accumulates in canonical core order because
        // the walk ascends and each lane contributes at most one entry
        // per core.
        let lane_count = self.lanes.len();
        let mut cursors = vec![0usize; lane_count];
        let mut fired: Vec<Vec<(usize, Vec<u16>)>> = preludes
            .iter()
            .map(|p| Vec::with_capacity(p.active().len()))
            .collect();
        let cores_total = self.lanes[0].cores_flat().len();
        let mut fusible = Vec::with_capacity(lane_count);
        let mut solo = Vec::with_capacity(lane_count);
        for idx in 0..cores_total {
            fusible.clear();
            solo.clear();
            for lane in 0..lane_count {
                let a = preludes[lane].active();
                if cursors[lane] < a.len() && a[cursors[lane]] == idx {
                    cursors[lane] += 1;
                    if !self.diverged[lane] && self.lanes[lane].cores_flat()[idx].fusible_uniform()
                    {
                        fusible.push(lane);
                    } else {
                        solo.push(lane);
                    }
                }
            }
            if fusible.len() < 2 {
                // A fused group of one is just a slower solo tick.
                solo.append(&mut fusible);
                solo.sort_unstable();
            }
            if !fusible.is_empty() {
                // Disjoint `&mut` to the group members' cores at this
                // position, peeled off the lane array in ascending order.
                let mut refs: Vec<&mut NeurosynapticCore> = Vec::with_capacity(fusible.len());
                let mut rest: &mut [Chip] = self.lanes.as_mut_slice();
                let mut consumed = 0usize;
                for &lane in &fusible {
                    let tail = std::mem::take(&mut rest);
                    let (_, tail) = tail.split_at_mut(lane - consumed);
                    let (one, tail) = tail.split_at_mut(1);
                    rest = tail;
                    consumed = lane + 1;
                    refs.push(&mut one[0].cores_mut()[idx]);
                }
                let kernel = &mut self.kernel;
                let group = catch_unwind(AssertUnwindSafe(|| {
                    tick_uniform_lanes(&mut refs, t, kernel)
                }))
                .map_err(|p| BatchTickError::Tick {
                    lane: fusible[0],
                    error: TickError::CorePanicked {
                        core: idx,
                        tick: t,
                        message: panic_message(p),
                    },
                })?;
                for (spikes, &lane) in group.into_iter().zip(&fusible) {
                    fired[lane].push((idx, spikes));
                }
            }
            for &lane in &solo {
                let core = &mut self.lanes[lane].cores_mut()[idx];
                let spikes = catch_unwind(AssertUnwindSafe(|| core.tick(t))).map_err(|p| {
                    BatchTickError::Tick {
                        lane,
                        error: TickError::CorePanicked {
                            core: idx,
                            tick: t,
                            message: panic_message(p),
                        },
                    }
                })?;
                fired[lane].push((idx, spikes));
            }
        }

        // Phase B and epilogue per lane, through the unmodified solo tail.
        let mut summaries = Vec::with_capacity(lane_count);
        let mut fired = fired.into_iter();
        for (lane, (chip, prelude)) in self.lanes.iter_mut().zip(preludes).enumerate() {
            let lane_fired = fired.next().expect("one fired list per lane");
            summaries.push(
                chip.finish_tick(t, prelude, lane_fired)
                    .map_err(|error| BatchTickError::Tick { lane, error })?,
            );
        }
        Ok(summaries)
    }
}

/// Whether two core arrays have bit-identical crossbars (row for row) —
/// the replica property the fused integration relies on.
fn crossbars_identical(a: &[NeurosynapticCore], b: &[NeurosynapticCore]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ca, cb)| {
            ca.axons() == cb.axons()
                && ca.neurons() == cb.neurons()
                && (0..ca.axons())
                    .all(|axon| ca.crossbar().row_words(axon) == cb.crossbar().row_words(axon))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use crate::config::{ChipConfig, TickSemantics};
    use brainsim_core::{
        AxonTarget, AxonType, CoreOffset, Destination, Lfsr, NeuronConfig, Weight,
    };

    /// A 2×2 recurrent chip with uniform deterministic neuron parameters
    /// (SoA/uniform eligible) and a seeded random crossbar: the shape the
    /// fused path is built for.
    fn uniform_chip(seed: u32) -> Chip {
        let (axons, neurons) = (48, 40);
        let mut b = ChipBuilder::new(ChipConfig {
            width: 2,
            height: 2,
            core_axons: axons,
            core_neurons: neurons,
            semantics: TickSemantics::Deterministic,
            seed,
            ..ChipConfig::default()
        });
        let mut rng = Lfsr::new(seed);
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(5))
            .weight(AxonType::A1, Weight::saturating(-2))
            .weight(AxonType::A2, Weight::saturating(3))
            .weight(AxonType::A3, Weight::saturating(-1))
            .threshold(11)
            .leak(-1)
            .negative_threshold(20)
            .build()
            .expect("uniform test config");
        for y in 0..2 {
            for x in 0..2 {
                let core = b.core_mut(x, y);
                for a in 0..axons {
                    core.axon_type(a, AxonType::from_index(a % 4).expect("axon type"))
                        .expect("axon type set");
                    for n in 0..neurons {
                        if rng.next_u32().is_multiple_of(3) {
                            core.synapse(a, n, true).expect("synapse");
                        }
                    }
                }
                for n in 0..neurons {
                    let dest = if n % 5 == 0 {
                        Destination::Output(n as u32)
                    } else {
                        Destination::Axon(AxonTarget {
                            offset: CoreOffset::new(1 - 2 * (x as i32), 1 - 2 * (y as i32)),
                            axon: (rng.next_u32() as usize % axons) as u16,
                            delay: 1 + (rng.next_u32() % 3) as u8,
                        })
                    };
                    core.neuron(n, config.clone(), dest).expect("neuron");
                }
            }
        }
        b.build().expect("uniform chip builds")
    }

    /// Per-lane Bernoulli drive delivered identically to a batch lane and
    /// its solo twin.
    fn drive(rng: &mut Lfsr, words: usize, axons: usize) -> Vec<u64> {
        (0..words)
            .map(|w| {
                let mut bits = 0u64;
                for b in 0..64 {
                    if w * 64 + b < axons && rng.next_u32().is_multiple_of(4) {
                        bits |= 1 << b;
                    }
                }
                bits
            })
            .collect()
    }

    fn assert_lane_matches_twin(batch: &ChipBatch, lane: usize, twin: &Chip) {
        assert_eq!(batch.lane(lane).census(), twin.census());
        assert_eq!(batch.lane(lane).fault_stats(), twin.fault_stats());
        assert_eq!(
            batch.checkpoint_lane(lane).to_bytes(),
            twin.checkpoint().to_bytes(),
            "lane {lane} checkpoint diverged from its solo twin"
        );
    }

    #[test]
    fn lanes_are_bit_identical_to_solo_twins() {
        let proto = uniform_chip(0xBA7C_0001);
        if !cfg!(feature = "force-scalar") {
            assert!(
                proto.cores_flat().iter().all(|c| c.fusible_uniform()),
                "test chip must exercise the fused path"
            );
        }
        let lanes = 8;
        let mut batch = ChipBatch::new_replicas(&proto, lanes).expect("batch");
        let mut twins: Vec<Chip> = (0..lanes).map(|_| proto.clone()).collect();
        let axons = proto.config().core_axons;
        let words = axons.div_ceil(64);
        let mut rngs: Vec<Lfsr> = (0..lanes)
            .map(|l| Lfsr::new(0x0D1E_5EEDu32 ^ (l as u32).wrapping_mul(0x9E37_79B9)))
            .collect();
        for t in 0..40u64 {
            for lane in 0..lanes {
                for (x, y) in [(0usize, 0usize), (1, 1)] {
                    for (w, bits) in drive(&mut rngs[lane], words, axons).into_iter().enumerate() {
                        batch
                            .inject_word(lane, x, y, w, bits, t + 1)
                            .expect("batch inject");
                        twins[lane]
                            .inject_word(x, y, w, bits, t + 1)
                            .expect("twin inject");
                    }
                }
            }
            let summaries = batch.try_tick().expect("batch tick");
            for (lane, twin) in twins.iter_mut().enumerate() {
                let solo = twin.try_tick().expect("twin tick");
                assert_eq!(summaries[lane], solo, "tick {t} lane {lane}");
            }
        }
        for (lane, twin) in twins.iter().enumerate() {
            assert_lane_matches_twin(&batch, lane, twin);
            assert!(!batch.lane_diverged(lane));
        }
    }

    #[test]
    fn faulted_lane_diverges_but_stays_bit_identical() {
        let proto = uniform_chip(0xBA7C_0002);
        let lanes = 3;
        let mut batch = ChipBatch::new_replicas(&proto, lanes).expect("batch");
        let mut twins: Vec<Chip> = (0..lanes).map(|_| proto.clone()).collect();
        // Lane 1 gets crossbar-burning synapse faults; lane 2 gets
        // neuron/link faults (no crossbar burn, but a differing plan —
        // conservatively diverged). Lane 0 stays a pure replica.
        let burn = FaultPlan::new(77)
            .with_synapse_stuck_one(0.05)
            .with_synapse_stuck_zero(0.05);
        let soft = FaultPlan::new(78)
            .with_dead_neuron(0.1)
            .with_stuck_neuron(0.02)
            .with_link_drop(0.05);
        batch.set_fault_plan_lane(1, &burn);
        twins[1].set_fault_plan(&burn);
        // Apply lane 2's plan behind the batch's back, through lane_mut:
        // the per-tick divergence probe must still catch it.
        batch.lane_mut(2).set_fault_plan(&soft);
        twins[2].set_fault_plan(&soft);
        let axons = proto.config().core_axons;
        let words = axons.div_ceil(64);
        let mut rngs: Vec<Lfsr> = (0..lanes).map(|l| Lfsr::new(0xFA17 + l as u32)).collect();
        for t in 0..30u64 {
            for lane in 0..lanes {
                for (w, bits) in drive(&mut rngs[lane], words, axons).into_iter().enumerate() {
                    batch
                        .inject_word(lane, 0, 0, w, bits, t + 1)
                        .expect("batch inject");
                    twins[lane]
                        .inject_word(0, 0, w, bits, t + 1)
                        .expect("twin inject");
                }
            }
            let summaries = batch.try_tick().expect("batch tick");
            for (lane, twin) in twins.iter_mut().enumerate() {
                assert_eq!(summaries[lane], twin.try_tick().expect("twin"), "tick {t}");
            }
        }
        assert!(!batch.lane_diverged(0));
        assert!(batch.lane_diverged(1));
        assert!(batch.lane_diverged(2));
        for (lane, twin) in twins.iter().enumerate() {
            assert_lane_matches_twin(&batch, lane, twin);
        }
    }

    #[test]
    fn checkpoint_restore_round_trip_preserves_lockstep_and_identity() {
        let proto = uniform_chip(0xBA7C_0003);
        let mut batch = ChipBatch::new_replicas(&proto, 4).expect("batch");
        let mut twin = proto.clone();
        let axons = proto.config().core_axons;
        let words = axons.div_ceil(64);
        let mut rng = Lfsr::new(0xC4EC_4001);
        let mut rng_twin = Lfsr::new(0xC4EC_4001);
        let mut step = |batch: &mut ChipBatch, twin: &mut Chip, t: u64| {
            for (w, bits) in drive(&mut rng, words, axons).into_iter().enumerate() {
                batch.inject_word(2, 0, 1, w, bits, t + 1).expect("inject");
            }
            for (w, bits) in drive(&mut rng_twin, words, axons).into_iter().enumerate() {
                twin.inject_word(0, 1, w, bits, t + 1).expect("inject");
            }
            let summaries = batch.try_tick().expect("tick");
            assert_eq!(summaries[2], twin.try_tick().expect("twin tick"));
        };
        for t in 0..10 {
            step(&mut batch, &mut twin, t);
        }
        // Round-trip lane 2 through a snapshot mid-run: it must rejoin
        // the fused path (crossbars vouched) and stay bit-identical.
        let snap = batch.checkpoint_lane(2);
        batch.restore_lane(2, snap).expect("restore");
        assert!(!batch.lane_diverged(2));
        for t in 10..20 {
            step(&mut batch, &mut twin, t);
        }
        assert_eq!(
            batch.checkpoint_lane(2).to_bytes(),
            twin.checkpoint().to_bytes()
        );
    }

    #[test]
    fn out_of_step_lane_is_reported() {
        let proto = uniform_chip(0xBA7C_0004);
        let mut batch = ChipBatch::new_replicas(&proto, 3).expect("batch");
        batch.lane_mut(1).try_tick().expect("manual lane tick");
        match batch.try_tick() {
            Err(BatchTickError::OutOfStep { lane, at, expected }) => {
                assert_eq!(lane, 1);
                assert_eq!(at, 1);
                assert_eq!(expected, 0);
            }
            other => panic!("expected OutOfStep, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_wrong_clock() {
        let proto = uniform_chip(0xBA7C_0005);
        let mut batch = ChipBatch::new_replicas(&proto, 2).expect("batch");
        let stale = batch.checkpoint_lane(0);
        batch.try_tick().expect("tick");
        assert!(matches!(
            batch.restore_lane(0, stale),
            Err(RestoreError::Invalid(_))
        ));
    }

    #[test]
    fn lane_count_bounds_are_enforced() {
        let proto = uniform_chip(0xBA7C_0006);
        assert!(matches!(
            ChipBatch::new_replicas(&proto, 0),
            Err(BatchError::LaneCount(0))
        ));
        assert!(matches!(
            ChipBatch::new_replicas(&proto, 65),
            Err(BatchError::LaneCount(65))
        ));
        assert!(ChipBatch::new_replicas(&proto, 64).is_ok());
    }

    #[test]
    fn relaxed_semantics_falls_back_to_solo_lanes() {
        let proto = {
            let mut chip = uniform_chip(0xBA7C_0007);
            // Rebuild with relaxed semantics via config override.
            let mut cfg = *chip.config();
            cfg.semantics = TickSemantics::Relaxed;
            let snap = chip.checkpoint();
            let _ = &mut chip;
            let mut snap = snap;
            snap.config = cfg;
            Chip::restore(snap).expect("relaxed restore")
        };
        let mut batch = ChipBatch::new_replicas(&proto, 2).expect("batch");
        let mut twin = proto.clone();
        for t in 0..10u64 {
            twin.inject_word(0, 0, 0, 0xF0F0, t + 1).expect("inject");
            batch
                .inject_word(1, 0, 0, 0, 0xF0F0, t + 1)
                .expect("inject");
            let summaries = batch.try_tick().expect("tick");
            assert_eq!(summaries[1], twin.try_tick().expect("twin"));
        }
    }
}
