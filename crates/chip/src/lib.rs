//! # brainsim-chip
//!
//! Whole-chip composition: an `R × C` array of neurosynaptic cores joined by
//! the mesh, advancing under a **global 1 ms tick barrier**.
//!
//! The architecture's central contract is *deterministic tick semantics*:
//! every spike launched during tick `t` is integrated no earlier than tick
//! `t + 1` (axonal delay ≥ 1). Within a tick, cores are therefore free to
//! evaluate in any order — sequentially, in parallel threads, or on real
//! asynchronous silicon — and produce bit-identical results. This is the
//! property that makes the software simulator one-to-one with the chip, and
//! it is what the equivalence experiment (figure F5) checks.
//!
//! [`TickSemantics::Relaxed`] is the ablation: it delivers spikes with an
//! effective delay of `delay − 1`, which makes results depend on the core
//! sweep order and (on hardware) on arrival races. The divergence it causes
//! is part of the F5 experiment.
//!
//! Functional routing: because in-tick network timing is unobservable under
//! the barrier, the chip simulator delivers packets directly and charges
//! `|dx| + |dy|` hops to the energy census ([`brainsim_noc::route_hops`]).
//! Cycle-accurate contention studies use [`brainsim_noc::MeshNoc`] directly
//! (figure F4).
//!
//! ## Example
//!
//! ```
//! use brainsim_chip::{ChipBuilder, ChipConfig};
//! use brainsim_core::{AxonType, Destination, NeuronConfig, Weight};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = ChipBuilder::new(ChipConfig {
//!     width: 1,
//!     height: 1,
//!     core_axons: 4,
//!     core_neurons: 4,
//!     ..ChipConfig::default()
//! });
//! let relay = NeuronConfig::builder()
//!     .weight(AxonType::A0, Weight::new(1)?)
//!     .threshold(1)
//!     .build()?;
//! builder.core_mut(0, 0).neuron(0, relay, Destination::Output(7))?;
//! builder.core_mut(0, 0).synapse(0, 0, true)?;
//! let mut chip = builder.build()?;
//!
//! chip.inject(0, 0, 0, 1)?; // external spike for tick 1
//! chip.tick(); // tick 0: nothing due
//! let summary = chip.tick(); // tick 1: relay fires
//! assert_eq!(summary.outputs, vec![7]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod batch;
mod builder;
mod chip;
mod config;
mod snapshot;
pub mod trace;

pub use batch::{BatchError, BatchTickError, ChipBatch};
pub use builder::{ChipBuildError, ChipBuilder};
pub use chip::{Chip, InjectError, Steppable, TickError, TickSummary};
pub use config::{ChipConfig, CoreScheduling, TickSemantics, TileConfig};
pub use snapshot::{Snapshot, TelemetrySnapshot};

// The telemetry vocabulary used by `Chip::enable_telemetry`, re-exported so
// instrumented callers need only this crate.
pub use brainsim_telemetry::{TelemetryConfig, TelemetryLog, TickRecord};

// The snapshot error/policy vocabulary used by `Chip::restore` and the
// checkpoint cadence helpers, re-exported so checkpointing callers need
// only this crate.
pub use brainsim_snapshot::{
    CheckpointPolicy, RestoreError, RetryPolicy, SaveError, SkippedCheckpoint, SnapshotIoError,
};
