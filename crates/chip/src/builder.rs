//! Chip assembly and cross-core wiring validation.

use std::fmt;

use brainsim_core::{CoreBuilder, Destination, NeurosynapticCore};

use crate::chip::Chip;
use crate::config::{ChipConfig, TickSemantics};

/// Error from [`ChipBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChipBuildError {
    /// A neuron targets a core outside the grid.
    TargetOffGrid {
        /// Source core coordinates.
        from: (usize, usize),
        /// Source neuron index.
        neuron: usize,
        /// Computed absolute target coordinates.
        target: (i64, i64),
    },
    /// A neuron targets a non-existent axon of a valid core.
    TargetAxonOutOfRange {
        /// Source core coordinates.
        from: (usize, usize),
        /// Source neuron index.
        neuron: usize,
        /// Offending axon index.
        axon: u16,
    },
    /// `threads > 1` combined with [`TickSemantics::Relaxed`]; the relaxed
    /// sweep is order-dependent, so a parallel sweep would be racy.
    RelaxedParallel,
    /// A target's axonal delay plus the tile-link latency along its path
    /// exceeds the 15-tick scheduler horizon.
    LinkDelayBeyondHorizon {
        /// Source core coordinates.
        from: (usize, usize),
        /// Source neuron index.
        neuron: usize,
        /// Total delivery offset (delay + link latency × crossings).
        total: u64,
    },
}

impl fmt::Display for ChipBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipBuildError::TargetOffGrid { from, neuron, target } => write!(
                f,
                "neuron {neuron} of core {from:?} targets off-grid core ({}, {})",
                target.0, target.1
            ),
            ChipBuildError::TargetAxonOutOfRange { from, neuron, axon } => write!(
                f,
                "neuron {neuron} of core {from:?} targets axon {axon} beyond the core's axon count"
            ),
            ChipBuildError::RelaxedParallel => {
                write!(f, "relaxed tick semantics cannot run with multiple threads")
            }
            ChipBuildError::LinkDelayBeyondHorizon { from, neuron, total } => write!(
                f,
                "neuron {neuron} of core {from:?}: delay + link latency = {total} exceeds the 15-tick horizon"
            ),
        }
    }
}

impl std::error::Error for ChipBuildError {}

/// Assembles a [`Chip`] from per-core builders.
#[derive(Debug, Clone)]
pub struct ChipBuilder {
    config: ChipConfig,
    cores: Vec<CoreBuilder>,
}

impl ChipBuilder {
    /// Starts a chip with every core empty.
    ///
    /// # Panics
    ///
    /// Panics if any grid or core dimension is zero.
    pub fn new(config: ChipConfig) -> ChipBuilder {
        assert!(
            config.width > 0 && config.height > 0,
            "grid dimensions must be non-zero"
        );
        let cores = (0..config.cores())
            .map(|i| {
                let mut b = CoreBuilder::new(config.core_axons, config.core_neurons);
                // Derive a distinct, deterministic seed per core.
                b.seed(
                    config
                        .seed
                        .wrapping_add(0x9E37_79B9u32.wrapping_mul(i as u32 + 1)),
                );
                b
            })
            .collect();
        ChipBuilder { config, cores }
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Mutable access to the builder of core `(x, y)` for wiring.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn core_mut(&mut self, x: usize, y: usize) -> &mut CoreBuilder {
        assert!(
            x < self.config.width && y < self.config.height,
            "core ({x}, {y}) outside {}x{} grid",
            self.config.width,
            self.config.height
        );
        &mut self.cores[y * self.config.width + x]
    }

    /// Validates cross-core wiring and produces the chip.
    ///
    /// # Errors
    ///
    /// See [`ChipBuildError`].
    pub fn build(&self) -> Result<Chip, ChipBuildError> {
        if self.config.semantics == TickSemantics::Relaxed && self.config.threads > 1 {
            return Err(ChipBuildError::RelaxedParallel);
        }
        let mut cores: Vec<_> = self.cores.iter().map(CoreBuilder::build).collect();
        validate_wiring(&self.config, &cores)?;
        pack_cores(&mut cores);
        Ok(Chip::from_parts(self.config, cores))
    }
}

/// Memory-layout pass over a freshly assembled core array: every
/// programmed crossbar's words move into one shared chip-level arena, laid
/// out in placement (row-major) order, and every core's per-tick hot
/// vectors are reallocated in the same order
/// ([`brainsim_core::repack_cores`]). Phase A evaluates cores in exactly
/// this order — contiguous shards of the sorted active list — so a shard's
/// working set becomes a forward walk over adjacent memory instead of a
/// pointer chase across construction-order allocations. Purely physical:
/// every bit of logical state is unchanged, and never-programmed
/// (dormant/empty) cores contribute nothing to the arena. Shared by
/// [`ChipBuilder::build`] and [`crate::Chip::restore`].
pub(crate) fn pack_cores(cores: &mut [NeurosynapticCore]) {
    let total_words: usize = cores.iter().map(|c| c.crossbar().owned_words()).sum();
    if total_words > 0 {
        let mut arena: Vec<u64> = Vec::with_capacity(total_words);
        let offsets: Vec<Option<usize>> = cores
            .iter()
            .map(|core| {
                let xb = core.crossbar();
                (xb.owned_words() > 0).then(|| {
                    let offset = arena.len();
                    for axon in 0..xb.axons() {
                        arena.extend_from_slice(xb.row_words(axon));
                    }
                    offset
                })
            })
            .collect();
        let arena: std::sync::Arc<[u64]> = arena.into();
        for (core, offset) in cores.iter_mut().zip(offsets) {
            if let Some(offset) = offset {
                core.adopt_crossbar_arena(arena.clone(), offset);
            }
        }
    }
    brainsim_core::repack_cores(cores);
}

/// Validates every neuron destination of `cores` against the grid: target
/// on-grid, target axon in range, total delivery offset within the 15-tick
/// scheduler horizon. Shared by [`ChipBuilder::build`] and
/// [`crate::Chip::restore`], so a snapshot cannot smuggle in wiring the
/// builder would have rejected.
pub(crate) fn validate_wiring(
    config: &ChipConfig,
    cores: &[NeurosynapticCore],
) -> Result<(), ChipBuildError> {
    for (index, core) in cores.iter().enumerate() {
        let x = index % config.width;
        let y = index / config.width;
        for neuron in 0..core.neurons() {
            if let Destination::Axon(target) = core.destination(neuron) {
                let tx = x as i64 + target.offset.dx as i64;
                let ty = y as i64 + target.offset.dy as i64;
                let off_grid =
                    tx < 0 || ty < 0 || tx as usize >= config.width || ty as usize >= config.height;
                if off_grid {
                    return Err(ChipBuildError::TargetOffGrid {
                        from: (x, y),
                        neuron,
                        target: (tx, ty),
                    });
                }
                if target.axon as usize >= config.core_axons {
                    return Err(ChipBuildError::TargetAxonOutOfRange {
                        from: (x, y),
                        neuron,
                        axon: target.axon,
                    });
                }
                let crossings = config.crossings((x, y), (tx as usize, ty as usize));
                let link = config.tile.map(|t| t.link_latency as u64).unwrap_or(0);
                let total = target.delay as u64 + crossings as u64 * link;
                if total > 15 {
                    return Err(ChipBuildError::LinkDelayBeyondHorizon {
                        from: (x, y),
                        neuron,
                        total,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainsim_core::{AxonTarget, CoreOffset, NeuronConfig};

    fn small_config() -> ChipConfig {
        ChipConfig {
            width: 2,
            height: 2,
            core_axons: 4,
            core_neurons: 4,
            ..ChipConfig::default()
        }
    }

    #[test]
    fn empty_chip_builds() {
        let chip = ChipBuilder::new(small_config()).build().unwrap();
        assert_eq!(chip.config().cores(), 4);
    }

    #[test]
    fn off_grid_target_rejected() {
        let mut b = ChipBuilder::new(small_config());
        let dest = Destination::Axon(AxonTarget {
            offset: CoreOffset::new(5, 0),
            axon: 0,
            delay: 1,
        });
        b.core_mut(0, 0)
            .neuron(0, NeuronConfig::default(), dest)
            .unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, ChipBuildError::TargetOffGrid { .. }));
    }

    #[test]
    fn bad_target_axon_rejected() {
        let mut b = ChipBuilder::new(small_config());
        let dest = Destination::Axon(AxonTarget {
            offset: CoreOffset::new(1, 0),
            axon: 99,
            delay: 1,
        });
        b.core_mut(0, 0)
            .neuron(0, NeuronConfig::default(), dest)
            .unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            ChipBuildError::TargetAxonOutOfRange { axon: 99, .. }
        ));
    }

    #[test]
    fn relaxed_parallel_rejected() {
        let config = ChipConfig {
            semantics: TickSemantics::Relaxed,
            threads: 4,
            ..small_config()
        };
        let err = ChipBuilder::new(config).build().unwrap_err();
        assert_eq!(err, ChipBuildError::RelaxedParallel);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn core_mut_out_of_grid_panics() {
        let mut b = ChipBuilder::new(small_config());
        b.core_mut(2, 0);
    }

    #[test]
    fn per_core_seeds_differ() {
        let b = ChipBuilder::new(small_config());
        let chip = b.build().unwrap();
        // Indirect check: distinct cores exist and the chip is functional.
        assert_eq!(chip.config().cores(), 4);
    }
}
