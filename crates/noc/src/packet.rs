//! The spike packet and its wire format.

use std::fmt;

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// A spike packet in flight on the mesh.
///
/// The fields match the silicon packet word: a signed 12-bit hop offset per
/// dimension (enough for a 4096-core row with multi-chip tiling), an 10-bit
/// destination axon, and a 4-bit delivery slot for the target core's
/// scheduler ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Remaining eastward hops (negative = westward).
    pub dx: i16,
    /// Remaining northward hops (negative = southward).
    pub dy: i16,
    /// Destination axon within the target core.
    pub axon: u16,
    /// Scheduler slot (`delivery tick mod 16`) at the destination.
    pub slot: u8,
}

/// Field width limits of the wire format.
impl Packet {
    /// Maximum representable offset magnitude per dimension (12-bit signed).
    pub const MAX_OFFSET: i16 = 2047;
    /// Minimum representable offset per dimension.
    pub const MIN_OFFSET: i16 = -2048;
    /// Maximum axon index (10 bits).
    pub const MAX_AXON: u16 = 1023;
    /// Maximum scheduler slot (4 bits).
    pub const MAX_SLOT: u8 = 15;

    /// Creates a packet, validating field ranges.
    ///
    /// # Errors
    ///
    /// Returns [`PacketDecodeError::FieldRange`] if any field exceeds its
    /// wire width.
    pub fn new(dx: i16, dy: i16, axon: u16, slot: u8) -> Result<Packet, PacketDecodeError> {
        let ok = (Packet::MIN_OFFSET..=Packet::MAX_OFFSET).contains(&dx)
            && (Packet::MIN_OFFSET..=Packet::MAX_OFFSET).contains(&dy)
            && axon <= Packet::MAX_AXON
            && slot <= Packet::MAX_SLOT;
        if ok {
            Ok(Packet { dx, dy, axon, slot })
        } else {
            Err(PacketDecodeError::FieldRange)
        }
    }

    /// Whether the packet has arrived (no remaining hops).
    #[inline]
    pub const fn is_local(&self) -> bool {
        self.dx == 0 && self.dy == 0
    }

    /// Remaining hops to the destination.
    #[inline]
    pub const fn remaining_hops(&self) -> u32 {
        self.dx.unsigned_abs() as u32 + self.dy.unsigned_abs() as u32
    }

    /// Encodes to the 38-bit wire word, packed into 5 bytes
    /// (`dx:12 | dy:12 | axon:10 | slot:4`, big-endian bit order).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let dx = (self.dx as u64) & 0xFFF;
        let dy = (self.dy as u64) & 0xFFF;
        let axon = (self.axon as u64) & 0x3FF;
        let slot = (self.slot as u64) & 0xF;
        let word = (dx << 26) | (dy << 14) | (axon << 4) | slot;
        // 38 bits fit in 5 bytes.
        buf.put_uint(word, 5);
    }

    /// Decodes from the 5-byte wire format.
    ///
    /// # Errors
    ///
    /// Returns [`PacketDecodeError::Truncated`] if fewer than 5 bytes remain.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Packet, PacketDecodeError> {
        if buf.remaining() < 5 {
            return Err(PacketDecodeError::Truncated);
        }
        let word = buf.get_uint(5);
        let sign_extend_12 = |v: u64| -> i16 {
            let v = (v & 0xFFF) as u16;
            ((v << 4) as i16) >> 4
        };
        Ok(Packet {
            dx: sign_extend_12(word >> 26),
            dy: sign_extend_12(word >> 14),
            axon: ((word >> 4) & 0x3FF) as u16,
            slot: (word & 0xF) as u8,
        })
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pkt(dx={:+}, dy={:+}, axon={}, slot={})",
            self.dx, self.dy, self.axon, self.slot
        )
    }
}

/// Error from packet construction or decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketDecodeError {
    /// A field exceeds its wire width.
    FieldRange,
    /// Fewer than 5 bytes were available to decode.
    Truncated,
}

impl fmt::Display for PacketDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketDecodeError::FieldRange => write!(f, "packet field exceeds wire width"),
            PacketDecodeError::Truncated => write!(f, "truncated packet (need 5 bytes)"),
        }
    }
}

impl std::error::Error for PacketDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn encode_decode_round_trip() {
        let cases = [
            Packet::new(0, 0, 0, 0).unwrap(),
            Packet::new(5, -3, 255, 1).unwrap(),
            Packet::new(-2048, 2047, 1023, 15).unwrap(),
            Packet::new(2047, -2048, 512, 8).unwrap(),
        ];
        for p in cases {
            let mut buf = BytesMut::new();
            p.encode(&mut buf);
            assert_eq!(buf.len(), 5);
            let q = Packet::decode(&mut buf).unwrap();
            assert_eq!(p, q);
        }
    }

    #[test]
    fn field_range_validation() {
        assert!(Packet::new(2048, 0, 0, 0).is_err());
        assert!(Packet::new(0, -2049, 0, 0).is_err());
        assert!(Packet::new(0, 0, 1024, 0).is_err());
        assert!(Packet::new(0, 0, 0, 16).is_err());
    }

    #[test]
    fn truncated_decode_fails() {
        let mut buf = &[0u8, 1, 2][..];
        assert_eq!(Packet::decode(&mut buf), Err(PacketDecodeError::Truncated));
    }

    #[test]
    fn local_and_hops() {
        let p = Packet::new(0, 0, 9, 1).unwrap();
        assert!(p.is_local());
        let q = Packet::new(2, -3, 9, 1).unwrap();
        assert!(!q.is_local());
        assert_eq!(q.remaining_hops(), 5);
    }

    #[test]
    fn display_format() {
        let p = Packet::new(1, -2, 7, 3).unwrap();
        assert_eq!(p.to_string(), "pkt(dx=+1, dy=-2, axon=7, slot=3)");
    }
}
