//! # brainsim-noc
//!
//! The 2-D mesh network-on-chip that carries spike packets between
//! neurosynaptic cores.
//!
//! The design mirrors the silicon:
//!
//! * **Relative addressing** — a [`Packet`] carries a signed `(dx, dy)`
//!   offset that is decremented hop by hop; no global routing tables exist.
//! * **Dimension-order routing (DOR)** — packets exhaust `dx` (east/west)
//!   before turning to `dy` (north/south). DOR on a mesh admits no cyclic
//!   channel dependency, so the network is deadlock-free by construction
//!   (see [`Router`] docs); the conservation property (packets in = packets
//!   delivered, no loss, hops = |dx| + |dy|) is property-tested.
//! * **Bounded FIFOs with backpressure** — a hop only proceeds when the
//!   downstream input buffer has space; otherwise the packet stalls and
//!   latency accrues, which is what the saturation experiment (figure F4)
//!   measures.
//!
//! Two usage modes:
//!
//! * [`MeshNoc::cycle`] — cycle-accurate simulation with contention, for
//!   latency/saturation studies;
//! * [`route_hops`] — the closed-form hop count used by the functional chip
//!   simulator, where the deterministic tick barrier makes in-tick network
//!   timing unobservable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod mesh;
mod packet;
mod router;

pub use mesh::{
    DelayedFlit, MeshNoc, NocConfig, NocInjectError, NocState, NocStateError, NocStats,
};
pub use packet::{Packet, PacketDecodeError};
pub use router::{Flit, Port, Router, RouterState, RouterStateError, RoutingOrder, PORTS};

// Re-export the fault vocabulary accepted by `MeshNoc::set_fault_injector`.
pub use brainsim_faults::{FaultInjector, FaultPlan, FaultStats, OverflowPolicy};

/// Closed-form number of mesh hops a packet with the given offset travels
/// under dimension-order routing (one hop per traversed link; 0 for a
/// core-local delivery).
pub fn route_hops(dx: i32, dy: i32) -> u32 {
    dx.unsigned_abs() + dy.unsigned_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_is_manhattan_distance() {
        assert_eq!(route_hops(0, 0), 0);
        assert_eq!(route_hops(3, -2), 5);
        assert_eq!(route_hops(-7, 7), 14);
    }
}
