//! A single 5-port mesh router.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::packet::Packet;

/// Dimension order of the deterministic route.
///
/// Both orders are deadlock-free on a mesh (each admits only one turn
/// class); they differ in which links congest under asymmetric traffic —
/// the routing ablation of the NoC experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingOrder {
    /// Exhaust `dx` before `dy` (the silicon's order).
    #[default]
    XThenY,
    /// Exhaust `dy` before `dx`.
    YThenX,
}

/// Number of router ports.
pub const PORTS: usize = 5;

/// A router port. `Local` connects to the core; the four compass ports
/// connect to neighbouring routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Port {
    /// The attached core.
    Local = 0,
    /// +x neighbour.
    East = 1,
    /// −x neighbour.
    West = 2,
    /// +y neighbour.
    North = 3,
    /// −y neighbour.
    South = 4,
}

impl Port {
    /// All ports in index order.
    pub const ALL: [Port; PORTS] = [
        Port::Local,
        Port::East,
        Port::West,
        Port::North,
        Port::South,
    ];

    /// The array index of the port.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// A packet in flight with its bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// The packet (offsets are decremented as it travels).
    pub packet: Packet,
    /// Mesh cycle at which the packet was injected.
    pub injected_at: u64,
    /// Links traversed so far.
    pub hops: u32,
}

/// One mesh router: five bounded input FIFOs and a dimension-order routing
/// function.
///
/// **Deadlock freedom.** Dimension-order routing permits only X→Y turns.
/// Orienting each unidirectional channel by its dimension and direction, any
/// waits-for cycle would need a Y→X turn to close; DOR never makes one, so
/// the channel dependency graph is acyclic and the mesh cannot deadlock,
/// regardless of buffer sizes.
#[derive(Debug, Clone)]
pub struct Router {
    inputs: [VecDeque<Flit>; PORTS],
    capacity: usize,
    /// Round-robin arbitration pointer per output port.
    rr: [usize; PORTS],
}

impl Router {
    /// Creates a router whose input FIFOs hold `capacity` flits each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Router {
        assert!(capacity > 0, "router FIFO capacity must be non-zero");
        Router {
            inputs: Default::default(),
            capacity,
            rr: [0; PORTS],
        }
    }

    /// The FIFO capacity per input port.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The dimension-order output port for a packet at this router.
    pub fn route(packet: &Packet) -> Port {
        Router::route_ordered(packet, RoutingOrder::XThenY)
    }

    /// The output port under an explicit dimension order.
    pub fn route_ordered(packet: &Packet, order: RoutingOrder) -> Port {
        let (first, second) = match order {
            RoutingOrder::XThenY => (
                (packet.dx, Port::East, Port::West),
                (packet.dy, Port::North, Port::South),
            ),
            RoutingOrder::YThenX => (
                (packet.dy, Port::North, Port::South),
                (packet.dx, Port::East, Port::West),
            ),
        };
        for (delta, positive, negative) in [first, second] {
            if delta > 0 {
                return positive;
            }
            if delta < 0 {
                return negative;
            }
        }
        Port::Local
    }

    /// Whether the input FIFO of `port` has space.
    pub fn can_accept(&self, port: Port) -> bool {
        self.inputs[port.index()].len() < self.capacity
    }

    /// Pushes a flit into the input FIFO of `port`.
    ///
    /// Returns `false` (leaving the flit untaken) if the FIFO is full.
    pub fn accept(&mut self, port: Port, flit: Flit) -> bool {
        let queue = &mut self.inputs[port.index()];
        if queue.len() >= self.capacity {
            return false;
        }
        queue.push_back(flit);
        true
    }

    /// Pops the oldest flit of one input FIFO, regardless of routing.
    ///
    /// Used by fault injection's `DropOldest` overflow policy to evict the
    /// head of a full queue; returns `None` when the queue is empty.
    pub fn evict_oldest(&mut self, port: Port) -> Option<Flit> {
        self.inputs[port.index()].pop_front()
    }

    /// Occupancy of one input FIFO.
    pub fn occupancy(&self, port: Port) -> usize {
        self.inputs[port.index()].len()
    }

    /// Total flits buffered in this router.
    pub fn buffered(&self) -> usize {
        self.inputs.iter().map(VecDeque::len).sum()
    }

    /// Selects (and pops) one flit destined for `output`, arbitrating
    /// round-robin across input ports. Returns `None` if no buffered flit
    /// wants that output.
    pub fn arbitrate(&mut self, output: Port) -> Option<Flit> {
        self.arbitrate_ordered(output, RoutingOrder::XThenY)
    }

    /// [`Router::arbitrate`] under an explicit dimension order.
    pub fn arbitrate_ordered(&mut self, output: Port, order: RoutingOrder) -> Option<Flit> {
        let start = self.rr[output.index()];
        for k in 0..PORTS {
            let input = (start + k) % PORTS;
            if let Some(front) = self.inputs[input].front() {
                if Router::route_ordered(&front.packet, order) == output {
                    self.rr[output.index()] = (input + 1) % PORTS;
                    return self.inputs[input].pop_front();
                }
            }
        }
        None
    }

    /// Peeks whether some buffered flit wants `output` (without popping).
    pub fn wants(&self, output: Port) -> bool {
        self.wants_ordered(output, RoutingOrder::XThenY)
    }

    /// [`Router::wants`] under an explicit dimension order.
    pub fn wants_ordered(&self, output: Port, order: RoutingOrder) -> bool {
        self.inputs
            .iter()
            .filter_map(VecDeque::front)
            .any(|f| Router::route_ordered(&f.packet, order) == output)
    }

    /// Captures the router's mutable state: per-port FIFO contents (oldest
    /// flit first) and the round-robin arbitration pointers.
    pub fn export_state(&self) -> RouterState {
        RouterState {
            queues: std::array::from_fn(|p| self.inputs[p].iter().copied().collect()),
            rr: self.rr,
        }
    }

    /// Rebuilds a router of the given FIFO capacity from an exported image.
    ///
    /// # Errors
    ///
    /// [`RouterStateError::QueueOverflow`] if any captured queue exceeds the
    /// capacity, [`RouterStateError::BadArbiter`] if an arbitration pointer
    /// is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (as [`Router::new`] does).
    pub fn import_state(capacity: usize, state: &RouterState) -> Result<Router, RouterStateError> {
        if state.queues.iter().any(|q| q.len() > capacity) {
            return Err(RouterStateError::QueueOverflow);
        }
        if state.rr.iter().any(|&p| p >= PORTS) {
            return Err(RouterStateError::BadArbiter);
        }
        let mut router = Router::new(capacity);
        for (port, queue) in state.queues.iter().enumerate() {
            for &flit in queue {
                let accepted = router.accept(Port::ALL[port], flit);
                debug_assert!(accepted, "length checked above");
            }
        }
        router.rr = state.rr;
        Ok(router)
    }
}

/// Serializable image of one router's mutable state; see
/// [`Router::export_state`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterState {
    /// Per-port input FIFO contents, oldest flit first, indexed by
    /// [`Port::index`].
    pub queues: [Vec<Flit>; PORTS],
    /// Round-robin arbitration pointer per output port.
    pub rr: [usize; PORTS],
}

/// Error from [`Router::import_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterStateError {
    /// A captured FIFO holds more flits than the configured capacity.
    QueueOverflow,
    /// An arbitration pointer is not a valid port index.
    BadArbiter,
}

impl std::fmt::Display for RouterStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterStateError::QueueOverflow => write!(f, "router FIFO exceeds capacity"),
            RouterStateError::BadArbiter => write!(f, "arbitration pointer out of range"),
        }
    }
}

impl std::error::Error for RouterStateError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(dx: i16, dy: i16) -> Flit {
        Flit {
            packet: Packet::new(dx, dy, 0, 1).unwrap(),
            injected_at: 0,
            hops: 0,
        }
    }

    #[test]
    fn dor_exhausts_x_before_y() {
        assert_eq!(Router::route(&flit(3, 2).packet), Port::East);
        assert_eq!(Router::route(&flit(-1, 2).packet), Port::West);
        assert_eq!(Router::route(&flit(0, 2).packet), Port::North);
        assert_eq!(Router::route(&flit(0, -5).packet), Port::South);
        assert_eq!(Router::route(&flit(0, 0).packet), Port::Local);
    }

    #[test]
    fn yx_order_exhausts_y_first() {
        use super::RoutingOrder::YThenX;
        assert_eq!(
            Router::route_ordered(&flit(3, 2).packet, YThenX),
            Port::North
        );
        assert_eq!(
            Router::route_ordered(&flit(3, -2).packet, YThenX),
            Port::South
        );
        assert_eq!(
            Router::route_ordered(&flit(3, 0).packet, YThenX),
            Port::East
        );
        assert_eq!(
            Router::route_ordered(&flit(-3, 0).packet, YThenX),
            Port::West
        );
        assert_eq!(
            Router::route_ordered(&flit(0, 0).packet, YThenX),
            Port::Local
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut r = Router::new(2);
        assert!(r.accept(Port::Local, flit(1, 0)));
        assert!(r.accept(Port::Local, flit(1, 0)));
        assert!(!r.accept(Port::Local, flit(1, 0)));
        assert!(!r.can_accept(Port::Local));
        assert!(r.can_accept(Port::East));
        assert_eq!(r.buffered(), 2);
    }

    #[test]
    fn arbitration_is_round_robin() {
        let mut r = Router::new(4);
        // Two inputs both want East.
        r.accept(Port::Local, flit(5, 0));
        r.accept(Port::West, flit(3, 0));
        let first = r.arbitrate(Port::East).unwrap();
        let second = r.arbitrate(Port::East).unwrap();
        assert_ne!(first.packet.dx, second.packet.dx);
        assert!(r.arbitrate(Port::East).is_none());
    }

    #[test]
    fn arbitrate_skips_flits_for_other_outputs() {
        let mut r = Router::new(4);
        r.accept(Port::Local, flit(0, 3)); // wants North
        assert!(r.arbitrate(Port::East).is_none());
        assert!(r.wants(Port::North));
        assert!(r.arbitrate(Port::North).is_some());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Router::new(0);
    }
}
