//! The full mesh fabric: routers wired into a grid.

use std::fmt;

use brainsim_faults::{FaultInjector, FaultStats, LinkFault, OverflowPolicy};
use brainsim_telemetry::Histogram;
use serde::{Deserialize, Serialize};

use crate::packet::Packet;
use crate::router::{Flit, Port, Router, RouterState, RouterStateError, RoutingOrder};

/// Mesh dimensions and buffering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Routers per row.
    pub width: usize,
    /// Routers per column.
    pub height: usize,
    /// Input FIFO capacity per router port, in flits.
    pub fifo_capacity: usize,
    /// Dimension order of the deterministic route.
    pub routing: RoutingOrder,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            width: 8,
            height: 8,
            fifo_capacity: 4,
            routing: RoutingOrder::default(),
        }
    }
}

/// A packet handed to its destination core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Destination router x.
    pub x: usize,
    /// Destination router y.
    pub y: usize,
    /// The delivered packet (offsets now zero).
    pub packet: Packet,
    /// Cycles from injection to delivery.
    pub latency: u64,
    /// Links traversed.
    pub hops: u32,
}

/// Error from [`MeshNoc::inject`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocInjectError {
    /// The source coordinates are outside the mesh.
    SourceOffMesh {
        /// Attempted source x.
        x: usize,
        /// Attempted source y.
        y: usize,
    },
    /// The packet's destination is outside the mesh.
    DestinationOffMesh {
        /// Computed destination x (may be negative).
        x: i64,
        /// Computed destination y (may be negative).
        y: i64,
    },
    /// The source FIFO was full; the packet is handed back so the caller
    /// can model source queuing. Counted in [`NocStats::rejected`].
    Backpressure(Packet),
}

impl fmt::Display for NocInjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocInjectError::SourceOffMesh { x, y } => {
                write!(f, "source ({x}, {y}) off-mesh")
            }
            NocInjectError::DestinationOffMesh { x, y } => {
                write!(f, "packet destination ({x}, {y}) off-mesh")
            }
            NocInjectError::Backpressure(_) => write!(f, "source FIFO full"),
        }
    }
}

impl std::error::Error for NocInjectError {}

/// Aggregate mesh statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocStats {
    /// Packets accepted at source routers.
    pub injected: u64,
    /// Packets delivered to destination cores.
    pub delivered: u64,
    /// Injection attempts refused because the source FIFO was full.
    pub rejected: u64,
    /// Hop moves refused by downstream backpressure (stall-cycles).
    pub stalls: u64,
    /// Packets lost in transit: fault drops, fault-queue overflows, and
    /// misrouted flits discarded at the mesh edge.
    pub dropped: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Sum of delivery latencies (cycles).
    pub total_latency: u64,
    /// Maximum single-packet latency observed.
    pub max_latency: u64,
    /// Sum of per-packet hop counts.
    pub total_hops: u64,
    /// Log₂ histogram of total buffered flits, sampled at the end of every
    /// cycle — the mesh's occupancy profile over the run.
    pub occupancy: Histogram,
    /// Most flits buffered mesh-wide at any end-of-cycle sample.
    pub peak_buffered: u64,
    /// Fault-injection accounting (all zero without a fault injector).
    pub faults: FaultStats,
}

impl NocStats {
    /// Mean delivery latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Mean hops per delivered packet.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Packets still in flight.
    pub fn in_flight(&self) -> u64 {
        self.injected - self.delivered - self.dropped
    }
}

/// The cycle-accurate mesh network.
#[derive(Debug, Clone)]
pub struct MeshNoc {
    config: NocConfig,
    routers: Vec<Router>,
    now: u64,
    stats: NocStats,
    /// Optional link-fault injector; `None` keeps the hop path unchanged.
    injector: Option<FaultInjector>,
    /// Flits held back by delay faults: `(release_cycle, router, port, flit)`.
    delayed: Vec<(u64, usize, Port, Flit)>,
}

impl MeshNoc {
    /// Builds an idle mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the FIFO capacity is zero.
    pub fn new(config: NocConfig) -> MeshNoc {
        assert!(
            config.width > 0 && config.height > 0,
            "mesh dimensions must be non-zero"
        );
        let routers = (0..config.width * config.height)
            .map(|_| Router::new(config.fifo_capacity))
            .collect();
        MeshNoc {
            config,
            routers,
            now: 0,
            stats: NocStats::default(),
            injector: None,
            delayed: Vec::new(),
        }
    }

    /// Installs a link-fault injector; hops roll for drop / corrupt / delay
    /// faults from the next cycle on. A benign injector is discarded so the
    /// healthy path stays fault-free.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = if injector.has_link_faults() {
            Some(injector)
        } else {
            None
        };
    }

    /// The mesh configuration.
    pub fn config(&self) -> NocConfig {
        self.config
    }

    /// Cycles elapsed.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Exports the mesh's contribution to the chip-wide event census:
    /// router hops, lost packets, refused injections, and stall-cycles.
    pub fn census(&self) -> brainsim_energy::EventCensus {
        brainsim_energy::EventCensus {
            hops: self.stats.total_hops,
            packets_dropped: self.stats.dropped,
            packets_rejected: self.stats.rejected,
            flit_stalls: self.stats.stalls,
            ..Default::default()
        }
    }

    /// Flits currently buffered anywhere in the mesh, including flits held
    /// back by fault-injected delays.
    pub fn buffered(&self) -> usize {
        self.routers.iter().map(Router::buffered).sum::<usize>() + self.delayed.len()
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        y * self.config.width + x
    }

    /// Injects a packet at source core `(x, y)`.
    ///
    /// # Errors
    ///
    /// * [`NocInjectError::SourceOffMesh`] / [`NocInjectError::DestinationOffMesh`]
    ///   if either endpoint lies outside the grid.
    /// * [`NocInjectError::Backpressure`] if the source FIFO is full; the
    ///   packet is handed back (the caller models source queuing) and the
    ///   refusal is counted in [`NocStats::rejected`].
    pub fn inject(&mut self, x: usize, y: usize, packet: Packet) -> Result<(), NocInjectError> {
        if x >= self.config.width || y >= self.config.height {
            return Err(NocInjectError::SourceOffMesh { x, y });
        }
        let tx = x as i64 + packet.dx as i64;
        let ty = y as i64 + packet.dy as i64;
        if tx < 0
            || (tx as usize) >= self.config.width
            || ty < 0
            || (ty as usize) >= self.config.height
        {
            return Err(NocInjectError::DestinationOffMesh { x: tx, y: ty });
        }
        let flit = Flit {
            packet,
            injected_at: self.now,
            hops: 0,
        };
        let idx = self.index(x, y);
        if self.routers[idx].accept(Port::Local, flit) {
            self.stats.injected += 1;
            Ok(())
        } else {
            self.stats.rejected += 1;
            Err(NocInjectError::Backpressure(packet))
        }
    }

    /// Re-admits fault-delayed flits whose release cycle has arrived,
    /// applying the configured buffer-overflow policy when the target FIFO
    /// is full.
    fn release_delayed(&mut self) {
        if self.delayed.is_empty() {
            return;
        }
        let now = self.now;
        let policy = self
            .injector
            .as_ref()
            .map(FaultInjector::overflow_policy)
            .unwrap_or_default();
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 > now {
                i += 1;
                continue;
            }
            let (_, idx, port, flit) = self.delayed.remove(i);
            if self.routers[idx].accept(port, flit) {
                continue;
            }
            match policy {
                OverflowPolicy::DropNewest => {
                    self.stats.dropped += 1;
                    self.stats.faults.flits_dropped_overflow += 1;
                }
                OverflowPolicy::DropOldest => {
                    // Evict the head of the full queue to make room.
                    if self.routers[idx].evict_oldest(port).is_some() {
                        self.stats.dropped += 1;
                        self.stats.faults.flits_dropped_overflow += 1;
                        let accepted = self.routers[idx].accept(port, flit);
                        debug_assert!(accepted, "evicted queue still full");
                    } else {
                        // Zero-capacity queue (cannot happen: capacity ≥ 1).
                        self.stats.dropped += 1;
                        self.stats.faults.flits_dropped_overflow += 1;
                    }
                }
            }
        }
    }

    /// Advances the mesh one cycle, returning this cycle's deliveries.
    ///
    /// Each router moves at most one flit per output port per cycle; moves
    /// blocked by downstream backpressure stall in place and are counted in
    /// [`NocStats::stalls`].
    pub fn cycle(&mut self) -> Vec<Delivery> {
        self.release_delayed();
        let width = self.config.width;
        let height = self.config.height;
        let mut deliveries = Vec::new();
        // Staged hop moves: (destination router, input port, flit).
        let mut staged: Vec<(usize, Port, Flit)> = Vec::new();
        // How many staged arrivals each (router, port) queue already has.
        let mut staged_count = vec![[0usize; 5]; self.routers.len()];

        for y in 0..height {
            for x in 0..width {
                let idx = self.index(x, y);
                // Local ejection: one delivery per router per cycle.
                if let Some(flit) =
                    self.routers[idx].arbitrate_ordered(Port::Local, self.config.routing)
                {
                    debug_assert!(flit.packet.is_local(), "non-local flit at local port");
                    let latency = self.now - flit.injected_at + 1;
                    self.stats.delivered += 1;
                    self.stats.total_latency += latency;
                    self.stats.max_latency = self.stats.max_latency.max(latency);
                    self.stats.total_hops += flit.hops as u64;
                    deliveries.push(Delivery {
                        x,
                        y,
                        packet: flit.packet,
                        latency,
                        hops: flit.hops,
                    });
                }
                // Compass outputs.
                for (port, nx, ny) in [
                    (Port::East, x as i64 + 1, y as i64),
                    (Port::West, x as i64 - 1, y as i64),
                    (Port::North, x as i64, y as i64 + 1),
                    (Port::South, x as i64, y as i64 - 1),
                ] {
                    if !self.routers[idx].wants_ordered(port, self.config.routing) {
                        continue;
                    }
                    let off_mesh =
                        nx < 0 || ny < 0 || nx as usize >= width || ny as usize >= height;
                    if off_mesh {
                        // A misrouted flit (possible only under destination
                        // corruption or a malformed injection) is discarded
                        // at the mesh edge instead of tearing down the
                        // simulation.
                        if self.routers[idx]
                            .arbitrate_ordered(port, self.config.routing)
                            .is_some()
                        {
                            self.stats.dropped += 1;
                        }
                        continue;
                    }
                    let nidx = self.index(nx as usize, ny as usize);
                    let input = match port {
                        Port::East => Port::West,
                        Port::West => Port::East,
                        Port::North => Port::South,
                        Port::South => Port::North,
                        Port::Local => unreachable!(),
                    };
                    let room = self.routers[nidx]
                        .occupancy(input)
                        .saturating_add(staged_count[nidx][input.index()])
                        < self.routers[nidx].capacity();
                    if !room {
                        self.stats.stalls += 1;
                        continue;
                    }
                    if let Some(mut flit) =
                        self.routers[idx].arbitrate_ordered(port, self.config.routing)
                    {
                        match port {
                            Port::East => flit.packet.dx -= 1,
                            Port::West => flit.packet.dx += 1,
                            Port::North => flit.packet.dy -= 1,
                            Port::South => flit.packet.dy += 1,
                            Port::Local => unreachable!(),
                        }
                        flit.hops += 1;
                        if let Some(injector) = &self.injector {
                            // At most one flit crosses a given (router, port)
                            // link per cycle, so (cycle, link) is a unique,
                            // order-independent decision coordinate.
                            let link = ((idx as u64) << 3) | port.index() as u64;
                            let event = ((flit.packet.axon as u64) << 8) | flit.packet.slot as u64;
                            match injector.link_fault(self.now, link, event) {
                                Some(LinkFault::Drop) => {
                                    self.stats.dropped += 1;
                                    self.stats.faults.packets_dropped += 1;
                                    continue;
                                }
                                Some(LinkFault::Corrupt { salt }) => {
                                    // Re-aim at a deterministic bogus core,
                                    // relative to the router the flit just
                                    // reached.
                                    let (cx, cy) = brainsim_faults::pick_cell(salt, width, height);
                                    flit.packet.dx = (cx as i64 - nx) as i16;
                                    flit.packet.dy = (cy as i64 - ny) as i16;
                                    self.stats.faults.packets_corrupted += 1;
                                }
                                Some(LinkFault::Delay(ticks)) => {
                                    self.stats.faults.packets_delayed += 1;
                                    staged_count[nidx][input.index()] += 1;
                                    self.delayed
                                        .push((self.now + ticks as u64, nidx, input, flit));
                                    continue;
                                }
                                None => {}
                            }
                        }
                        staged_count[nidx][input.index()] += 1;
                        staged.push((nidx, input, flit));
                    }
                }
            }
        }

        for (nidx, input, flit) in staged {
            let accepted = self.routers[nidx].accept(input, flit);
            debug_assert!(accepted, "staged move exceeded checked capacity");
        }

        self.now += 1;
        self.stats.cycles += 1;
        let buffered = self.buffered() as u64;
        self.stats.occupancy.record(buffered);
        self.stats.peak_buffered = self.stats.peak_buffered.max(buffered);
        deliveries
    }

    /// Runs cycles until the mesh drains or `max_cycles` elapse, collecting
    /// all deliveries.
    pub fn drain(&mut self, max_cycles: u64) -> Vec<Delivery> {
        let mut all = Vec::new();
        for _ in 0..max_cycles {
            if self.buffered() == 0 {
                break;
            }
            all.extend(self.cycle());
        }
        all
    }

    /// Captures the complete runtime image of the mesh: configuration,
    /// every router's FIFO contents and arbitration pointers, fault-delayed
    /// flits, the cycle counter and the statistics.
    ///
    /// The fault injector is *not* part of the image (it is pure,
    /// seed-derived state); the restoring side re-arms it from the retained
    /// [`brainsim_faults::FaultPlan`] via [`MeshNoc::set_fault_injector`].
    pub fn export_state(&self) -> NocState {
        NocState {
            config: self.config,
            routers: self.routers.iter().map(Router::export_state).collect(),
            now: self.now,
            stats: self.stats,
            delayed: self
                .delayed
                .iter()
                .map(|&(release_at, router, port, flit)| DelayedFlit {
                    release_at,
                    router,
                    port,
                    flit,
                })
                .collect(),
        }
    }

    /// Rebuilds a mesh from an exported image.
    ///
    /// Every field is validated — dimensions, router count, FIFO lengths
    /// against the configured capacity, arbitration pointers, delayed-flit
    /// indices — so corrupted state yields a typed error, never a panic.
    /// A restored mesh continues cycle-identically to the original (re-arm
    /// the fault injector first when the run used link faults).
    ///
    /// # Errors
    ///
    /// [`NocStateError`] naming the failed check.
    pub fn import_state(state: &NocState) -> Result<MeshNoc, NocStateError> {
        let config = state.config;
        if config.width == 0 || config.height == 0 {
            return Err(NocStateError::Shape("zero mesh dimension"));
        }
        if config.fifo_capacity == 0 {
            return Err(NocStateError::Shape("zero FIFO capacity"));
        }
        if state.routers.len() != config.width * config.height {
            return Err(NocStateError::Shape("router count"));
        }
        for d in &state.delayed {
            if d.router >= state.routers.len() {
                return Err(NocStateError::Shape("delayed-flit router index"));
            }
        }
        let routers = state
            .routers
            .iter()
            .map(|r| Router::import_state(config.fifo_capacity, r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MeshNoc {
            config,
            routers,
            now: state.now,
            stats: state.stats,
            injector: None,
            delayed: state
                .delayed
                .iter()
                .map(|d| (d.release_at, d.router, d.port, d.flit))
                .collect(),
        })
    }
}

/// A flit held back by a fault-injected delay, in serializable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayedFlit {
    /// Cycle at which the flit re-enters its target FIFO.
    pub release_at: u64,
    /// Target router index (row-major).
    pub router: usize,
    /// Target input port.
    pub port: Port,
    /// The held flit.
    pub flit: Flit,
}

/// Complete runtime image of a [`MeshNoc`]; see [`MeshNoc::export_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocState {
    /// Mesh configuration.
    pub config: NocConfig,
    /// Per-router state, row-major.
    pub routers: Vec<RouterState>,
    /// Cycles elapsed.
    pub now: u64,
    /// Aggregate statistics.
    pub stats: NocStats,
    /// Flits held back by delay faults.
    pub delayed: Vec<DelayedFlit>,
}

/// Error from [`MeshNoc::import_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocStateError {
    /// A router image failed validation.
    Router(RouterStateError),
    /// A dimension, count or index is inconsistent.
    Shape(&'static str),
}

impl fmt::Display for NocStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocStateError::Router(e) => write!(f, "router state rejected: {e}"),
            NocStateError::Shape(what) => write!(f, "malformed mesh state: {what}"),
        }
    }
}

impl std::error::Error for NocStateError {}

impl From<RouterStateError> for NocStateError {
    fn from(e: RouterStateError) -> NocStateError {
        NocStateError::Router(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(w: usize, h: usize) -> MeshNoc {
        MeshNoc::new(NocConfig {
            width: w,
            height: h,
            fifo_capacity: 4,
            routing: RoutingOrder::default(),
        })
    }

    fn pkt(dx: i16, dy: i16) -> Packet {
        Packet::new(dx, dy, 42, 3).unwrap()
    }

    #[test]
    fn occupancy_histogram_tracks_buffered_flits() {
        let mut noc = mesh(5, 5);
        for _ in 0..3 {
            noc.inject(0, 0, pkt(3, 2)).unwrap();
        }
        noc.drain(100);
        let stats = noc.stats();
        assert_eq!(stats.occupancy.total(), stats.cycles);
        assert!(stats.peak_buffered >= 1);
        // The final drain cycle sampled an empty mesh.
        assert!(stats.occupancy.buckets[0] >= 1);
    }

    #[test]
    fn single_packet_exact_latency_and_hops() {
        let mut noc = mesh(5, 5);
        noc.inject(0, 0, pkt(3, 2)).unwrap();
        let deliveries = noc.drain(100);
        assert_eq!(deliveries.len(), 1);
        let d = &deliveries[0];
        assert_eq!((d.x, d.y), (3, 2));
        assert_eq!(d.hops, 5);
        // 5 hops + 1 ejection cycle, uncontended.
        assert_eq!(d.latency, 6);
        assert!(d.packet.is_local());
        assert_eq!(d.packet.axon, 42);
        assert_eq!(d.packet.slot, 3);
    }

    #[test]
    fn local_delivery_takes_one_cycle() {
        let mut noc = mesh(2, 2);
        noc.inject(1, 1, pkt(0, 0)).unwrap();
        let deliveries = noc.cycle();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].latency, 1);
        assert_eq!(deliveries[0].hops, 0);
    }

    #[test]
    fn westward_and_southward_routing() {
        let mut noc = mesh(4, 4);
        noc.inject(3, 3, pkt(-3, -2)).unwrap();
        let deliveries = noc.drain(100);
        assert_eq!(deliveries.len(), 1);
        assert_eq!((deliveries[0].x, deliveries[0].y), (0, 1));
        assert_eq!(deliveries[0].hops, 5);
    }

    #[test]
    fn conservation_under_load() {
        let mut noc = mesh(4, 4);
        let mut sent = 0u64;
        for y in 0..4i16 {
            for x in 0..4i16 {
                let p = Packet::new(3 - x, 3 - y, 0, 0).unwrap();
                if noc.inject(x as usize, y as usize, p).is_ok() {
                    sent += 1;
                }
            }
        }
        let deliveries = noc.drain(1000);
        assert_eq!(deliveries.len() as u64, sent);
        assert_eq!(noc.stats().delivered, sent);
        assert_eq!(noc.buffered(), 0);
        // All packets target (3, 3) and the total hop count equals the sum
        // of Manhattan distances from every source.
        assert!(deliveries.iter().all(|d| (d.x, d.y) == (3, 3)));
        let expected: u64 = (0..4i64)
            .flat_map(|y| (0..4i64).map(move |x| ((3 - x).abs() + (3 - y).abs()) as u64))
            .sum();
        assert_eq!(noc.stats().total_hops, expected);
    }

    #[test]
    fn yx_routing_conserves_and_matches_hop_count() {
        use crate::router::RoutingOrder;
        let mut noc = MeshNoc::new(NocConfig {
            width: 5,
            height: 5,
            fifo_capacity: 8,
            routing: RoutingOrder::YThenX,
        });
        let mut sent = 0u64;
        for y in 0..5i16 {
            for x in 0..5i16 {
                let p = Packet::new(4 - x, -y, 0, 0).unwrap();
                if noc.inject(x as usize, y as usize, p).is_ok() {
                    sent += 1;
                }
            }
        }
        let deliveries = noc.drain(1000);
        assert_eq!(deliveries.len() as u64, sent);
        // Hop counts are path-order independent: still Manhattan distance.
        for d in &deliveries {
            assert_eq!((d.x, d.y), (4, 0));
        }
        let expected: u64 = (0..5i64)
            .flat_map(|y| (0..5i64).map(move |x| ((4 - x).abs() + y) as u64))
            .sum();
        assert_eq!(noc.stats().total_hops, expected);
    }

    #[test]
    fn injection_backpressure_rejects_when_full() {
        let mut noc = MeshNoc::new(NocConfig {
            width: 2,
            height: 1,
            fifo_capacity: 2,
            ..NocConfig::default()
        });
        assert!(noc.inject(0, 0, pkt(1, 0)).is_ok());
        assert!(noc.inject(0, 0, pkt(1, 0)).is_ok());
        assert!(noc.inject(0, 0, pkt(1, 0)).is_err());
        assert_eq!(noc.stats().rejected, 1);
        // The refusal is also surfaced through the census export.
        assert_eq!(noc.census().packets_rejected, 1);
        noc.drain(20);
        assert_eq!(noc.census().hops, noc.stats().total_hops);
    }

    #[test]
    fn hotspot_contention_accrues_latency() {
        // Many sources all target core (0, 0); ejection bandwidth is 1/cycle
        // so later packets must queue.
        let mut noc = mesh(4, 4);
        for y in 0..4i16 {
            for x in 0..4i16 {
                if x == 0 && y == 0 {
                    continue;
                }
                noc.inject(x as usize, y as usize, Packet::new(-x, -y, 0, 0).unwrap())
                    .unwrap();
            }
        }
        let deliveries = noc.drain(1000);
        assert_eq!(deliveries.len(), 15);
        // The destination can eject one packet per cycle, so the last
        // delivery is at least 15 cycles in.
        let max = deliveries.iter().map(|d| d.latency).max().unwrap();
        assert!(max >= 15, "max latency {max}");
        assert!(noc.stats().mean_latency() > 2.0);
    }

    #[test]
    fn inject_off_mesh_is_typed_error() {
        let mut noc = mesh(2, 2);
        assert_eq!(
            noc.inject(0, 0, pkt(5, 0)),
            Err(NocInjectError::DestinationOffMesh { x: 5, y: 0 })
        );
        assert_eq!(
            noc.inject(9, 0, pkt(0, 0)),
            Err(NocInjectError::SourceOffMesh { x: 9, y: 0 })
        );
        // Off-mesh attempts are configuration errors, not backpressure:
        // they must not perturb the statistics.
        assert_eq!(noc.stats().injected, 0);
        assert_eq!(noc.stats().rejected, 0);
    }

    #[test]
    fn backpressure_error_returns_packet() {
        let mut noc = MeshNoc::new(NocConfig {
            width: 2,
            height: 1,
            fifo_capacity: 1,
            ..NocConfig::default()
        });
        noc.inject(0, 0, pkt(1, 0)).unwrap();
        match noc.inject(0, 0, pkt(1, 0)) {
            Err(NocInjectError::Backpressure(p)) => assert_eq!(p, pkt(1, 0)),
            other => panic!("expected backpressure, got {other:?}"),
        }
    }

    #[test]
    fn total_link_fault_drops_all_traffic() {
        use brainsim_faults::{FaultInjector, FaultPlan};
        let mut noc = mesh(4, 4);
        noc.set_fault_injector(FaultInjector::new(&FaultPlan::new(3).with_link_drop(1.0)));
        let mut sent = 0u64;
        for y in 0..4i16 {
            for x in 0..4i16 {
                if x == 3 && y == 3 {
                    continue; // local deliveries never cross a link
                }
                if noc
                    .inject(
                        x as usize,
                        y as usize,
                        Packet::new(3 - x, 3 - y, 0, 0).unwrap(),
                    )
                    .is_ok()
                {
                    sent += 1;
                }
            }
        }
        let deliveries = noc.drain(1000);
        assert!(deliveries.is_empty(), "every packet crosses ≥1 faulty link");
        assert_eq!(noc.stats().dropped, sent);
        assert_eq!(noc.stats().faults.packets_dropped, sent);
        assert_eq!(noc.stats().in_flight(), 0);
        assert_eq!(noc.buffered(), 0);
    }

    #[test]
    fn corrupted_packets_still_deliver_somewhere() {
        use brainsim_faults::{FaultInjector, FaultPlan};
        let mut noc = mesh(4, 4);
        noc.set_fault_injector(FaultInjector::new(
            &FaultPlan::new(3).with_link_corrupt(1.0),
        ));
        noc.inject(0, 0, pkt(3, 3)).unwrap();
        let deliveries = noc.drain(1000);
        // Conservation still holds: the packet lands, just not at (3, 3)
        // necessarily; and the mesh fully drains.
        assert_eq!(deliveries.len(), 1);
        assert!(noc.stats().faults.packets_corrupted >= 1);
        assert_eq!(noc.buffered(), 0);
    }

    #[test]
    fn delay_fault_adds_latency_but_conserves() {
        use brainsim_faults::{FaultInjector, FaultPlan};
        let run = |delay_rate: f64| {
            let mut noc = mesh(5, 1);
            noc.set_fault_injector(FaultInjector::new(
                &FaultPlan::new(11).with_link_delay(delay_rate, 5),
            ));
            noc.inject(0, 0, pkt(4, 0)).unwrap();
            let deliveries = noc.drain(1000);
            assert_eq!(deliveries.len(), 1);
            deliveries[0].latency
        };
        let healthy = run(0.0);
        let delayed = run(1.0);
        // A delayed hop takes `ticks` cycles instead of 1: +4 per hop here.
        assert!(
            delayed >= healthy + 4 * (5 - 1),
            "4 delayed hops at +4 extra cycles each: {healthy} vs {delayed}"
        );
    }

    #[test]
    fn fault_pattern_is_seed_deterministic() {
        use brainsim_faults::{FaultInjector, FaultPlan};
        let run = |seed: u64| {
            let mut noc = mesh(4, 4);
            noc.set_fault_injector(FaultInjector::new(
                &FaultPlan::new(seed)
                    .with_link_drop(0.3)
                    .with_link_corrupt(0.2)
                    .with_link_delay(0.2, 2),
            ));
            for y in 0..4i16 {
                for x in 0..4i16 {
                    let _ = noc.inject(
                        x as usize,
                        y as usize,
                        Packet::new(3 - x, 3 - y, 7, 1).unwrap(),
                    );
                }
            }
            let mut deliveries = noc.drain(1000);
            deliveries.sort_by_key(|d| (d.x, d.y, d.latency));
            (deliveries, *noc.stats())
        };
        let (d1, s1) = run(42);
        let (d2, s2) = run(42);
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        let (_, s3) = run(43);
        assert_ne!(s1, s3, "different seeds give different fault patterns");
    }

    #[test]
    fn benign_injector_is_discarded() {
        use brainsim_faults::{FaultInjector, FaultPlan};
        let mut faulty = mesh(4, 4);
        faulty.set_fault_injector(FaultInjector::new(&FaultPlan::new(5)));
        let mut healthy = mesh(4, 4);
        for noc in [&mut faulty, &mut healthy] {
            for y in 0..4i16 {
                for x in 0..4i16 {
                    let _ = noc.inject(
                        x as usize,
                        y as usize,
                        Packet::new(3 - x, 3 - y, 0, 0).unwrap(),
                    );
                }
            }
        }
        assert_eq!(faulty.drain(1000), healthy.drain(1000));
        assert_eq!(faulty.stats(), healthy.stats());
    }

    #[test]
    fn stats_mean_helpers() {
        let mut noc = mesh(3, 1);
        noc.inject(0, 0, pkt(2, 0)).unwrap();
        noc.drain(100);
        let s = noc.stats();
        assert!((s.mean_hops() - 2.0).abs() < 1e-9);
        assert!(s.mean_latency() >= 3.0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn state_round_trip_mid_flight() {
        use brainsim_faults::{FaultInjector, FaultPlan};
        let plan = FaultPlan::new(21)
            .with_link_delay(0.4, 3)
            .with_link_corrupt(0.1);
        let mut noc = mesh(4, 4);
        noc.set_fault_injector(FaultInjector::new(&plan));
        for y in 0..4i16 {
            for x in 0..4i16 {
                let _ = noc.inject(
                    x as usize,
                    y as usize,
                    Packet::new(3 - x, 3 - y, 7, 2).unwrap(),
                );
            }
        }
        // Leave traffic (including fault-delayed flits) in flight.
        for _ in 0..3 {
            noc.cycle();
        }
        let state = noc.export_state();
        assert_eq!(state, noc.export_state(), "export is a pure read");
        let mut restored = MeshNoc::import_state(&state).unwrap();
        assert_eq!(restored.export_state(), state, "import/export round-trips");
        restored.set_fault_injector(FaultInjector::new(&plan));
        let a = noc.drain(1000);
        let b = restored.drain(1000);
        assert_eq!(a, b, "restored mesh replays the same delivery stream");
        assert_eq!(noc.stats(), restored.stats());
    }

    #[test]
    fn import_rejects_malformed_state() {
        let mut noc = mesh(3, 3);
        noc.inject(0, 0, pkt(2, 2)).unwrap();
        noc.cycle();
        let good = noc.export_state();
        assert!(MeshNoc::import_state(&good).is_ok());

        let mut bad = good.clone();
        bad.routers.pop();
        assert!(matches!(
            MeshNoc::import_state(&bad),
            Err(NocStateError::Shape("router count"))
        ));

        let mut bad = good.clone();
        bad.config.fifo_capacity = 0;
        assert!(matches!(
            MeshNoc::import_state(&bad),
            Err(NocStateError::Shape("zero FIFO capacity"))
        ));

        let mut bad = good.clone();
        bad.routers[0].queues[0] = vec![
            Flit {
                packet: pkt(1, 0),
                injected_at: 0,
                hops: 0,
            };
            5
        ];
        assert!(matches!(
            MeshNoc::import_state(&bad),
            Err(NocStateError::Router(RouterStateError::QueueOverflow))
        ));

        let mut bad = good.clone();
        bad.routers[0].rr[2] = 9;
        assert!(matches!(
            MeshNoc::import_state(&bad),
            Err(NocStateError::Router(RouterStateError::BadArbiter))
        ));

        let mut bad = good;
        bad.delayed.push(DelayedFlit {
            release_at: 1,
            router: 99,
            port: Port::Local,
            flit: Flit {
                packet: pkt(0, 0),
                injected_at: 0,
                hops: 0,
            },
        });
        assert!(matches!(
            MeshNoc::import_state(&bad),
            Err(NocStateError::Shape("delayed-flit router index"))
        ));
    }
}
