//! # brainsim-encoding
//!
//! Spike codecs: the bridges between analogue values and the chip's binary,
//! tick-quantised world.
//!
//! * [`RateCode`] — value ↦ spike count over a window. The deterministic
//!   encoder uses error diffusion (no random sparkle, exactly
//!   `round(v · window)` spikes); the stochastic encoder draws Bernoulli
//!   spikes from a seeded LFSR, matching the silicon's pseudo-random
//!   sources.
//! * [`TimeToSpikeCode`] — value ↦ latency of a single spike; the fastest
//!   code at one spike per value.
//! * [`PopulationCode`] — value ↦ place-coded activity across N channels
//!   with triangular tuning curves; decoded by centre-of-mass.
//! * [`image_to_rates`] / [`FrameEncoder`] — grayscale frames ↦ per-pixel
//!   spike trains for the vision front-ends.
//!
//! Every codec has a decode side and a tested round-trip error bound.
//! The [`aer`] module adds the address-event representation wire format
//! for recording and replaying spike streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod aer;

use brainsim_neuron::Lfsr;

/// Rate coding over a fixed window of ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateCode {
    window: usize,
}

impl RateCode {
    /// Creates a rate code over `window` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> RateCode {
        assert!(window > 0, "rate window must be non-zero");
        RateCode { window }
    }

    /// The window length in ticks.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Deterministic (error-diffusion) encoding of `value ∈ [0, 1]`.
    ///
    /// Produces exactly `round(value · window)` spikes, maximally evenly
    /// spaced. Values are clamped to `[0, 1]`.
    pub fn encode(&self, value: f64) -> Vec<bool> {
        let v = value.clamp(0.0, 1.0);
        let mut acc = 0.5; // rounding offset
        let mut train = Vec::with_capacity(self.window);
        for _ in 0..self.window {
            acc += v;
            if acc >= 1.0 {
                acc -= 1.0;
                train.push(true);
            } else {
                train.push(false);
            }
        }
        train
    }

    /// Stochastic (Bernoulli) encoding of `value ∈ [0, 1]` using `rng`.
    pub fn encode_stochastic(&self, value: f64, rng: &mut Lfsr) -> Vec<bool> {
        let v = value.clamp(0.0, 1.0);
        let numerator = (v * 256.0).round() as u32;
        (0..self.window)
            .map(|_| rng.bernoulli_256(numerator))
            .collect()
    }

    /// Decodes a spike train back to a value in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the train length differs from the window.
    pub fn decode(&self, train: &[bool]) -> f64 {
        assert_eq!(train.len(), self.window, "train length != window");
        train.iter().filter(|&&s| s).count() as f64 / self.window as f64
    }
}

/// Time-to-first-spike coding: larger values spike earlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeToSpikeCode {
    window: usize,
}

impl TimeToSpikeCode {
    /// Creates a latency code over `window` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn new(window: usize) -> TimeToSpikeCode {
        assert!(window >= 2, "latency window must be at least 2");
        TimeToSpikeCode { window }
    }

    /// Encodes `value ∈ [0, 1]` as a single spike at latency
    /// `round((1 − value) · (window − 1))`.
    pub fn encode(&self, value: f64) -> Vec<bool> {
        let v = value.clamp(0.0, 1.0);
        let latency = ((1.0 - v) * (self.window - 1) as f64).round() as usize;
        (0..self.window).map(|t| t == latency).collect()
    }

    /// Decodes the first spike's latency back to a value; an empty train
    /// decodes to 0.
    ///
    /// # Panics
    ///
    /// Panics if the train length differs from the window.
    pub fn decode(&self, train: &[bool]) -> f64 {
        assert_eq!(train.len(), self.window, "train length != window");
        match train.iter().position(|&s| s) {
            Some(latency) => 1.0 - latency as f64 / (self.window - 1) as f64,
            None => 0.0,
        }
    }
}

/// Place coding across `channels` channels with triangular tuning curves of
/// half-width one inter-channel spacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationCode {
    channels: usize,
    window: usize,
}

impl PopulationCode {
    /// Creates a population code.
    ///
    /// # Panics
    ///
    /// Panics if `channels < 2` or `window` is zero.
    pub fn new(channels: usize, window: usize) -> PopulationCode {
        assert!(channels >= 2, "population needs at least 2 channels");
        assert!(window > 0, "window must be non-zero");
        PopulationCode { channels, window }
    }

    /// Per-channel firing intensities for `value ∈ [0, 1]` (each in `[0, 1]`).
    pub fn intensities(&self, value: f64) -> Vec<f64> {
        let v = value.clamp(0.0, 1.0);
        let spacing = 1.0 / (self.channels - 1) as f64;
        (0..self.channels)
            .map(|c| {
                let centre = c as f64 * spacing;
                (1.0 - (v - centre).abs() / spacing).max(0.0)
            })
            .collect()
    }

    /// Encodes a value as one deterministic rate train per channel.
    pub fn encode(&self, value: f64) -> Vec<Vec<bool>> {
        let rate = RateCode::new(self.window);
        self.intensities(value)
            .into_iter()
            .map(|i| rate.encode(i))
            .collect()
    }

    /// Decodes per-channel spike counts by centre of mass.
    ///
    /// Returns 0 if no channel spiked.
    ///
    /// # Panics
    ///
    /// Panics if the number of trains differs from the channel count.
    pub fn decode(&self, trains: &[Vec<bool>]) -> f64 {
        assert_eq!(trains.len(), self.channels, "train count != channels");
        let spacing = 1.0 / (self.channels - 1) as f64;
        let mut mass = 0.0;
        let mut moment = 0.0;
        for (c, train) in trains.iter().enumerate() {
            let count = train.iter().filter(|&&s| s).count() as f64;
            mass += count;
            moment += count * c as f64 * spacing;
        }
        if mass == 0.0 {
            0.0
        } else {
            moment / mass
        }
    }
}

/// A grayscale frame with pixels in `[0, 1]`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Frame {
    /// Creates a frame from row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn new(width: usize, height: usize, pixels: Vec<f64>) -> Frame {
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        Frame {
            width,
            height,
            pixels,
        }
    }

    /// Frame width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Row-major pixel slice.
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }
}

/// Encodes a frame into one deterministic rate train per pixel
/// (row-major), over `window` ticks.
pub fn image_to_rates(frame: &Frame, window: usize) -> Vec<Vec<bool>> {
    let code = RateCode::new(window);
    frame.pixels().iter().map(|&p| code.encode(p)).collect()
}

/// Streams a frame as per-tick spike vectors: `tick_spikes(t)[p]` is whether
/// pixel `p` spikes at tick `t` of the window.
#[derive(Debug, Clone)]
pub struct FrameEncoder {
    trains: Vec<Vec<bool>>,
    window: usize,
}

impl FrameEncoder {
    /// Builds the per-pixel trains for a frame.
    pub fn new(frame: &Frame, window: usize) -> FrameEncoder {
        FrameEncoder {
            trains: image_to_rates(frame, window),
            window,
        }
    }

    /// The encoding window in ticks.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The spike vector for tick `t` (all pixels), `t` beyond the window
    /// yields all-false.
    pub fn tick_spikes(&self, t: usize) -> Vec<bool> {
        self.trains
            .iter()
            .map(|train| t < self.window && train[t])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_round_trip_error_bounded() {
        let code = RateCode::new(32);
        for i in 0..=100 {
            let v = i as f64 / 100.0;
            let err = (code.decode(&code.encode(v)) - v).abs();
            assert!(err <= 0.5 / 32.0 + 1e-12, "v={v} err={err}");
        }
    }

    #[test]
    fn rate_extremes() {
        let code = RateCode::new(16);
        assert_eq!(code.decode(&code.encode(0.0)), 0.0);
        assert_eq!(code.decode(&code.encode(1.0)), 1.0);
        assert_eq!(code.decode(&code.encode(-5.0)), 0.0); // clamped
        assert_eq!(code.decode(&code.encode(7.0)), 1.0);
    }

    #[test]
    fn rate_spikes_evenly_spaced() {
        let code = RateCode::new(8);
        let train = code.encode(0.5);
        assert_eq!(train.iter().filter(|&&s| s).count(), 4);
        // Alternating pattern, no two adjacent spikes.
        for w in train.windows(2) {
            assert!(!(w[0] && w[1]));
        }
    }

    #[test]
    fn rate_stochastic_tracks_value() {
        let code = RateCode::new(4000);
        let mut rng = Lfsr::new(77);
        let train = code.encode_stochastic(0.3, &mut rng);
        let decoded = code.decode(&train);
        assert!((decoded - 0.3).abs() < 0.03, "decoded {decoded}");
    }

    #[test]
    fn time_to_spike_round_trip() {
        let code = TimeToSpikeCode::new(33);
        for i in 0..=32 {
            let v = i as f64 / 32.0;
            let decoded = code.decode(&code.encode(v));
            assert!((decoded - v).abs() < 1e-9, "v={v} decoded={decoded}");
        }
    }

    #[test]
    fn time_to_spike_extremes_and_empty() {
        let code = TimeToSpikeCode::new(10);
        let one = code.encode(1.0);
        assert!(one[0]);
        let zero = code.encode(0.0);
        assert!(zero[9]);
        assert_eq!(code.decode(&[false; 10]), 0.0);
    }

    #[test]
    fn population_intensities_peak_at_value() {
        let code = PopulationCode::new(5, 8);
        let ints = code.intensities(0.5);
        assert_eq!(ints.len(), 5);
        // Middle channel (centre 0.5) peaks at 1.
        assert!((ints[2] - 1.0).abs() < 1e-9);
        assert!(ints[0] < 1e-9 && ints[4] < 1e-9);
    }

    #[test]
    fn population_round_trip() {
        let code = PopulationCode::new(9, 64);
        for i in 0..=16 {
            let v = i as f64 / 16.0;
            let decoded = code.decode(&code.encode(v));
            assert!((decoded - v).abs() < 0.07, "v={v} decoded={decoded}");
        }
    }

    #[test]
    fn population_empty_decodes_to_zero() {
        let code = PopulationCode::new(3, 4);
        assert_eq!(code.decode(&vec![vec![false; 4]; 3]), 0.0);
    }

    #[test]
    fn frame_accessors_and_encoding() {
        let frame = Frame::new(2, 2, vec![0.0, 1.0, 0.5, 0.25]);
        assert_eq!(frame.pixel(1, 0), 1.0);
        assert_eq!(frame.pixel(0, 1), 0.5);
        let rates = image_to_rates(&frame, 8);
        assert_eq!(rates.len(), 4);
        assert_eq!(rates[1].iter().filter(|&&s| s).count(), 8);
        assert_eq!(rates[0].iter().filter(|&&s| s).count(), 0);
    }

    #[test]
    fn frame_encoder_streams_ticks() {
        let frame = Frame::new(2, 1, vec![1.0, 0.0]);
        let enc = FrameEncoder::new(&frame, 4);
        for t in 0..4 {
            assert_eq!(enc.tick_spikes(t), vec![true, false]);
        }
        assert_eq!(enc.tick_spikes(10), vec![false, false]);
    }

    #[test]
    #[should_panic(expected = "pixel count")]
    fn bad_frame_panics() {
        let _ = Frame::new(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "train length")]
    fn rate_decode_length_checked() {
        RateCode::new(8).decode(&[true; 4]);
    }
}
