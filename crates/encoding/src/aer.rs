//! Address-event representation (AER): the standard wire format for
//! neuromorphic spike streams.
//!
//! An AER stream is a tick-ordered sequence of `(tick, port)` events. The
//! binary layout here is a compact little header plus delta-encoded
//! events, suitable for logging chip output, replaying recorded stimuli,
//! and exchanging spike data between tools:
//!
//! ```text
//! magic  "AER1"          4 bytes
//! count  u32             number of events
//! event  (delta: u32, port: u32) × count   tick delta from previous event
//! ```
//!
//! ```
//! use brainsim_encoding::aer::{self, AerEvent};
//!
//! let events = vec![AerEvent { tick: 3, port: 9 }, AerEvent { tick: 7, port: 1 }];
//! let mut buf = bytes::BytesMut::new();
//! aer::encode(&events, &mut buf).unwrap();
//! assert_eq!(aer::decode(&mut buf).unwrap(), events);
//! ```

use std::fmt;

use bytes::{Buf, BufMut};

/// One address event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AerEvent {
    /// Global tick of the event.
    pub tick: u64,
    /// Port (address) that spiked.
    pub port: u32,
}

/// Errors from AER decoding or stream validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AerError {
    /// The magic header was missing or wrong.
    BadMagic,
    /// The buffer ended before `count` events were read.
    Truncated,
    /// Events were not in non-decreasing tick order at encode time.
    NotSorted,
}

impl fmt::Display for AerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AerError::BadMagic => write!(f, "missing AER1 magic header"),
            AerError::Truncated => write!(f, "truncated AER stream"),
            AerError::NotSorted => write!(f, "events not in tick order"),
        }
    }
}

impl std::error::Error for AerError {}

const MAGIC: &[u8; 4] = b"AER1";

/// Encodes a tick-ordered event stream.
///
/// # Errors
///
/// Returns [`AerError::NotSorted`] if ticks ever decrease.
pub fn encode<B: BufMut>(events: &[AerEvent], buf: &mut B) -> Result<(), AerError> {
    buf.put_slice(MAGIC);
    buf.put_u32(events.len() as u32);
    let mut last = 0u64;
    for event in events {
        if event.tick < last {
            return Err(AerError::NotSorted);
        }
        buf.put_u32((event.tick - last) as u32);
        buf.put_u32(event.port);
        last = event.tick;
    }
    Ok(())
}

/// Decodes an AER stream.
///
/// # Errors
///
/// See [`AerError`].
pub fn decode<B: Buf>(buf: &mut B) -> Result<Vec<AerEvent>, AerError> {
    if buf.remaining() < 8 {
        return Err(AerError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(AerError::BadMagic);
    }
    let count = buf.get_u32() as usize;
    let mut events = Vec::with_capacity(count);
    let mut tick = 0u64;
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(AerError::Truncated);
        }
        tick += buf.get_u32() as u64;
        let port = buf.get_u32();
        events.push(AerEvent { tick, port });
    }
    Ok(events)
}

/// Converts a per-tick raster (`raster[t][p]`) into an event stream.
pub fn from_raster(raster: &[Vec<bool>]) -> Vec<AerEvent> {
    let mut events = Vec::new();
    for (t, row) in raster.iter().enumerate() {
        for (p, &spiked) in row.iter().enumerate() {
            if spiked {
                events.push(AerEvent {
                    tick: t as u64,
                    port: p as u32,
                });
            }
        }
    }
    events
}

/// Converts an event stream back into a raster of `ticks × ports`; events
/// outside the window are ignored.
pub fn to_raster(events: &[AerEvent], ticks: usize, ports: usize) -> Vec<Vec<bool>> {
    let mut raster = vec![vec![false; ports]; ticks];
    for event in events {
        if (event.tick as usize) < ticks && (event.port as usize) < ports {
            raster[event.tick as usize][event.port as usize] = true;
        }
    }
    raster
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> Vec<AerEvent> {
        vec![
            AerEvent { tick: 0, port: 3 },
            AerEvent { tick: 0, port: 7 },
            AerEvent { tick: 2, port: 1 },
            AerEvent {
                tick: 100_000,
                port: 0,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let events = sample();
        let mut buf = BytesMut::new();
        encode(&events, &mut buf).unwrap();
        let decoded = decode(&mut buf).unwrap();
        assert_eq!(decoded, events);
    }

    #[test]
    fn empty_stream_round_trips() {
        let mut buf = BytesMut::new();
        encode(&[], &mut buf).unwrap();
        assert_eq!(buf.len(), 8);
        assert_eq!(decode(&mut buf).unwrap(), Vec::new());
    }

    #[test]
    fn unsorted_events_rejected() {
        let events = vec![AerEvent { tick: 5, port: 0 }, AerEvent { tick: 3, port: 0 }];
        let mut buf = BytesMut::new();
        assert_eq!(encode(&events, &mut buf), Err(AerError::NotSorted));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"NOPE");
        buf.put_u32(0);
        assert_eq!(decode(&mut buf), Err(AerError::BadMagic));
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut buf = BytesMut::new();
        encode(&sample(), &mut buf).unwrap();
        let mut short = buf.split_to(buf.len() - 3);
        assert_eq!(decode(&mut short), Err(AerError::Truncated));
    }

    #[test]
    fn raster_round_trip() {
        let raster = vec![
            vec![true, false, true],
            vec![false, false, false],
            vec![false, true, false],
        ];
        let events = from_raster(&raster);
        assert_eq!(events.len(), 3);
        assert_eq!(to_raster(&events, 3, 3), raster);
    }

    #[test]
    fn to_raster_ignores_out_of_window_events() {
        let events = vec![AerEvent { tick: 99, port: 99 }];
        let raster = to_raster(&events, 2, 2);
        assert!(raster.iter().flatten().all(|&s| !s));
    }
}
