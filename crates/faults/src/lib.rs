//! # brainsim-faults
//!
//! Deterministic fault injection for the neurosynaptic-core simulator.
//!
//! Real neuromorphic silicon ships with yield defects — dead neurons,
//! stuck crossbar bits, flaky mesh links — and the architecture is
//! expressly designed to degrade gracefully under them. This crate models
//! those defects as a *seeded, fully deterministic* [`FaultPlan`]: every
//! fault decision is a pure function of the plan's `u64` seed and the
//! coordinates of the decision (core, neuron, axon, tick…), computed by a
//! counter-based hash rather than a streaming RNG. Two consequences:
//!
//! * **Reproducibility** — the same seed produces bit-identical fault
//!   patterns regardless of evaluation order, thread count, or how many
//!   times a query is repeated.
//! * **Zero cost when benign** — a plan with all rates at zero is
//!   detectably benign ([`FaultInjector::is_benign`]), so the simulator's
//!   hot paths skip fault queries entirely.
//!
//! Injected and absorbed faults are counted in [`FaultStats`], which the
//! core, NoC and chip layers merge into their own statistics blocks.
//!
//! ```
//! use brainsim_faults::{FaultInjector, FaultPlan};
//!
//! let plan = FaultPlan::new(0xFEED).with_dead_neuron(0.05);
//! let injector = FaultInjector::new(&plan);
//! let a = injector.neuron_fault(0, 0, 17);
//! let b = injector.neuron_fault(0, 0, 17);
//! assert_eq!(a, b); // decisions are pure functions of the seed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod inject;
mod plan;
mod rng;
mod stats;

pub use inject::{FaultInjector, LinkFault, NeuronFault, StuckAt};
pub use plan::{FaultPlan, OverflowPolicy};
pub use rng::{pick_cell, DetRng};
pub use stats::FaultStats;
