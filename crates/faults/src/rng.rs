//! The crate's own deterministic pseudo-random primitives.
//!
//! No external `rand`: fault modelling needs draws that are cheap,
//! reproducible across platforms, and (for the counter-based decisions)
//! order-independent. A splitmix64 finaliser provides stateless hashing;
//! [`DetRng`] is a xorshift64* stream for callers that want a sequence.

/// The splitmix64 finaliser: a high-quality 64-bit mixing function.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a decision coordinate tuple into 64 uniform bits.
#[inline]
pub(crate) fn hash4(seed: u64, domain: u64, a: u64, b: u64, c: u64) -> u64 {
    // Feed-forward chain of splitmix rounds; each word lands in a distinct
    // position so (a, b) and (b, a) decorrelate.
    let mut h = mix(seed ^ domain.wrapping_mul(0xA076_1D64_78BD_642F));
    h = mix(h ^ a.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    h = mix(h ^ b.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
    mix(h ^ c.wrapping_mul(0x5897_89E6_C0A2_29AF))
}

/// A deterministic xorshift64* stream seeded from a `u64`.
///
/// Used where a *sequence* of draws is wanted (the placement annealer, the
/// defect-sweep example); fault decisions themselves use stateless hashing
/// so they are order-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a stream from a seed (any value, including zero).
    pub fn from_seed(seed: u64) -> DetRng {
        // Mix so small seeds do not start in a low-entropy region; the
        // result is never zero because mix is a bijection and we force a
        // non-zero state with the |1.
        DetRng {
            state: mix(seed) | 1,
        }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform draw in `0..bound` (`bound` must be non-zero).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is empty");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// A uniform draw in `0..bound` as `usize`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Maps 64 salt bits to a cell of a `width × height` grid, uniformly.
///
/// Used to pick the bogus destination of a corrupted packet; pure, so the
/// corruption is reproducible.
pub fn pick_cell(salt: u64, width: usize, height: usize) -> (usize, usize) {
    let cells = (width.max(1) as u64) * (height.max(1) as u64);
    let cell = (((mix(salt) as u128) * (cells as u128)) >> 64) as u64;
    (
        (cell % width.max(1) as u64) as usize,
        (cell / width.max(1) as u64) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = DetRng::from_seed(42);
        let mut b = DetRng::from_seed(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = DetRng::from_seed(1);
        let mut b = DetRng::from_seed(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::from_seed(7);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::from_seed(9);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn hash_is_order_sensitive_in_coordinates() {
        // (a, b) and (b, a) must decide independently.
        let x = hash4(1, 2, 3, 4, 5);
        let y = hash4(1, 2, 4, 3, 5);
        assert_ne!(x, y);
    }

    #[test]
    fn pick_cell_stays_on_grid() {
        for salt in 0..1000u64 {
            let (x, y) = pick_cell(salt, 7, 3);
            assert!(x < 7 && y < 3);
        }
    }

    #[test]
    fn pick_cell_covers_grid() {
        let mut seen = std::collections::BTreeSet::new();
        for salt in 0..4096u64 {
            seen.insert(pick_cell(salt, 4, 4));
        }
        assert_eq!(seen.len(), 16, "every cell reachable");
    }
}
