//! Counters for every fault injected or absorbed during a run.

use serde::{Deserialize, Serialize};

/// Per-layer fault accounting, merged upward into core, NoC and chip
/// statistics.
///
/// Structural counters (`cores_dropped`, `neurons_dead`, …) count *sites*
/// disabled at apply time; event counters (`spikes_suppressed`,
/// `packets_dropped`, …) count per-tick occurrences.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Cores disabled outright by the plan.
    pub cores_dropped: u64,
    /// Neurons configured to never fire.
    pub neurons_dead: u64,
    /// Neurons configured to fire every tick.
    pub neurons_stuck_firing: u64,
    /// Crossbar cells forced to 0.
    pub synapses_stuck_zero: u64,
    /// Crossbar cells forced to 1.
    pub synapses_stuck_one: u64,
    /// Spikes a dead neuron (or dropped core) would have fired.
    pub spikes_suppressed: u64,
    /// Spikes forced by stuck-firing neurons.
    pub spikes_forced: u64,
    /// Spike deliveries / packets dropped in transit.
    pub packets_dropped: u64,
    /// Deliveries whose destination was corrupted en route.
    pub packets_corrupted: u64,
    /// Deliveries delayed by the plan's delay fault.
    pub packets_delayed: u64,
    /// Flits discarded because a fault-delayed queue overflowed.
    pub flits_dropped_overflow: u64,
    /// Deliveries that failed at the destination and were absorbed
    /// (counted, not panicked) under degraded operation.
    pub deliveries_failed: u64,
}

impl FaultStats {
    /// Accumulates another statistics block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.cores_dropped += other.cores_dropped;
        self.neurons_dead += other.neurons_dead;
        self.neurons_stuck_firing += other.neurons_stuck_firing;
        self.synapses_stuck_zero += other.synapses_stuck_zero;
        self.synapses_stuck_one += other.synapses_stuck_one;
        self.spikes_suppressed += other.spikes_suppressed;
        self.spikes_forced += other.spikes_forced;
        self.packets_dropped += other.packets_dropped;
        self.packets_corrupted += other.packets_corrupted;
        self.packets_delayed += other.packets_delayed;
        self.flits_dropped_overflow += other.flits_dropped_overflow;
        self.deliveries_failed += other.deliveries_failed;
    }

    /// Total number of fault events recorded (structural sites plus
    /// per-event occurrences).
    pub fn total(&self) -> u64 {
        self.cores_dropped
            + self.neurons_dead
            + self.neurons_stuck_firing
            + self.synapses_stuck_zero
            + self.synapses_stuck_one
            + self.spikes_suppressed
            + self.spikes_forced
            + self.packets_dropped
            + self.packets_corrupted
            + self.packets_delayed
            + self.flits_dropped_overflow
            + self.deliveries_failed
    }

    /// True when no fault of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Field-wise saturating difference `self − other`: each counter clamps
    /// at zero instead of wrapping.
    ///
    /// This is the inverse of [`FaultStats::merge`] for well-formed inputs
    /// and the tool the recovery engine uses to re-base a migrated core's
    /// cumulative fault accounting: subtract the structural burn of the
    /// condemned cell, then merge the structural burn of the replacement
    /// cell. Saturation (rather than a panic or wrap) keeps the operation
    /// total even over inconsistent snapshots.
    pub fn saturating_sub(&self, other: &FaultStats) -> FaultStats {
        FaultStats {
            cores_dropped: self.cores_dropped.saturating_sub(other.cores_dropped),
            neurons_dead: self.neurons_dead.saturating_sub(other.neurons_dead),
            neurons_stuck_firing: self
                .neurons_stuck_firing
                .saturating_sub(other.neurons_stuck_firing),
            synapses_stuck_zero: self
                .synapses_stuck_zero
                .saturating_sub(other.synapses_stuck_zero),
            synapses_stuck_one: self
                .synapses_stuck_one
                .saturating_sub(other.synapses_stuck_one),
            spikes_suppressed: self
                .spikes_suppressed
                .saturating_sub(other.spikes_suppressed),
            spikes_forced: self.spikes_forced.saturating_sub(other.spikes_forced),
            packets_dropped: self.packets_dropped.saturating_sub(other.packets_dropped),
            packets_corrupted: self
                .packets_corrupted
                .saturating_sub(other.packets_corrupted),
            packets_delayed: self.packets_delayed.saturating_sub(other.packets_delayed),
            flits_dropped_overflow: self
                .flits_dropped_overflow
                .saturating_sub(other.flits_dropped_overflow),
            deliveries_failed: self
                .deliveries_failed
                .saturating_sub(other.deliveries_failed),
        }
    }

    /// Folds a batch of per-shard statistics blocks into one.
    ///
    /// Every counter is a plain sum, so the merge is order-independent —
    /// the property the chip's parallel routing pipeline relies on when it
    /// combines the `FaultStats` produced by concurrently routed spike
    /// shards into a deterministic per-tick total.
    pub fn merge_all<'a, I>(blocks: I) -> FaultStats
    where
        I: IntoIterator<Item = &'a FaultStats>,
    {
        let mut total = FaultStats::default();
        for block in blocks {
            total.merge(block);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        assert!(FaultStats::default().is_empty());
        assert_eq!(FaultStats::default().total(), 0);
    }

    #[test]
    fn merge_sums_fieldwise() {
        let mut a = FaultStats {
            neurons_dead: 2,
            packets_dropped: 5,
            ..FaultStats::default()
        };
        let b = FaultStats {
            neurons_dead: 1,
            spikes_forced: 7,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.neurons_dead, 3);
        assert_eq!(a.packets_dropped, 5);
        assert_eq!(a.spikes_forced, 7);
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn saturating_sub_inverts_merge_and_clamps() {
        let base = FaultStats {
            neurons_dead: 4,
            synapses_stuck_one: 2,
            ..FaultStats::default()
        };
        let mut merged = base;
        let delta = FaultStats {
            neurons_dead: 1,
            packets_dropped: 3,
            ..FaultStats::default()
        };
        merged.merge(&delta);
        assert_eq!(merged.saturating_sub(&delta), base);
        // Over-subtraction clamps at zero instead of wrapping.
        let over = FaultStats {
            neurons_dead: 100,
            ..FaultStats::default()
        };
        assert_eq!(base.saturating_sub(&over).neurons_dead, 0);
        assert_eq!(base.saturating_sub(&over).synapses_stuck_one, 2);
    }

    #[test]
    fn merge_all_is_order_independent() {
        let blocks = [
            FaultStats {
                packets_dropped: 1,
                ..FaultStats::default()
            },
            FaultStats {
                packets_corrupted: 2,
                deliveries_failed: 1,
                ..FaultStats::default()
            },
            FaultStats {
                packets_delayed: 4,
                ..FaultStats::default()
            },
        ];
        let forward = FaultStats::merge_all(&blocks);
        let reverse = FaultStats::merge_all(blocks.iter().rev());
        assert_eq!(forward, reverse);
        assert_eq!(forward.total(), 8);
        assert_eq!(
            FaultStats::merge_all(std::iter::empty()),
            FaultStats::default()
        );
    }
}
