//! The decision engine: answers "is this site/event faulty?" queries.

use crate::plan::{FaultPlan, OverflowPolicy};
use crate::rng::hash4;

/// Decision domains keep fault classes statistically independent: the same
/// coordinates hashed under different domains give unrelated bits.
#[derive(Debug, Clone, Copy)]
#[repr(u64)]
enum Domain {
    CoreDropout = 1,
    DeadNeuron = 2,
    StuckNeuron = 3,
    SynapseStuckZero = 4,
    SynapseStuckOne = 5,
    LinkDrop = 6,
    LinkCorrupt = 7,
    LinkDelay = 8,
}

/// A permanent defect of one neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeuronFault {
    /// The neuron never fires; its would-be spikes are suppressed.
    Dead,
    /// The neuron fires every tick regardless of membrane state.
    StuckFiring,
}

/// A permanent defect of one crossbar cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckAt {
    /// The cell reads 0: the connection is severed.
    Zero,
    /// The cell reads 1: the connection is shorted closed.
    One,
}

/// A transient defect of one in-flight delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The delivery vanishes.
    Drop,
    /// The destination is corrupted; `salt` deterministically selects the
    /// bogus target (see [`crate::pick_cell`]).
    Corrupt {
        /// Hash bits identifying the corrupted destination.
        salt: u64,
    },
    /// The delivery arrives the given number of ticks/cycles late.
    Delay(u8),
}

/// Converts a rate in `[0, 1]` to a 64-bit comparison threshold.
///
/// A hash `h` is "hit" iff `h < threshold`; rate 0 can never hit (threshold
/// 0), rate ≥ 1 always hits (threshold `u64::MAX`, with the single value
/// `u64::MAX` itself also accepted via the saturating flag below).
#[derive(Debug, Clone, Copy)]
struct Threshold {
    bound: u64,
    always: bool,
}

impl Threshold {
    fn from_rate(rate: f64) -> Threshold {
        if rate.is_nan() || rate <= 0.0 {
            // NaN and non-positive rates never fire.
            Threshold {
                bound: 0,
                always: false,
            }
        } else if rate >= 1.0 {
            Threshold {
                bound: u64::MAX,
                always: true,
            }
        } else {
            // rate in (0, 1): the product is < 2^64, cast is exact enough
            // (53-bit mantissa ⇒ error ≤ 2^11, i.e. < 2^-53 in probability).
            Threshold {
                bound: (rate * 18_446_744_073_709_551_616.0) as u64,
                always: false,
            }
        }
    }

    #[inline]
    fn hit(&self, hash: u64) -> bool {
        self.always || hash < self.bound
    }

    #[inline]
    fn live(&self) -> bool {
        self.always || self.bound > 0
    }
}

/// Compiled form of a [`FaultPlan`]: rates pre-converted to integer
/// thresholds, ready for per-site and per-event queries.
///
/// All queries are `&self`, pure, and O(1); the injector can be shared
/// freely across threads.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    core_dropout: Threshold,
    dead_neuron: Threshold,
    stuck_neuron: Threshold,
    synapse_stuck_zero: Threshold,
    synapse_stuck_one: Threshold,
    link_drop: Threshold,
    link_corrupt: Threshold,
    link_delay: Threshold,
    link_delay_ticks: u8,
    overflow_policy: OverflowPolicy,
    benign: bool,
}

impl FaultInjector {
    /// Compiles a plan into an injector.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let inj = FaultInjector {
            seed: plan.seed,
            core_dropout: Threshold::from_rate(plan.core_dropout),
            dead_neuron: Threshold::from_rate(plan.dead_neuron),
            stuck_neuron: Threshold::from_rate(plan.stuck_neuron),
            synapse_stuck_zero: Threshold::from_rate(plan.synapse_stuck_zero),
            synapse_stuck_one: Threshold::from_rate(plan.synapse_stuck_one),
            link_drop: Threshold::from_rate(plan.link_drop),
            link_corrupt: Threshold::from_rate(plan.link_corrupt),
            link_delay: Threshold::from_rate(plan.link_delay),
            link_delay_ticks: plan.link_delay_ticks,
            overflow_policy: plan.overflow_policy,
            benign: true,
        };
        let benign = !(inj.core_dropout.live()
            || inj.dead_neuron.live()
            || inj.stuck_neuron.live()
            || inj.synapse_stuck_zero.live()
            || inj.synapse_stuck_one.live()
            || inj.link_drop.live()
            || inj.link_corrupt.live()
            || inj.link_delay.live());
        FaultInjector { benign, ..inj }
    }

    /// The seed all decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan cannot inject anything: hot paths may skip all
    /// fault queries.
    #[inline]
    pub fn is_benign(&self) -> bool {
        self.benign
    }

    /// True when any link fault (drop/corrupt/delay) can occur.
    #[inline]
    pub fn has_link_faults(&self) -> bool {
        self.link_drop.live() || self.link_corrupt.live() || self.link_delay.live()
    }

    /// True when any per-neuron fault (dead/stuck-firing) can occur.
    #[inline]
    pub fn has_neuron_faults(&self) -> bool {
        self.dead_neuron.live() || self.stuck_neuron.live()
    }

    /// True when any crossbar-cell fault can occur.
    #[inline]
    pub fn has_synapse_faults(&self) -> bool {
        self.synapse_stuck_zero.live() || self.synapse_stuck_one.live()
    }

    /// The configured router buffer-overflow policy.
    pub fn overflow_policy(&self) -> OverflowPolicy {
        self.overflow_policy
    }

    #[inline]
    fn roll(&self, domain: Domain, a: u64, b: u64, c: u64) -> u64 {
        hash4(self.seed, domain as u64, a, b, c)
    }

    /// Is the core at `(x, y)` dropped entirely?
    pub fn core_dropped(&self, x: usize, y: usize) -> bool {
        self.core_dropout.live()
            && self
                .core_dropout
                .hit(self.roll(Domain::CoreDropout, x as u64, y as u64, 0))
    }

    /// The permanent fault (if any) of neuron `neuron` on core `(x, y)`.
    /// Dead wins over stuck-firing when both thresholds hit.
    pub fn neuron_fault(&self, x: usize, y: usize, neuron: usize) -> Option<NeuronFault> {
        if self.dead_neuron.live()
            && self.dead_neuron.hit(self.roll(
                Domain::DeadNeuron,
                x as u64,
                y as u64,
                neuron as u64,
            ))
        {
            return Some(NeuronFault::Dead);
        }
        if self.stuck_neuron.live()
            && self.stuck_neuron.hit(self.roll(
                Domain::StuckNeuron,
                x as u64,
                y as u64,
                neuron as u64,
            ))
        {
            return Some(NeuronFault::StuckFiring);
        }
        None
    }

    /// The permanent fault (if any) of the crossbar cell `(axon, neuron)`
    /// on core `(x, y)`. Stuck-at-0 wins over stuck-at-1 when both hit.
    pub fn synapse_fault(&self, x: usize, y: usize, axon: usize, neuron: usize) -> Option<StuckAt> {
        // Pack the core into one word so the cell keeps two free slots.
        let core = ((x as u64) << 32) | y as u64;
        if self.synapse_stuck_zero.live()
            && self.synapse_stuck_zero.hit(self.roll(
                Domain::SynapseStuckZero,
                core,
                axon as u64,
                neuron as u64,
            ))
        {
            return Some(StuckAt::Zero);
        }
        if self.synapse_stuck_one.live()
            && self.synapse_stuck_one.hit(self.roll(
                Domain::SynapseStuckOne,
                core,
                axon as u64,
                neuron as u64,
            ))
        {
            return Some(StuckAt::One);
        }
        None
    }

    /// The transient fault (if any) striking one delivery event.
    ///
    /// `time` is the tick (chip layer) or cycle (NoC layer); `src` packs
    /// the sender identity; `event` disambiguates multiple deliveries from
    /// the same sender at the same time (e.g. fan-out index or flit hop).
    /// Drop wins over corrupt wins over delay.
    pub fn link_fault(&self, time: u64, src: u64, event: u64) -> Option<LinkFault> {
        if self.link_drop.live()
            && self
                .link_drop
                .hit(self.roll(Domain::LinkDrop, time, src, event))
        {
            return Some(LinkFault::Drop);
        }
        if self.link_corrupt.live() {
            let h = self.roll(Domain::LinkCorrupt, time, src, event);
            if self.link_corrupt.hit(h) {
                // Reuse the high bits of the decision hash as the salt so
                // corruption target needs no second hash.
                return Some(LinkFault::Corrupt {
                    salt: h.rotate_left(32),
                });
            }
        }
        if self.link_delay.live()
            && self
                .link_delay
                .hit(self.roll(Domain::LinkDelay, time, src, event))
        {
            return Some(LinkFault::Delay(self.link_delay_ticks));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plan_answers_no_everywhere() {
        let inj = FaultInjector::new(&FaultPlan::new(1));
        assert!(inj.is_benign());
        assert!(!inj.has_link_faults());
        for i in 0..100 {
            assert!(!inj.core_dropped(i, i + 1));
            assert_eq!(inj.neuron_fault(0, 0, i), None);
            assert_eq!(inj.synapse_fault(0, 0, i, i), None);
            assert_eq!(inj.link_fault(i as u64, 0, 0), None);
        }
    }

    #[test]
    fn rate_one_hits_everywhere() {
        let inj = FaultInjector::new(
            &FaultPlan::new(2)
                .with_core_dropout(1.0)
                .with_dead_neuron(1.0)
                .with_synapse_stuck_zero(1.0)
                .with_link_drop(1.0),
        );
        for i in 0..100 {
            assert!(inj.core_dropped(i, i));
            assert_eq!(inj.neuron_fault(0, 0, i), Some(NeuronFault::Dead));
            assert_eq!(inj.synapse_fault(0, 0, i, i), Some(StuckAt::Zero));
            assert_eq!(inj.link_fault(i as u64, 1, 2), Some(LinkFault::Drop));
        }
    }

    #[test]
    fn decisions_are_repeatable_and_seeded() {
        let plan = FaultPlan::uniform(0xABCD, 0.3).with_stuck_neuron(0.2);
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        let c = FaultInjector::new(&FaultPlan::uniform(0xABCE, 0.3).with_stuck_neuron(0.2));
        let mut diverged = false;
        for n in 0..500 {
            assert_eq!(a.neuron_fault(3, 1, n), b.neuron_fault(3, 1, n));
            assert_eq!(a.link_fault(n as u64, 9, 0), b.link_fault(n as u64, 9, 0));
            diverged |= a.neuron_fault(3, 1, n) != c.neuron_fault(3, 1, n);
        }
        assert!(diverged, "different seeds must give different patterns");
    }

    #[test]
    fn empirical_rates_are_close() {
        let inj = FaultInjector::new(&FaultPlan::new(77).with_dead_neuron(0.25));
        let hits = (0..20_000)
            .filter(|&n| inj.neuron_fault(0, 0, n).is_some())
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn delay_carries_configured_magnitude() {
        let inj = FaultInjector::new(&FaultPlan::new(5).with_link_delay(1.0, 4));
        assert_eq!(inj.link_fault(0, 0, 0), Some(LinkFault::Delay(4)));
    }

    #[test]
    fn corrupt_salt_is_deterministic() {
        let inj = FaultInjector::new(&FaultPlan::new(5).with_link_corrupt(1.0));
        assert_eq!(inj.link_fault(7, 8, 9), inj.link_fault(7, 8, 9));
        assert_ne!(inj.link_fault(7, 8, 9), inj.link_fault(7, 8, 10));
    }

    #[test]
    fn nan_rate_is_inert() {
        let inj = FaultInjector::new(&FaultPlan::new(5).with_link_drop(f64::NAN));
        assert!(inj.is_benign());
        assert_eq!(inj.link_fault(0, 0, 0), None);
    }
}
