//! Fault-plan description: which defect classes, at what rates.

use serde::{Deserialize, Serialize};

/// What a router does when a delayed flit would overflow its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Discard the newly arriving flit (the default; matches a full FIFO
    /// refusing writes).
    #[default]
    DropNewest,
    /// Discard the oldest queued flit to make room for the new one.
    DropOldest,
}

/// A seeded, declarative description of the defects to inject.
///
/// All rates are probabilities in `[0, 1]`; values outside that range are
/// clamped at injector-build time. A plan is inert data — build a
/// [`crate::FaultInjector`] from it to make decisions.
///
/// Structural rates (`core_dropout`, `dead_neuron`, `stuck_neuron`,
/// `synapse_stuck_zero`, `synapse_stuck_one`) are per-*site*: each core /
/// neuron / crossbar cell is faulty or healthy for the whole run.
/// Transport rates (`link_drop`, `link_corrupt`, `link_delay`) are
/// per-*event*: each spike delivery or flit hop rolls independently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed from which every fault decision is derived.
    pub seed: u64,
    /// Fraction of cores that are entirely dead (never evaluate, never
    /// emit or accept spikes).
    pub core_dropout: f64,
    /// Fraction of neurons that never fire.
    pub dead_neuron: f64,
    /// Fraction of neurons that fire every tick regardless of input.
    pub stuck_neuron: f64,
    /// Fraction of crossbar cells stuck at 0 (connection severed).
    pub synapse_stuck_zero: f64,
    /// Fraction of crossbar cells stuck at 1 (connection shorted).
    pub synapse_stuck_one: f64,
    /// Probability a spike/flit is silently dropped in transit.
    pub link_drop: f64,
    /// Probability a spike/flit has its destination corrupted to a
    /// deterministic pseudo-random on-chip core.
    pub link_corrupt: f64,
    /// Probability a spike/flit is delayed by [`FaultPlan::link_delay_ticks`].
    pub link_delay: f64,
    /// How many ticks (chip) or cycles (NoC) a delayed delivery loses.
    pub link_delay_ticks: u8,
    /// What routers do when fault-delayed flits overflow their buffers.
    pub overflow_policy: OverflowPolicy,
}

impl FaultPlan {
    /// A benign plan (all rates zero) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            core_dropout: 0.0,
            dead_neuron: 0.0,
            stuck_neuron: 0.0,
            synapse_stuck_zero: 0.0,
            synapse_stuck_one: 0.0,
            link_drop: 0.0,
            link_corrupt: 0.0,
            link_delay: 0.0,
            link_delay_ticks: 1,
            overflow_policy: OverflowPolicy::default(),
        }
    }

    /// A plan applying one uniform `rate` to the classic yield-defect
    /// knobs: dead neurons, stuck-at-0 synapses, and link drops.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_dead_neuron(rate)
            .with_synapse_stuck_zero(rate)
            .with_link_drop(rate)
    }

    /// Sets the whole-core dropout rate.
    pub fn with_core_dropout(mut self, rate: f64) -> FaultPlan {
        self.core_dropout = rate;
        self
    }

    /// Sets the dead-neuron rate.
    pub fn with_dead_neuron(mut self, rate: f64) -> FaultPlan {
        self.dead_neuron = rate;
        self
    }

    /// Sets the stuck-firing-neuron rate.
    pub fn with_stuck_neuron(mut self, rate: f64) -> FaultPlan {
        self.stuck_neuron = rate;
        self
    }

    /// Sets the stuck-at-0 synapse rate.
    pub fn with_synapse_stuck_zero(mut self, rate: f64) -> FaultPlan {
        self.synapse_stuck_zero = rate;
        self
    }

    /// Sets the stuck-at-1 synapse rate.
    pub fn with_synapse_stuck_one(mut self, rate: f64) -> FaultPlan {
        self.synapse_stuck_one = rate;
        self
    }

    /// Sets the in-transit drop rate.
    pub fn with_link_drop(mut self, rate: f64) -> FaultPlan {
        self.link_drop = rate;
        self
    }

    /// Sets the destination-corruption rate.
    pub fn with_link_corrupt(mut self, rate: f64) -> FaultPlan {
        self.link_corrupt = rate;
        self
    }

    /// Sets the delay rate and magnitude.
    pub fn with_link_delay(mut self, rate: f64, ticks: u8) -> FaultPlan {
        self.link_delay = rate;
        self.link_delay_ticks = ticks;
        self
    }

    /// Sets the router buffer-overflow policy.
    pub fn with_overflow_policy(mut self, policy: OverflowPolicy) -> FaultPlan {
        self.overflow_policy = policy;
        self
    }

    /// True when every rate is zero: the plan can inject nothing.
    pub fn is_benign(&self) -> bool {
        self.core_dropout <= 0.0
            && self.dead_neuron <= 0.0
            && self.stuck_neuron <= 0.0
            && self.synapse_stuck_zero <= 0.0
            && self.synapse_stuck_one <= 0.0
            && self.link_drop <= 0.0
            && self.link_corrupt <= 0.0
            && self.link_delay <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_plan_is_benign() {
        assert!(FaultPlan::new(123).is_benign());
    }

    #[test]
    fn any_rate_breaks_benignity() {
        assert!(!FaultPlan::new(0).with_link_drop(0.01).is_benign());
        assert!(!FaultPlan::new(0).with_core_dropout(1.0).is_benign());
        assert!(!FaultPlan::uniform(0, 0.1).is_benign());
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::new(9)
            .with_dead_neuron(0.1)
            .with_link_delay(0.2, 3)
            .with_overflow_policy(OverflowPolicy::DropOldest);
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.dead_neuron, 0.1);
        assert_eq!(plan.link_delay, 0.2);
        assert_eq!(plan.link_delay_ticks, 3);
        assert_eq!(plan.overflow_policy, OverflowPolicy::DropOldest);
    }
}
