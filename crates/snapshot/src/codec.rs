//! Typed wire codecs for every state image the snapshot carries: core
//! images, fault plans, telemetry summaries, and standalone NoC state.
//!
//! Encoding is field-ordered and explicit — no derive magic — so the wire
//! layout is stable under refactors and every decode path is total:
//! arbitrary bytes produce a typed [`WireError`], never a panic and never
//! an unbounded allocation (length prefixes are validated against the
//! remaining payload before any vector is built).

use brainsim_core::{
    AxonTarget, CoreFaultsState, CoreOffset, CoreState, CoreStats, Destination, EvalStrategy,
    SCHEDULER_SLOTS,
};
use brainsim_energy::EventCensus;
use brainsim_faults::{FaultPlan, FaultStats, OverflowPolicy};
use brainsim_neuron::{AxonType, NegativeThresholdMode, NeuronConfig, ResetMode, Weight};
use brainsim_noc::{
    DelayedFlit, Flit, NocConfig, NocState, NocStats, Packet, Port, RouterState, RoutingOrder,
    PORTS,
};
use brainsim_telemetry::{Histogram, RunSummary, TelemetryConfig, HISTOGRAM_BUCKETS};

use crate::wire::{Reader, WireError, Writer};

fn vec_u64(r: &mut Reader, count: usize) -> Result<Vec<u64>, WireError> {
    if count.checked_mul(8).is_none_or(|need| need > r.remaining()) {
        return Err(WireError::Truncated);
    }
    (0..count).map(|_| r.u64()).collect()
}

fn vec_i32(r: &mut Reader, count: usize) -> Result<Vec<i32>, WireError> {
    if count.checked_mul(4).is_none_or(|need| need > r.remaining()) {
        return Err(WireError::Truncated);
    }
    (0..count).map(|_| r.i32()).collect()
}

fn vec_bool(r: &mut Reader, count: usize) -> Result<Vec<bool>, WireError> {
    if count > r.remaining() {
        return Err(WireError::Truncated);
    }
    (0..count).map(|_| r.bool()).collect()
}

/// Encodes an optional `u64` as a presence byte plus the value.
fn write_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        Some(x) => {
            w.bool(true);
            w.u64(x);
        }
        None => w.bool(false),
    }
}

fn read_opt_u64(r: &mut Reader) -> Result<Option<u64>, WireError> {
    Ok(if r.bool()? { Some(r.u64()?) } else { None })
}

/// Encodes a [`FaultStats`] block (12 counters, field order fixed).
pub fn write_fault_stats(w: &mut Writer, s: &FaultStats) {
    w.u64(s.cores_dropped);
    w.u64(s.neurons_dead);
    w.u64(s.neurons_stuck_firing);
    w.u64(s.synapses_stuck_zero);
    w.u64(s.synapses_stuck_one);
    w.u64(s.spikes_suppressed);
    w.u64(s.spikes_forced);
    w.u64(s.packets_dropped);
    w.u64(s.packets_corrupted);
    w.u64(s.packets_delayed);
    w.u64(s.flits_dropped_overflow);
    w.u64(s.deliveries_failed);
}

/// Decodes a [`FaultStats`] block.
pub fn read_fault_stats(r: &mut Reader) -> Result<FaultStats, WireError> {
    Ok(FaultStats {
        cores_dropped: r.u64()?,
        neurons_dead: r.u64()?,
        neurons_stuck_firing: r.u64()?,
        synapses_stuck_zero: r.u64()?,
        synapses_stuck_one: r.u64()?,
        spikes_suppressed: r.u64()?,
        spikes_forced: r.u64()?,
        packets_dropped: r.u64()?,
        packets_corrupted: r.u64()?,
        packets_delayed: r.u64()?,
        flits_dropped_overflow: r.u64()?,
        deliveries_failed: r.u64()?,
    })
}

/// Encodes a [`CoreStats`] block.
pub fn write_core_stats(w: &mut Writer, s: &CoreStats) {
    w.u64(s.ticks);
    w.u64(s.synaptic_events);
    w.u64(s.neuron_updates);
    w.u64(s.spikes);
    w.u64(s.axon_events);
    write_fault_stats(w, &s.faults);
}

/// Decodes a [`CoreStats`] block.
pub fn read_core_stats(r: &mut Reader) -> Result<CoreStats, WireError> {
    Ok(CoreStats {
        ticks: r.u64()?,
        synaptic_events: r.u64()?,
        neuron_updates: r.u64()?,
        spikes: r.u64()?,
        axon_events: r.u64()?,
        faults: read_fault_stats(r)?,
    })
}

/// Encodes an [`EventCensus`] (11 counters).
pub fn write_census(w: &mut Writer, c: &EventCensus) {
    w.u64(c.ticks);
    w.u64(c.cores);
    w.u64(c.synaptic_events);
    w.u64(c.neuron_updates);
    w.u64(c.spikes);
    w.u64(c.axon_events);
    w.u64(c.hops);
    w.u64(c.link_crossings);
    w.u64(c.packets_dropped);
    w.u64(c.packets_rejected);
    w.u64(c.flit_stalls);
}

/// Decodes an [`EventCensus`].
pub fn read_census(r: &mut Reader) -> Result<EventCensus, WireError> {
    Ok(EventCensus {
        ticks: r.u64()?,
        cores: r.u64()?,
        synaptic_events: r.u64()?,
        neuron_updates: r.u64()?,
        spikes: r.u64()?,
        axon_events: r.u64()?,
        hops: r.u64()?,
        link_crossings: r.u64()?,
        packets_dropped: r.u64()?,
        packets_rejected: r.u64()?,
        flit_stalls: r.u64()?,
    })
}

/// Encodes a log₂ [`Histogram`] (fixed bucket count).
pub fn write_histogram(w: &mut Writer, h: &Histogram) {
    for &b in &h.buckets {
        w.u64(b);
    }
}

/// Decodes a log₂ [`Histogram`].
pub fn read_histogram(r: &mut Reader) -> Result<Histogram, WireError> {
    let mut h = Histogram::default();
    for b in &mut h.buckets[..HISTOGRAM_BUCKETS] {
        *b = r.u64()?;
    }
    Ok(h)
}

/// Encodes a [`NeuronConfig`] parameter block through its getters.
pub fn write_neuron_config(w: &mut Writer, c: &NeuronConfig) {
    for ty in AxonType::ALL {
        w.i32(c.weight(ty).value());
        w.bool(c.is_stochastic_synapse(ty));
    }
    w.i32(c.leak());
    w.bool(c.leak_reversal());
    w.bool(c.stochastic_leak());
    w.u32(c.threshold());
    w.u32(c.threshold_mask_bits());
    w.u32(c.negative_threshold());
    w.u8(match c.negative_mode() {
        NegativeThresholdMode::Saturate => 0,
        NegativeThresholdMode::Reset => 1,
    });
    w.u8(match c.reset_mode() {
        ResetMode::Absolute => 0,
        ResetMode::Linear => 1,
        ResetMode::None => 2,
    });
    w.i32(c.reset_potential());
}

/// Decodes a [`NeuronConfig`], re-running the builder's own validation so
/// a corrupted parameter block fails typed instead of constructing an
/// impossible neuron.
pub fn read_neuron_config(r: &mut Reader) -> Result<NeuronConfig, WireError> {
    let mut b = NeuronConfig::builder();
    for ty in AxonType::ALL {
        let value = r.i32()?;
        let weight = Weight::new(value).map_err(|_| WireError::Malformed("weight out of range"))?;
        b.weight(ty, weight);
        b.stochastic_synapse(ty, r.bool()?);
    }
    b.leak(r.i32()?);
    b.leak_reversal(r.bool()?);
    b.stochastic_leak(r.bool()?);
    b.threshold(r.u32()?);
    b.threshold_mask_bits(r.u32()?);
    b.negative_threshold(r.u32()?);
    b.negative_mode(match r.u8()? {
        0 => NegativeThresholdMode::Saturate,
        1 => NegativeThresholdMode::Reset,
        _ => return Err(WireError::Malformed("negative-mode tag")),
    });
    b.reset_mode(match r.u8()? {
        0 => ResetMode::Absolute,
        1 => ResetMode::Linear,
        2 => ResetMode::None,
        _ => return Err(WireError::Malformed("reset-mode tag")),
    });
    b.reset_potential(r.i32()?);
    b.build()
        .map_err(|_| WireError::Malformed("neuron parameters fail validation"))
}

/// Encodes a spike [`Destination`].
pub fn write_destination(w: &mut Writer, d: &Destination) {
    match d {
        Destination::Disabled => w.u8(0),
        Destination::Axon(t) => {
            w.u8(1);
            w.i32(t.offset.dx);
            w.i32(t.offset.dy);
            w.u16(t.axon);
            w.u8(t.delay);
        }
        Destination::Output(port) => {
            w.u8(2);
            w.u32(*port);
        }
    }
}

/// Decodes a spike [`Destination`].
pub fn read_destination(r: &mut Reader) -> Result<Destination, WireError> {
    Ok(match r.u8()? {
        0 => Destination::Disabled,
        1 => Destination::Axon(AxonTarget {
            offset: CoreOffset {
                dx: r.i32()?,
                dy: r.i32()?,
            },
            axon: r.u16()?,
            delay: r.u8()?,
        }),
        2 => Destination::Output(r.u32()?),
        _ => return Err(WireError::Malformed("destination tag")),
    })
}

/// Encodes a complete [`CoreState`] image.
pub fn write_core_state(w: &mut Writer, s: &CoreState) {
    w.usize(s.axons);
    w.usize(s.neurons);
    for &ty in &s.axon_types {
        w.u8(ty.index() as u8);
    }
    for c in &s.configs {
        write_neuron_config(w, c);
    }
    for d in &s.destinations {
        write_destination(w, d);
    }
    for &word in &s.crossbar_words {
        w.u64(word);
    }
    for &v in &s.potentials {
        w.i32(v);
    }
    for &word in &s.scheduler_slots {
        w.u64(word);
    }
    w.u32(s.rng_state);
    w.u8(match s.strategy {
        EvalStrategy::Dense => 0,
        EvalStrategy::Sparse => 1,
        EvalStrategy::Swar => 2,
    });
    w.u64(s.now);
    write_core_stats(w, &s.stats);
    w.bool(s.settled);
    match &s.faults {
        None => w.bool(false),
        Some(f) => {
            w.bool(true);
            w.bool(f.dropped);
            for &dead in &f.dead {
                w.bool(dead);
            }
            w.usize(f.stuck.len());
            for &idx in &f.stuck {
                w.u16(idx);
            }
            write_fault_stats(w, &f.structural);
        }
    }
}

/// Decodes a complete [`CoreState`] image. Shape consistency beyond the
/// wire level (tail bits, sorted fault lists, builder validation) is the
/// job of [`brainsim_core::NeurosynapticCore::import_state`].
pub fn read_core_state(r: &mut Reader) -> Result<CoreState, WireError> {
    let axons = r.usize()?;
    let neurons = r.usize()?;
    if axons.checked_mul(neurons).is_none() {
        return Err(WireError::Malformed("core dimensions overflow"));
    }
    if axons > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut axon_types = Vec::with_capacity(axons);
    for _ in 0..axons {
        let tag = r.u8()?;
        axon_types
            .push(AxonType::from_index(tag as usize).ok_or(WireError::Malformed("axon-type tag"))?);
    }
    // A neuron config occupies at least 20 bytes on the wire; bounding the
    // count here keeps a corrupted `neurons` from over-allocating.
    if neurons
        .checked_mul(20)
        .is_none_or(|need| need > r.remaining())
    {
        return Err(WireError::Truncated);
    }
    let mut configs = Vec::with_capacity(neurons);
    for _ in 0..neurons {
        configs.push(read_neuron_config(r)?);
    }
    let mut destinations = Vec::with_capacity(neurons);
    for _ in 0..neurons {
        destinations.push(read_destination(r)?);
    }
    let xb_words = axons
        .checked_mul(neurons.div_ceil(64))
        .ok_or(WireError::Malformed("crossbar word count overflows"))?;
    let crossbar_words = vec_u64(r, xb_words)?;
    let potentials = vec_i32(r, neurons)?;
    let sched_words = SCHEDULER_SLOTS
        .checked_mul(axons.div_ceil(64))
        .ok_or(WireError::Malformed("scheduler word count overflows"))?;
    let scheduler_slots = vec_u64(r, sched_words)?;
    let rng_state = r.u32()?;
    let strategy = match r.u8()? {
        0 => EvalStrategy::Dense,
        1 => EvalStrategy::Sparse,
        2 => EvalStrategy::Swar,
        _ => return Err(WireError::Malformed("strategy tag")),
    };
    let now = r.u64()?;
    let stats = read_core_stats(r)?;
    let settled = r.bool()?;
    let faults = if r.bool()? {
        let dropped = r.bool()?;
        let dead = vec_bool(r, neurons)?;
        let stuck_len = r.len(2)?;
        let mut stuck = Vec::with_capacity(stuck_len);
        for _ in 0..stuck_len {
            stuck.push(r.u16()?);
        }
        let structural = read_fault_stats(r)?;
        Some(CoreFaultsState {
            dropped,
            dead,
            stuck,
            structural,
        })
    } else {
        None
    };
    Ok(CoreState {
        axons,
        neurons,
        axon_types,
        configs,
        destinations,
        crossbar_words,
        potentials,
        scheduler_slots,
        rng_state,
        strategy,
        now,
        stats,
        settled,
        faults,
    })
}

/// Encodes a [`FaultPlan`] (f64 rates travel as exact bit patterns).
pub fn write_fault_plan(w: &mut Writer, p: &FaultPlan) {
    w.u64(p.seed);
    w.f64(p.core_dropout);
    w.f64(p.dead_neuron);
    w.f64(p.stuck_neuron);
    w.f64(p.synapse_stuck_zero);
    w.f64(p.synapse_stuck_one);
    w.f64(p.link_drop);
    w.f64(p.link_corrupt);
    w.f64(p.link_delay);
    w.u8(p.link_delay_ticks);
    w.u8(match p.overflow_policy {
        OverflowPolicy::DropNewest => 0,
        OverflowPolicy::DropOldest => 1,
    });
}

/// Decodes a [`FaultPlan`].
pub fn read_fault_plan(r: &mut Reader) -> Result<FaultPlan, WireError> {
    Ok(FaultPlan {
        seed: r.u64()?,
        core_dropout: r.f64()?,
        dead_neuron: r.f64()?,
        stuck_neuron: r.f64()?,
        synapse_stuck_zero: r.f64()?,
        synapse_stuck_one: r.f64()?,
        link_drop: r.f64()?,
        link_corrupt: r.f64()?,
        link_delay: r.f64()?,
        link_delay_ticks: r.u8()?,
        overflow_policy: match r.u8()? {
            0 => OverflowPolicy::DropNewest,
            1 => OverflowPolicy::DropOldest,
            _ => return Err(WireError::Malformed("overflow-policy tag")),
        },
    })
}

/// Encodes a [`TelemetryConfig`].
pub fn write_telemetry_config(w: &mut Writer, c: &TelemetryConfig) {
    write_opt_u64(w, c.capacity.map(|v| v as u64));
    w.bool(c.core_detail);
}

/// Decodes a [`TelemetryConfig`].
pub fn read_telemetry_config(r: &mut Reader) -> Result<TelemetryConfig, WireError> {
    let capacity = match read_opt_u64(r)? {
        Some(v) => {
            Some(usize::try_from(v).map_err(|_| WireError::Malformed("capacity exceeds usize"))?)
        }
        None => None,
    };
    Ok(TelemetryConfig {
        capacity,
        core_detail: r.bool()?,
    })
}

/// Encodes a cumulative [`RunSummary`].
pub fn write_run_summary(w: &mut Writer, s: &RunSummary) {
    w.u64(s.ticks);
    w.u64(s.spikes);
    w.u64(s.outputs);
    w.u64(s.deliveries);
    w.u64(s.hops);
    w.u64(s.link_crossings);
    w.u64(s.evaluations);
    w.u64(s.skips);
    write_histogram(w, &s.hop_histogram);
    write_fault_stats(w, &s.faults);
    write_census(w, &s.energy);
    w.usize(s.core_spikes.len());
    for &v in &s.core_spikes {
        w.u64(v);
    }
    w.usize(s.core_synaptic_events.len());
    for &v in &s.core_synaptic_events {
        w.u64(v);
    }
    write_opt_u64(w, s.resumed_from_tick);
}

/// Decodes a cumulative [`RunSummary`].
pub fn read_run_summary(r: &mut Reader) -> Result<RunSummary, WireError> {
    let ticks = r.u64()?;
    let spikes = r.u64()?;
    let outputs = r.u64()?;
    let deliveries = r.u64()?;
    let hops = r.u64()?;
    let link_crossings = r.u64()?;
    let evaluations = r.u64()?;
    let skips = r.u64()?;
    let hop_histogram = read_histogram(r)?;
    let faults = read_fault_stats(r)?;
    let energy = read_census(r)?;
    let spikes_len = r.len(8)?;
    let core_spikes = vec_u64(r, spikes_len)?;
    let events_len = r.len(8)?;
    let core_synaptic_events = vec_u64(r, events_len)?;
    let resumed_from_tick = read_opt_u64(r)?;
    Ok(RunSummary {
        ticks,
        spikes,
        outputs,
        deliveries,
        hops,
        link_crossings,
        evaluations,
        skips,
        hop_histogram,
        faults,
        energy,
        core_spikes,
        core_synaptic_events,
        resumed_from_tick,
    })
}

fn write_flit(w: &mut Writer, f: &Flit) {
    w.i16(f.packet.dx);
    w.i16(f.packet.dy);
    w.u16(f.packet.axon);
    w.u8(f.packet.slot);
    w.u64(f.injected_at);
    w.u32(f.hops);
}

fn read_flit(r: &mut Reader) -> Result<Flit, WireError> {
    let dx = r.i16()?;
    let dy = r.i16()?;
    let axon = r.u16()?;
    let slot = r.u8()?;
    let packet = Packet::new(dx, dy, axon, slot)
        .map_err(|_| WireError::Malformed("flit packet field out of range"))?;
    Ok(Flit {
        packet,
        injected_at: r.u64()?,
        hops: r.u32()?,
    })
}

/// Encodes a standalone mesh-NoC state image.
pub fn write_noc_state(w: &mut Writer, s: &NocState) {
    w.usize(s.config.width);
    w.usize(s.config.height);
    w.usize(s.config.fifo_capacity);
    w.u8(match s.config.routing {
        RoutingOrder::XThenY => 0,
        RoutingOrder::YThenX => 1,
    });
    w.usize(s.routers.len());
    for router in &s.routers {
        for queue in &router.queues {
            w.usize(queue.len());
            for flit in queue {
                write_flit(w, flit);
            }
        }
        for &rr in &router.rr {
            w.usize(rr);
        }
    }
    w.u64(s.now);
    let st = &s.stats;
    w.u64(st.injected);
    w.u64(st.delivered);
    w.u64(st.rejected);
    w.u64(st.stalls);
    w.u64(st.dropped);
    w.u64(st.cycles);
    w.u64(st.total_latency);
    w.u64(st.max_latency);
    w.u64(st.total_hops);
    write_histogram(w, &st.occupancy);
    w.u64(st.peak_buffered);
    write_fault_stats(w, &st.faults);
    w.usize(s.delayed.len());
    for d in &s.delayed {
        w.u64(d.release_at);
        w.usize(d.router);
        w.u8(d.port.index() as u8);
        write_flit(w, &d.flit);
    }
}

/// Decodes a standalone mesh-NoC state image. Capacity and index
/// validation beyond the wire level is the job of
/// [`brainsim_noc::MeshNoc::import_state`].
pub fn read_noc_state(r: &mut Reader) -> Result<NocState, WireError> {
    let config = NocConfig {
        width: r.usize()?,
        height: r.usize()?,
        fifo_capacity: r.usize()?,
        routing: match r.u8()? {
            0 => RoutingOrder::XThenY,
            1 => RoutingOrder::YThenX,
            _ => return Err(WireError::Malformed("routing-order tag")),
        },
    };
    // A router occupies at least PORTS queue lengths + PORTS pointers.
    let router_count = r.len(PORTS * 16)?;
    let mut routers = Vec::with_capacity(router_count);
    for _ in 0..router_count {
        let mut queues: [Vec<Flit>; PORTS] = Default::default();
        for queue in &mut queues {
            let len = r.len(19)?; // flit wire size
            for _ in 0..len {
                queue.push(read_flit(r)?);
            }
        }
        let mut rr = [0usize; PORTS];
        for p in &mut rr {
            *p = r.usize()?;
        }
        routers.push(RouterState { queues, rr });
    }
    let now = r.u64()?;
    let stats = NocStats {
        injected: r.u64()?,
        delivered: r.u64()?,
        rejected: r.u64()?,
        stalls: r.u64()?,
        dropped: r.u64()?,
        cycles: r.u64()?,
        total_latency: r.u64()?,
        max_latency: r.u64()?,
        total_hops: r.u64()?,
        occupancy: read_histogram(r)?,
        peak_buffered: r.u64()?,
        faults: read_fault_stats(r)?,
    };
    let delayed_count = r.len(28)?; // delayed-flit wire size
    let mut delayed = Vec::with_capacity(delayed_count);
    for _ in 0..delayed_count {
        let release_at = r.u64()?;
        let router = r.usize()?;
        let port_tag = r.u8()? as usize;
        let port = *Port::ALL
            .get(port_tag)
            .ok_or(WireError::Malformed("port tag"))?;
        let flit = read_flit(r)?;
        delayed.push(DelayedFlit {
            release_at,
            router,
            port,
            flit,
        });
    }
    Ok(NocState {
        config,
        routers,
        now,
        stats,
        delayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainsim_core::{CoreBuilder, NeurosynapticCore};
    use brainsim_noc::MeshNoc;

    fn round_trip<T, W, R>(value: &T, write: W, read: R) -> T
    where
        W: Fn(&mut Writer, &T),
        R: Fn(&mut Reader) -> Result<T, WireError>,
    {
        let mut w = Writer::new();
        write(&mut w, value);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = read(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        out
    }

    #[test]
    fn neuron_config_round_trips_every_field() {
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(5))
            .weight(AxonType::A3, Weight::saturating(-7))
            .stochastic_synapse(AxonType::A1, true)
            .leak(-2)
            .leak_reversal(true)
            .stochastic_leak(true)
            .threshold(17)
            .threshold_mask_bits(3)
            .negative_threshold(9)
            .negative_mode(NegativeThresholdMode::Reset)
            .reset_mode(ResetMode::Linear)
            .reset_potential(1)
            .build()
            .expect("valid config");
        assert_eq!(
            round_trip(&config, write_neuron_config, read_neuron_config),
            config
        );
    }

    #[test]
    fn destination_variants_round_trip() {
        for d in [
            Destination::Disabled,
            Destination::Output(42),
            Destination::Axon(AxonTarget {
                offset: CoreOffset { dx: -3, dy: 2 },
                axon: 19,
                delay: 7,
            }),
        ] {
            assert_eq!(round_trip(&d, write_destination, read_destination), d);
        }
    }

    #[test]
    fn core_state_round_trips_through_the_wire() {
        let mut b = CoreBuilder::new(70, 70);
        b.seed(0xFACE);
        for n in 0..70 {
            let config = NeuronConfig::builder()
                .weight(AxonType::A0, Weight::saturating(1 + (n % 3) as i32))
                .threshold(1 + (n % 4) as u32)
                .build()
                .expect("valid");
            b.neuron(n, config, Destination::Output(n as u32))
                .expect("neuron");
            b.synapse(n % 70, n, true).expect("synapse");
        }
        let mut core = b.build();
        core.deliver(3, 0).expect("deliver");
        core.tick(0);
        core.deliver(5, 3).expect("deliver pending");
        let state = core.export_state();
        let decoded = round_trip(&state, write_core_state, read_core_state);
        assert_eq!(decoded, state);
        // And the decoded image rebuilds a working core.
        NeurosynapticCore::import_state(&decoded).expect("import");
    }

    #[test]
    fn fault_plan_rates_are_bit_exact() {
        let plan = FaultPlan::new(0xDEAD)
            .with_link_drop(0.15)
            .with_link_delay(1.0 / 3.0, 2)
            .with_overflow_policy(OverflowPolicy::DropOldest);
        let decoded = round_trip(&plan, write_fault_plan, read_fault_plan);
        assert_eq!(decoded.link_delay.to_bits(), plan.link_delay.to_bits());
        assert_eq!(decoded, plan);
    }

    #[test]
    fn run_summary_round_trips() {
        let mut s = RunSummary::new(6);
        s.ticks = 100;
        s.spikes = 250;
        s.core_spikes[3] = 99;
        s.hop_histogram.record(5);
        s.energy.hops = 123;
        s.faults.packets_dropped = 4;
        s.resumed_from_tick = Some(50);
        assert_eq!(round_trip(&s, write_run_summary, read_run_summary), s);
    }

    #[test]
    fn noc_state_round_trips_mid_flight() {
        let mut noc = MeshNoc::new(NocConfig {
            width: 3,
            height: 3,
            fifo_capacity: 4,
            routing: RoutingOrder::XThenY,
        });
        for i in 0..5u16 {
            let packet = Packet::new(2, 1, i, 0).expect("packet");
            let _ = noc.inject(0, 0, packet);
            noc.cycle();
        }
        let state = noc.export_state();
        let decoded = round_trip(&state, write_noc_state, read_noc_state);
        assert_eq!(decoded, state);
        MeshNoc::import_state(&decoded).expect("import");
    }

    #[test]
    fn bad_enum_tags_are_typed_errors() {
        let mut w = Writer::new();
        w.u8(9);
        let bytes = w.into_bytes();
        assert!(matches!(
            read_destination(&mut Reader::new(&bytes)),
            Err(WireError::Malformed("destination tag"))
        ));
    }
}
