//! Bounds-checked little-endian wire primitives for snapshot payloads.
//!
//! The [`Reader`] never panics and never allocates more than the bytes it
//! actually holds: every length prefix is validated against the remaining
//! payload *before* the corresponding vector is allocated, so a corrupted
//! length field fails with a typed error instead of an OOM or a panic.

/// Error from a [`Reader`] primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the requested bytes.
    Truncated,
    /// A value decoded but is not valid for its field (bad enum tag,
    /// out-of-range index, inconsistent length, trailing bytes).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i16`, little-endian two's complement.
    pub fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`, little-endian two's complement.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern (round-trips NaN
    /// payloads and signed zeros bit-for-bit).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes with no length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.bytes(N)?);
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.array::<1>()?[0])
    }

    /// Reads a `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads an `i16`, little-endian two's complement.
    pub fn i16(&mut self) -> Result<i16, WireError> {
        Ok(i16::from_le_bytes(self.array()?))
    }

    /// Reads an `i32`, little-endian two's complement.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.array()?))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Malformed("count exceeds usize"))
    }

    /// Reads a bool encoded as exactly 0 or 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte not 0 or 1")),
        }
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix for elements of `elem_size` bytes, rejecting
    /// any count whose encoded form cannot fit in the remaining payload —
    /// the allocation guard against corrupted length fields.
    pub fn len(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        let need = n
            .checked_mul(elem_size.max(1))
            .ok_or(WireError::Malformed("count overflows"))?;
        if need > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Succeeds only when every byte has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i16(-123);
        w.i32(i32::MIN);
        w.usize(99);
        w.bool(true);
        w.bool(false);
        w.f64(-0.0);
        w.bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i16().unwrap(), -123);
        assert_eq!(r.i32().unwrap(), i32::MIN);
        assert_eq!(r.usize().unwrap(), 99);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.bytes(3).unwrap(), b"xyz");
        r.finish().unwrap();
    }

    #[test]
    fn short_reads_are_truncated_not_panics() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        // A failed read consumes nothing.
        assert_eq!(r.u16().unwrap(), 0x0201);
    }

    #[test]
    fn length_guard_rejects_absurd_counts() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // a count that could never fit
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.len(8).is_err());
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut r = Reader::new(&[0]);
        assert_eq!(r.finish(), Err(WireError::Malformed("trailing bytes")));
        r.u8().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn bad_bool_is_malformed() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool(), Err(WireError::Malformed(_))));
    }
}
