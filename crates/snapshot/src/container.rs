//! The on-disk container: magic, version, and CRC-framed sections.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"BSNP"
//! 4       4     format version, u32 LE
//! 8       4     section count, u32 LE
//! 12      ...   sections, back to back:
//!                 tag   u32 LE   (a SectionId)
//!                 len   u64 LE   (payload bytes)
//!                 crc   u32 LE   (CRC-32/IEEE of the payload)
//!                 payload
//! ```
//!
//! Decoding is total: **no** input byte sequence can panic it. Every
//! malformation maps to a typed [`RestoreError`].

use crate::crc::crc32;
use crate::wire::{Reader, WireError};

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"BSNP";

/// The current snapshot format version.
pub const VERSION: u32 = 1;

/// The typed sections a snapshot container may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SectionId {
    /// Chip configuration (grid, core dimensions, seed, semantics).
    Config = 1,
    /// Chip-level counters and routing fault accounting.
    Chip = 2,
    /// Per-core state images, row-major.
    Cores = 3,
    /// The retained fault plan, if one was applied.
    Faults = 4,
    /// Telemetry image: config, eviction count, cumulative run summary.
    Telemetry = 5,
    /// Standalone mesh-NoC state, for cycle-accurate studies.
    Noc = 6,
    /// Opaque application payload (e.g. a harness's running checksum).
    App = 7,
}

impl SectionId {
    /// The wire tag.
    pub fn tag(self) -> u32 {
        self as u32
    }

    /// The section for a wire tag, if known.
    pub fn from_tag(tag: u32) -> Option<SectionId> {
        match tag {
            1 => Some(SectionId::Config),
            2 => Some(SectionId::Chip),
            3 => Some(SectionId::Cores),
            4 => Some(SectionId::Faults),
            5 => Some(SectionId::Telemetry),
            6 => Some(SectionId::Noc),
            7 => Some(SectionId::App),
            _ => None,
        }
    }

    /// A stable lowercase name for messages.
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Config => "config",
            SectionId::Chip => "chip",
            SectionId::Cores => "cores",
            SectionId::Faults => "faults",
            SectionId::Telemetry => "telemetry",
            SectionId::Noc => "noc",
            SectionId::App => "app",
        }
    }
}

/// Why a snapshot could not be decoded or restored. Total over arbitrary
/// input bytes — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The container was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The byte stream ended mid-header, mid-frame, or mid-payload.
    Truncated,
    /// A section's payload does not match its recorded CRC-32.
    SectionCrc {
        /// The damaged section.
        section: SectionId,
    },
    /// The same section appears twice.
    DuplicateSection {
        /// The repeated section.
        section: SectionId,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section.
        section: SectionId,
    },
    /// A section tag this build does not know.
    UnknownSection {
        /// The unrecognised wire tag.
        tag: u32,
    },
    /// Bytes remain after the last declared section — appended garbage or
    /// a corrupted section count.
    TrailingBytes,
    /// A section's payload decoded structurally but a field is invalid.
    Malformed {
        /// The section holding the bad field.
        section: SectionId,
        /// What was wrong.
        what: &'static str,
    },
    /// The snapshot decoded but describes a chip that cannot be rebuilt
    /// (inconsistent dimensions, invalid wiring, a core image that fails
    /// its own validation).
    Invalid(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::BadMagic => write!(f, "not a snapshot: bad magic"),
            RestoreError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            RestoreError::Truncated => write!(f, "snapshot truncated"),
            RestoreError::SectionCrc { section } => {
                write!(f, "section '{}' failed its CRC check", section.name())
            }
            RestoreError::DuplicateSection { section } => {
                write!(f, "section '{}' appears more than once", section.name())
            }
            RestoreError::MissingSection { section } => {
                write!(f, "required section '{}' is missing", section.name())
            }
            RestoreError::UnknownSection { tag } => write!(f, "unknown section tag {tag}"),
            RestoreError::TrailingBytes => {
                write!(f, "bytes remain after the last declared section")
            }
            RestoreError::Malformed { section, what } => {
                write!(f, "section '{}' is malformed: {what}", section.name())
            }
            RestoreError::Invalid(what) => write!(f, "snapshot is not restorable: {what}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl RestoreError {
    /// Attributes a wire-level decode failure to `section`.
    pub fn from_wire(section: SectionId, e: WireError) -> RestoreError {
        match e {
            WireError::Truncated => RestoreError::Truncated,
            WireError::Malformed(what) => RestoreError::Malformed { section, what },
        }
    }
}

/// Frames `sections` (in the given order) into a container byte stream.
pub fn encode_container(sections: &[(SectionId, Vec<u8>)]) -> Vec<u8> {
    let total: usize = sections.iter().map(|(_, p)| p.len() + 16).sum();
    let mut out = Vec::with_capacity(12 + total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (id, payload) in sections {
        out.extend_from_slice(&id.tag().to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Parses a container into its sections (file order), verifying the magic,
/// the version, and every section CRC. Never panics.
pub fn decode_container(bytes: &[u8]) -> Result<Vec<(SectionId, &[u8])>, RestoreError> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(4).map_err(|_| RestoreError::Truncated)?;
    if magic != MAGIC {
        return Err(RestoreError::BadMagic);
    }
    let version = r.u32().map_err(|_| RestoreError::Truncated)?;
    if version != VERSION {
        return Err(RestoreError::VersionMismatch {
            found: version,
            expected: VERSION,
        });
    }
    let count = r.u32().map_err(|_| RestoreError::Truncated)?;
    let mut sections: Vec<(SectionId, &[u8])> = Vec::new();
    for _ in 0..count {
        let tag = r.u32().map_err(|_| RestoreError::Truncated)?;
        let len = r.usize().map_err(|_| RestoreError::Truncated)?;
        let crc = r.u32().map_err(|_| RestoreError::Truncated)?;
        let section = SectionId::from_tag(tag).ok_or(RestoreError::UnknownSection { tag })?;
        let payload = r.bytes(len).map_err(|_| RestoreError::Truncated)?;
        if crc32(payload) != crc {
            return Err(RestoreError::SectionCrc { section });
        }
        if sections.iter().any(|(id, _)| *id == section) {
            return Err(RestoreError::DuplicateSection { section });
        }
        sections.push((section, payload));
    }
    if r.remaining() > 0 {
        return Err(RestoreError::TrailingBytes);
    }
    Ok(sections)
}

/// Verifies container integrity — magic, version, framing, every section
/// CRC — without decoding any payload semantics. This is the check
/// [`crate::CheckpointPolicy::load_newest_verifying`] applies when falling
/// back past a corrupt latest snapshot.
pub fn verify(bytes: &[u8]) -> Result<(), RestoreError> {
    decode_container(bytes).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode_container(&[
            (SectionId::Config, vec![1, 2, 3]),
            (SectionId::Chip, vec![]),
            (SectionId::Cores, vec![9; 100]),
        ])
    }

    #[test]
    fn round_trip_preserves_order_and_payloads() {
        let bytes = sample();
        let sections = decode_container(&bytes).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0], (SectionId::Config, &[1u8, 2, 3][..]));
        assert_eq!(sections[1], (SectionId::Chip, &[][..]));
        assert_eq!(sections[2].1.len(), 100);
    }

    #[test]
    fn bad_magic() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(decode_container(&bytes), Err(RestoreError::BadMagic));
    }

    #[test]
    fn version_mismatch() {
        let mut bytes = sample();
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_container(&bytes),
            Err(RestoreError::VersionMismatch {
                expected: VERSION,
                ..
            })
        ));
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = decode_container(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, RestoreError::Truncated),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn payload_bit_flip_fails_the_section_crc() {
        let mut bytes = sample();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // inside the cores payload
        assert_eq!(
            decode_container(&bytes),
            Err(RestoreError::SectionCrc {
                section: SectionId::Cores
            })
        );
    }

    #[test]
    fn unknown_and_duplicate_sections_are_rejected() {
        let bytes = encode_container(&[(SectionId::App, vec![1])]);
        let mut unknown = bytes.clone();
        unknown[12] = 99; // overwrite the tag
        assert_eq!(
            decode_container(&unknown),
            Err(RestoreError::UnknownSection { tag: 99 })
        );

        let twice = encode_container(&[(SectionId::App, vec![1]), (SectionId::App, vec![2])]);
        assert_eq!(
            decode_container(&twice),
            Err(RestoreError::DuplicateSection {
                section: SectionId::App
            })
        );
    }

    #[test]
    fn appended_garbage_is_rejected() {
        let mut bytes = sample();
        bytes.push(0xAA);
        assert_eq!(decode_container(&bytes), Err(RestoreError::TrailingBytes));
    }

    #[test]
    fn arbitrary_prefixes_never_panic() {
        // A fuzz-ish sweep: every prefix of a valid container, with every
        // byte of a short corrupt header, decodes to Ok or a typed error.
        let bytes = sample();
        for cut in 0..bytes.len() {
            let _ = decode_container(&bytes[..cut]);
        }
        for b in 0..=255u8 {
            let _ = decode_container(&[b; 7]);
            let _ = decode_container(&[b; 23]);
        }
    }
}
