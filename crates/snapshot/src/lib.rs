//! # brainsim-snapshot
//!
//! Crash-consistent checkpoint/restore for the simulator: a versioned,
//! checksummed binary container for complete chip state, atomic snapshot
//! files, and a retention policy with corruption fallback.
//!
//! The architecture's determinism contract makes checkpointing exact: chip
//! state is a finite set of words (membrane potentials, LFSR states,
//! crossbar words, scheduler rings, counters), and a run restored from a
//! snapshot taken after tick `t` produces the *bit-identical* event stream
//! a never-interrupted run produces — at any thread count, under either
//! scheduler, on the SWAR or scalar kernels. `tests/checkpoint.rs` proves
//! it differentially.
//!
//! ## Layers
//!
//! * [`wire`] — bounds-checked little-endian primitives ([`wire::Writer`] /
//!   [`wire::Reader`]); every length prefix is validated before allocation.
//! * [`codec`] — explicit field-ordered codecs for the state images
//!   ([`brainsim_core::CoreState`], [`brainsim_faults::FaultPlan`],
//!   [`brainsim_telemetry::RunSummary`], [`brainsim_noc::NocState`]).
//! * container — [`MAGIC`]`+`[`VERSION`] header and CRC-32-framed sections
//!   ([`SectionId`]); [`decode_container`] is total over arbitrary bytes,
//!   returning typed [`RestoreError`]s, never panicking.
//! * file — [`save_atomic`] (write-temp → fsync → rename: a crash leaves
//!   the previous snapshot intact) and [`load_verified`].
//! * policy — [`CheckpointPolicy`]: every-N cadence, keep-last-K retention,
//!   and [`CheckpointPolicy::load_newest_verifying`] fallback past a
//!   corrupt latest snapshot.
//!
//! The chip-level assembly — `Chip::checkpoint()` / `Chip::restore()` and
//! the `Snapshot` type — lives in `brainsim-chip`, which composes these
//! layers with its own configuration section.
//!
//! ## Crash-injection hook
//!
//! For the CI kill tests, `BRAINSIM_SNAPSHOT_HOLD_WRITE=n` makes the
//! process's `n`-th atomic write sleep `BRAINSIM_SNAPSHOT_HOLD_MS`
//! milliseconds between the temp-file fsync and the rename — the widest
//! mid-write window. A SIGKILL landing there must (and does) leave the
//! newest committed snapshot loadable.
//!
//! For the retry path, `BRAINSIM_SNAPSHOT_FAIL_WRITES=n` makes the first
//! `n` atomic writes of the process fail with a synthetic `io::Error`
//! ([`inject_write_failures`] is the per-thread in-process equivalent);
//! [`CheckpointPolicy::save_with_retry`] with a [`RetryPolicy`] rides out
//! such transients and surfaces exhaustion as a typed [`SaveError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod codec;
mod container;
mod crc;
mod file;
mod policy;
pub mod wire;

pub use container::{
    decode_container, encode_container, verify, RestoreError, SectionId, MAGIC, VERSION,
};
pub use crc::crc32;
pub use file::{inject_write_failures, load_verified, save_atomic, SnapshotIoError};
pub use policy::{CheckpointPolicy, NewestVerifying, RetryPolicy, SaveError, SkippedCheckpoint};
