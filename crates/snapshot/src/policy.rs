//! Checkpoint cadence and retention: save every N ticks, keep the last K,
//! and on restore fall back to the newest snapshot that still verifies.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::file::{load_verified, save_atomic, SnapshotIoError};

/// Bounded retry with capped exponential backoff for checkpoint writes.
///
/// A transient `io::Error` on a checkpoint write (disk-full blip, NFS
/// hiccup, injected failure) should not abort an otherwise healthy run:
/// [`CheckpointPolicy::save_with_retry`] re-attempts up to `attempts`
/// times, sleeping `base × 2^(k−1)` (capped at `cap`) after the `k`-th
/// failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    attempts: u32,
    base: Duration,
    cap: Duration,
}

impl RetryPolicy {
    /// Up to `attempts` total attempts (min 1), exponential backoff from
    /// `base`, capped at `cap`.
    pub fn new(attempts: u32, base: Duration, cap: Duration) -> RetryPolicy {
        RetryPolicy {
            attempts: attempts.max(1),
            base,
            cap: cap.max(base),
        }
    }

    /// Total attempts permitted.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The backoff slept after the `failed` -th failed attempt (1-based):
    /// `base × 2^(failed−1)`, saturating, capped at `cap`.
    pub fn backoff_after(&self, failed: u32) -> Duration {
        let doublings = failed.saturating_sub(1).min(32);
        let delay = self.base.saturating_mul(1u32 << doublings);
        delay.min(self.cap)
    }
}

impl Default for RetryPolicy {
    /// 3 attempts, 10 ms base, 500 ms cap.
    fn default() -> Self {
        RetryPolicy::new(3, Duration::from_millis(10), Duration::from_millis(500))
    }
}

/// A checkpoint write that failed on every permitted attempt.
#[derive(Debug)]
pub struct SaveError {
    /// Attempts made (equals the policy's budget).
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: io::Error,
}

impl std::fmt::Display for SaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint write failed after {} attempt(s): {}",
            self.attempts, self.last
        )
    }
}

impl std::error::Error for SaveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.last)
    }
}

/// A checkpoint file [`CheckpointPolicy::load_newest_verifying_with_skips`]
/// passed over on its backwards walk: newer than the winner, but damaged or
/// unreadable. Surfacing these lets a supervisor log and meter
/// corrupt-checkpoint events instead of silently healing past them — a
/// checkpoint that rots on disk is an incident even when an older one
/// saves the restore.
#[derive(Debug)]
pub struct SkippedCheckpoint {
    /// The tick encoded in the skipped file's name.
    pub tick: u64,
    /// The skipped file.
    pub path: PathBuf,
    /// Why it was skipped: unreadable, or failed container verification.
    pub error: SnapshotIoError,
}

/// The audited result of
/// [`CheckpointPolicy::load_newest_verifying_with_skips`]: the newest
/// verifying `(tick, bytes)` — or `None` — plus every newer checkpoint
/// the backwards walk skipped, newest first.
pub type NewestVerifying = (Option<(u64, Vec<u8>)>, Vec<SkippedCheckpoint>);

/// When to checkpoint and how many checkpoints to retain.
///
/// Retention is the corruption-recovery margin: with `keep ≥ 2`, a latest
/// snapshot damaged on disk (bit rot, torn by an unlucky crash window on a
/// non-atomic filesystem) still leaves an older verified one for
/// [`CheckpointPolicy::load_newest_verifying`] to fall back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    every: u64,
    keep: usize,
}

impl CheckpointPolicy {
    /// Checkpoint every `every` ticks (min 1), keeping the newest `keep`
    /// files (min 1).
    pub fn new(every: u64, keep: usize) -> CheckpointPolicy {
        CheckpointPolicy {
            every: every.max(1),
            keep: keep.max(1),
        }
    }

    /// The checkpoint interval in ticks.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// How many checkpoint files are retained.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// True when a checkpoint is due after completing tick `tick − 1`,
    /// i.e. when `tick` (the number of ticks completed) is a positive
    /// multiple of the interval.
    pub fn due(&self, tick: u64) -> bool {
        tick > 0 && tick.is_multiple_of(self.every)
    }

    /// The canonical file path for the checkpoint taken at `tick`. The
    /// zero-padded tick makes lexical order equal numeric order.
    pub fn path_for(dir: &Path, tick: u64) -> PathBuf {
        dir.join(format!("ckpt-{tick:020}.bsnp"))
    }

    /// All checkpoints in `dir`, as `(tick, path)` sorted oldest first.
    /// Non-checkpoint files (including `.tmp` leftovers from a crashed
    /// write) are ignored.
    pub fn list(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(tick) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".bsnp"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            out.push((tick, path));
        }
        out.sort();
        Ok(out)
    }

    /// Atomically writes the checkpoint for `tick` and prunes the oldest
    /// files beyond the retention count. Returns the written path.
    pub fn save(&self, dir: &Path, tick: u64, bytes: &[u8]) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = CheckpointPolicy::path_for(dir, tick);
        save_atomic(&path, bytes)?;
        let existing = CheckpointPolicy::list(dir)?;
        if existing.len() > self.keep {
            for (_, old) in &existing[..existing.len() - self.keep] {
                // A file that vanished between list and prune (a concurrent
                // run, an operator's cleanup) is already pruned.
                match std::fs::remove_file(old) {
                    Err(e) if e.kind() != io::ErrorKind::NotFound => return Err(e),
                    _ => {}
                }
            }
        }
        Ok(path)
    }

    /// [`CheckpointPolicy::save`] wrapped in a [`RetryPolicy`]: transient
    /// write failures are retried with capped exponential backoff; only
    /// exhausting the attempt budget surfaces, as a [`SaveError`] carrying
    /// the attempt count and the final cause.
    ///
    /// # Errors
    ///
    /// [`SaveError`] after `retry.attempts()` consecutive failures.
    pub fn save_with_retry(
        &self,
        dir: &Path,
        tick: u64,
        bytes: &[u8],
        retry: &RetryPolicy,
    ) -> Result<PathBuf, SaveError> {
        let mut failed = 0;
        loop {
            match self.save(dir, tick, bytes) {
                Ok(path) => return Ok(path),
                Err(last) => {
                    failed += 1;
                    if failed >= retry.attempts() {
                        return Err(SaveError {
                            attempts: failed,
                            last,
                        });
                    }
                    let backoff = retry.backoff_after(failed);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    /// Loads the newest checkpoint in `dir` that passes container
    /// verification (magic, version, every section CRC), walking backwards
    /// past corrupt or unreadable files. Returns `None` when no checkpoint
    /// verifies; IO errors other than per-file read failures propagate.
    pub fn load_newest_verifying(dir: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
        Ok(CheckpointPolicy::load_newest_verifying_with_skips(dir)?.0)
    }

    /// [`CheckpointPolicy::load_newest_verifying`] with the audit trail:
    /// alongside the winner (or `None`), returns every newer checkpoint the
    /// walk skipped and the [`SnapshotIoError`] that disqualified it, in
    /// newest-first walk order. A damaged or vanished file is exactly what
    /// fallback is for — but the caller gets to log and meter it.
    pub fn load_newest_verifying_with_skips(dir: &Path) -> io::Result<NewestVerifying> {
        let mut skipped = Vec::new();
        for (tick, path) in CheckpointPolicy::list(dir)?.into_iter().rev() {
            match load_verified(&path) {
                Ok(bytes) => return Ok((Some((tick, bytes)), skipped)),
                Err(error) => skipped.push(SkippedCheckpoint { tick, path, error }),
            }
        }
        Ok((None, skipped))
    }
}

impl Default for CheckpointPolicy {
    /// Every 100 ticks, keep the last 3.
    fn default() -> Self {
        CheckpointPolicy::new(100, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{encode_container, SectionId};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("brainsim-policy-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(tick: u64) -> Vec<u8> {
        encode_container(&[(SectionId::App, tick.to_le_bytes().to_vec())])
    }

    #[test]
    fn cadence() {
        let p = CheckpointPolicy::new(25, 2);
        assert!(!p.due(0));
        assert!(!p.due(24));
        assert!(p.due(25));
        assert!(p.due(50));
        assert!(!p.due(51));
        // Degenerate intervals clamp instead of dividing by zero.
        assert!(CheckpointPolicy::new(0, 0).due(1));
    }

    #[test]
    fn save_rotates_and_keeps_newest_k() {
        let dir = tmpdir("rotate");
        let p = CheckpointPolicy::new(10, 2);
        for tick in [10, 20, 30, 40] {
            p.save(&dir, tick, &payload(tick)).expect("save");
        }
        let ticks: Vec<u64> = CheckpointPolicy::list(&dir)
            .expect("list")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(ticks, vec![30, 40]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_verifying_falls_back_past_corruption() {
        let dir = tmpdir("fallback");
        let p = CheckpointPolicy::new(10, 3);
        p.save(&dir, 10, &payload(10)).expect("save 10");
        p.save(&dir, 20, &payload(20)).expect("save 20");
        // Damage the newest file on disk.
        let newest = CheckpointPolicy::path_for(&dir, 20);
        let mut bytes = std::fs::read(&newest).expect("read newest");
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&newest, &bytes).expect("damage newest");

        let (tick, loaded) = CheckpointPolicy::load_newest_verifying(&dir)
            .expect("io")
            .expect("fallback found");
        assert_eq!(tick, 10);
        assert_eq!(loaded, payload(10));

        // The audited form reports the same winner plus *why* tick 20 was
        // passed over.
        let (found, skipped) =
            CheckpointPolicy::load_newest_verifying_with_skips(&dir).expect("io");
        let (tick, loaded) = found.expect("fallback found");
        assert_eq!(tick, 10);
        assert_eq!(loaded, payload(10));
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].tick, 20);
        assert_eq!(skipped[0].path, newest);
        assert!(matches!(skipped[0].error, SnapshotIoError::Restore(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_corrupt_reports_every_skip_and_no_winner() {
        let dir = tmpdir("all-corrupt");
        let p = CheckpointPolicy::new(10, 3);
        for tick in [10, 20] {
            p.save(&dir, tick, &payload(tick)).expect("save");
            let path = CheckpointPolicy::path_for(&dir, tick);
            let mut bytes = std::fs::read(&path).expect("read");
            let n = bytes.len();
            bytes[n - 1] ^= 0xFF;
            std::fs::write(&path, &bytes).expect("damage");
        }
        let (found, skipped) =
            CheckpointPolicy::load_newest_verifying_with_skips(&dir).expect("io");
        assert!(found.is_none());
        // Newest-first walk order.
        assert_eq!(
            skipped.iter().map(|s| s.tick).collect::<Vec<_>>(),
            vec![20, 10]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_rides_out_injected_transient_failures() {
        let dir = tmpdir("retry-ok");
        let p = CheckpointPolicy::new(10, 2);
        let retry = RetryPolicy::new(3, Duration::ZERO, Duration::ZERO);
        crate::file::inject_write_failures(2);
        let path = p
            .save_with_retry(&dir, 10, &payload(10), &retry)
            .expect("third attempt succeeds");
        assert_eq!(path, CheckpointPolicy::path_for(&dir, 10));
        assert_eq!(load_verified(&path).expect("verifies"), payload(10));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_exhaustion_surfaces_attempts_and_cause() {
        let dir = tmpdir("retry-exhaust");
        let p = CheckpointPolicy::new(10, 2);
        let retry = RetryPolicy::new(3, Duration::ZERO, Duration::ZERO);
        crate::file::inject_write_failures(5);
        let err = p
            .save_with_retry(&dir, 10, &payload(10), &retry)
            .expect_err("budget exhausted");
        assert_eq!(err.attempts, 3);
        assert!(err.last.to_string().contains("injected"));
        // Drain the leftover budget so later saves on this thread succeed.
        crate::file::inject_write_failures(0);
        assert!(CheckpointPolicy::list(&dir).expect("list").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy::new(6, Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(r.backoff_after(1), Duration::from_millis(10));
        assert_eq!(r.backoff_after(2), Duration::from_millis(20));
        assert_eq!(r.backoff_after(3), Duration::from_millis(35)); // capped
        assert_eq!(r.backoff_after(6), Duration::from_millis(35));
        // Degenerate budgets clamp to one attempt; cap never undercuts base.
        assert_eq!(
            RetryPolicy::new(0, Duration::ZERO, Duration::ZERO).attempts(),
            1
        );
    }

    #[test]
    fn empty_or_missing_dir_is_none() {
        let dir = tmpdir("empty");
        assert!(CheckpointPolicy::load_newest_verifying(&dir)
            .expect("io")
            .is_none());
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(CheckpointPolicy::load_newest_verifying(&dir)
            .expect("io")
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
