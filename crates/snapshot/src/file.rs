//! Crash-consistent snapshot files: write-temp → fsync → rename.
//!
//! A snapshot on disk is either the complete, fsynced previous content or
//! the complete new content — never a torn mix. The rename is the commit
//! point; a crash at any earlier instant leaves at worst a stale `.tmp`
//! file beside an intact previous snapshot (the restore path ignores
//! temporaries).

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::container::{verify, RestoreError};

/// Error from snapshot file IO: the filesystem failed, or the bytes on
/// disk failed verification.
#[derive(Debug)]
pub enum SnapshotIoError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file was read but is not a valid snapshot.
    Restore(RestoreError),
}

impl std::fmt::Display for SnapshotIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotIoError::Io(e) => write!(f, "snapshot io failed: {e}"),
            SnapshotIoError::Restore(e) => write!(f, "snapshot invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotIoError {}

impl From<io::Error> for SnapshotIoError {
    fn from(e: io::Error) -> Self {
        SnapshotIoError::Io(e)
    }
}

impl From<RestoreError> for SnapshotIoError {
    fn from(e: RestoreError) -> Self {
        SnapshotIoError::Restore(e)
    }
}

/// Atomic writes completed by this process (drives the crash hook).
static WRITES: AtomicU64 = AtomicU64::new(0);

/// Crash-injection hook for the CI kill tests: when
/// `BRAINSIM_SNAPSHOT_HOLD_WRITE=n` is set, the `n`-th atomic write of the
/// process (1-based) sleeps `BRAINSIM_SNAPSHOT_HOLD_MS` milliseconds
/// (default 30000) *after* the temp file is written and fsynced but
/// *before* the rename — the widest possible mid-write window. A SIGKILL
/// landing in that window leaves the previous snapshot untouched.
fn hold_if_hooked(nth: u64) {
    let hold = std::env::var("BRAINSIM_SNAPSHOT_HOLD_WRITE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    if hold == Some(nth) {
        let ms = std::env::var("BRAINSIM_SNAPSHOT_HOLD_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(30_000);
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Remaining process-wide injected write failures, seeded once from
/// `BRAINSIM_SNAPSHOT_FAIL_WRITES` (the retry soak hook).
static FAIL_BUDGET: OnceLock<AtomicU64> = OnceLock::new();

thread_local! {
    /// Remaining injected failures armed by [`inject_write_failures`] on
    /// this thread — thread-local so parallel unit tests stay hermetic.
    static LOCAL_FAIL_BUDGET: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn fail_budget() -> &'static AtomicU64 {
    FAIL_BUDGET.get_or_init(|| {
        AtomicU64::new(
            std::env::var("BRAINSIM_SNAPSHOT_FAIL_WRITES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        )
    })
}

/// Arms the transient-failure injector for the calling thread: its next
/// `n` atomic snapshot writes fail with a synthetic [`io::Error`] before
/// touching the filesystem, then writes succeed again. The environment
/// variable `BRAINSIM_SNAPSHOT_FAIL_WRITES=n` arms the same injector
/// process-wide at startup — that is the CI soak hook; this function is
/// the in-process equivalent for tests exercising the retry path.
pub fn inject_write_failures(n: u64) {
    LOCAL_FAIL_BUDGET.with(|b| b.set(n));
}

fn fail_if_armed() -> io::Result<()> {
    let local_hit = LOCAL_FAIL_BUDGET.with(|b| {
        let n = b.get();
        if n > 0 {
            b.set(n - 1);
        }
        n > 0
    });
    if !local_hit {
        let budget = fail_budget();
        let mut cur = budget.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return Ok(());
            }
            match budget.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
    Err(io::Error::other(
        "injected snapshot write failure (BRAINSIM_SNAPSHOT_FAIL_WRITES)",
    ))
}

/// Writes `bytes` to `path` crash-consistently: the content goes to
/// `<path>.tmp` first, is fsynced, and only then renamed over `path`.
/// A crash at any point leaves `path` either absent or holding its
/// complete previous content.
pub fn save_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    fail_if_armed()?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    let nth = WRITES.fetch_add(1, Ordering::Relaxed) + 1;
    hold_if_hooked(nth);
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself (the directory entry). Failure to fsync a
    // directory is non-fatal on filesystems that don't support it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads `path` and verifies container integrity (magic, version, every
/// section CRC), returning the raw bytes on success.
pub fn load_verified(path: &Path) -> Result<Vec<u8>, SnapshotIoError> {
    let bytes = std::fs::read(path)?;
    verify(&bytes)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{encode_container, SectionId};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("brainsim-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn atomic_save_round_trips_and_leaves_no_temp() {
        let dir = tmpdir("atomic");
        let path = dir.join("state.bsnp");
        let bytes = encode_container(&[(SectionId::App, vec![1, 2, 3])]);
        save_atomic(&path, &bytes).expect("save");
        assert_eq!(load_verified(&path).expect("load"), bytes);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file must not survive a save");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_content_completely() {
        let dir = tmpdir("overwrite");
        let path = dir.join("state.bsnp");
        let first = encode_container(&[(SectionId::App, vec![0; 4096])]);
        let second = encode_container(&[(SectionId::App, vec![7; 8])]);
        save_atomic(&path, &first).expect("save first");
        save_atomic(&path, &second).expect("save second");
        assert_eq!(load_verified(&path).expect("load"), second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_fails_verification_not_panics() {
        let dir = tmpdir("corrupt");
        let path = dir.join("state.bsnp");
        let bytes = encode_container(&[(SectionId::App, vec![5; 64])]);
        save_atomic(&path, &bytes).expect("save");
        let mut damaged = bytes.clone();
        let n = damaged.len();
        damaged[n - 1] ^= 1;
        std::fs::write(&path, &damaged).expect("overwrite with damage");
        assert!(matches!(
            load_verified(&path),
            Err(SnapshotIoError::Restore(RestoreError::SectionCrc { .. }))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = tmpdir("missing");
        assert!(matches!(
            load_verified(&dir.join("nope.bsnp")),
            Err(SnapshotIoError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
