//! IEEE CRC-32 (the zlib/PNG polynomial, reflected), hand-rolled so the
//! snapshot format has no external dependency and a table computed at
//! compile time.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`. The check value of `b"123456789"` is
/// `0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(b"snapshot payload");
        let b = crc32(b"snapshot pcyload");
        assert_ne!(a, b);
    }
}
