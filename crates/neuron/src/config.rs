//! Neuron parameter block and its builder.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::weight::{AxonType, Weight, AXON_TYPES};

/// What happens to the membrane potential when the neuron fires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResetMode {
    /// `V ← R`: jump to the configured reset potential. The silicon default.
    #[default]
    Absolute,
    /// `V ← V − α`: subtract the (configured) positive threshold, preserving
    /// charge above threshold. Gives exact rate proportionality.
    Linear,
    /// `V` is left unchanged; the neuron keeps firing every tick while it
    /// remains at or above threshold.
    None,
}

/// What happens when the potential falls below the negative threshold `−β`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NegativeThresholdMode {
    /// `V ← −β`: saturate at the negative floor. The silicon default.
    #[default]
    Saturate,
    /// `V ← −R`: symmetric reset to minus the reset potential (no spike is
    /// emitted; only positive crossings spike).
    Reset,
}

/// Error returned by [`NeuronConfigBuilder::build`] for invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The positive threshold must be at least 1.
    ZeroThreshold,
    /// The stochastic-threshold mask width must be at most 17 bits so the
    /// effective threshold still fits the potential range.
    MaskTooWide(u32),
    /// `reset_potential` magnitude must stay below the positive threshold,
    /// otherwise an absolute reset immediately re-fires forever.
    ResetAboveThreshold {
        /// Configured reset potential.
        reset: i32,
        /// Configured positive threshold.
        threshold: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreshold => write!(f, "positive threshold must be at least 1"),
            ConfigError::MaskTooWide(bits) => {
                write!(f, "stochastic threshold mask of {bits} bits exceeds 17")
            }
            ConfigError::ResetAboveThreshold { reset, threshold } => write!(
                f,
                "reset potential {reset} not below positive threshold {threshold}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The complete per-neuron parameter block of a neurosynaptic core.
///
/// Mirrors the fields a core's neuron SRAM holds per row: four signed 9-bit
/// weights indexed by [`AxonType`], per-type stochastic flags, the leak and
/// its modes, positive and negative thresholds, and the reset behaviour.
///
/// Construct via [`NeuronConfig::builder`]; the builder validates the
/// parameter ranges ([`ConfigError`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NeuronConfig {
    pub(crate) weights: [Weight; AXON_TYPES],
    pub(crate) stochastic_synapse: [bool; AXON_TYPES],
    pub(crate) leak: i32,
    pub(crate) leak_reversal: bool,
    pub(crate) stochastic_leak: bool,
    pub(crate) threshold: u32,
    pub(crate) threshold_mask_bits: u32,
    pub(crate) negative_threshold: u32,
    pub(crate) negative_mode: NegativeThresholdMode,
    pub(crate) reset_mode: ResetMode,
    pub(crate) reset_potential: i32,
}

impl NeuronConfig {
    /// Starts building a configuration.
    pub fn builder() -> NeuronConfigBuilder {
        NeuronConfigBuilder::new()
    }

    /// The weight applied for axons of the given type.
    #[inline]
    pub fn weight(&self, ty: AxonType) -> Weight {
        self.weights[ty.index()]
    }

    /// Returns a copy of this configuration with the weight table replaced.
    ///
    /// Used by the compiler, which derives weight tables from the axon-type
    /// assignment and treats the template's own weights as placeholders.
    #[must_use]
    pub fn with_weights(&self, weights: [Weight; AXON_TYPES]) -> NeuronConfig {
        NeuronConfig {
            weights,
            ..self.clone()
        }
    }

    /// All four weights, indexed by axon type.
    #[inline]
    pub fn weights(&self) -> &[Weight; AXON_TYPES] {
        &self.weights
    }

    /// Whether synapses of the given type integrate stochastically.
    #[inline]
    pub fn is_stochastic_synapse(&self, ty: AxonType) -> bool {
        self.stochastic_synapse[ty.index()]
    }

    /// The signed leak applied once per tick.
    #[inline]
    pub fn leak(&self) -> i32 {
        self.leak
    }

    /// Whether the leak direction follows the sign of the potential.
    #[inline]
    pub fn leak_reversal(&self) -> bool {
        self.leak_reversal
    }

    /// Whether the leak is applied stochastically.
    #[inline]
    pub fn stochastic_leak(&self) -> bool {
        self.stochastic_leak
    }

    /// The positive firing threshold `α`.
    #[inline]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Width in bits of the stochastic-threshold jitter mask (0 = deterministic).
    #[inline]
    pub fn threshold_mask_bits(&self) -> u32 {
        self.threshold_mask_bits
    }

    /// The negative threshold magnitude `β` (the floor is `−β`).
    #[inline]
    pub fn negative_threshold(&self) -> u32 {
        self.negative_threshold
    }

    /// Behaviour at the negative threshold.
    #[inline]
    pub fn negative_mode(&self) -> NegativeThresholdMode {
        self.negative_mode
    }

    /// Behaviour at the positive threshold.
    #[inline]
    pub fn reset_mode(&self) -> ResetMode {
        self.reset_mode
    }

    /// The reset potential `R` used by [`ResetMode::Absolute`].
    #[inline]
    pub fn reset_potential(&self) -> i32 {
        self.reset_potential
    }
}

impl Default for NeuronConfig {
    /// A quiet, deterministic neuron: unit positive weights on type 0,
    /// inhibitory `-1` on type 3, zero leak, threshold 1.
    fn default() -> Self {
        NeuronConfig::builder()
            .build()
            .expect("default config is valid")
    }
}

/// Builder for [`NeuronConfig`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct NeuronConfigBuilder {
    weights: [Weight; AXON_TYPES],
    stochastic_synapse: [bool; AXON_TYPES],
    leak: i32,
    leak_reversal: bool,
    stochastic_leak: bool,
    threshold: u32,
    threshold_mask_bits: u32,
    negative_threshold: u32,
    negative_mode: NegativeThresholdMode,
    reset_mode: ResetMode,
    reset_potential: i32,
}

impl NeuronConfigBuilder {
    fn new() -> Self {
        NeuronConfigBuilder {
            weights: [
                Weight::saturating(1),
                Weight::ZERO,
                Weight::ZERO,
                Weight::saturating(-1),
            ],
            stochastic_synapse: [false; AXON_TYPES],
            leak: 0,
            leak_reversal: false,
            stochastic_leak: false,
            threshold: 1,
            threshold_mask_bits: 0,
            // Default β places the floor at the representable minimum,
            // i.e. no effective negative threshold.
            negative_threshold: 1 << 19,
            negative_mode: NegativeThresholdMode::Saturate,
            reset_mode: ResetMode::Absolute,
            reset_potential: 0,
        }
    }

    /// Sets the weight for one axon type.
    pub fn weight(&mut self, ty: AxonType, weight: Weight) -> &mut Self {
        self.weights[ty.index()] = weight;
        self
    }

    /// Sets all four weights at once, indexed by axon type.
    pub fn weights(&mut self, weights: [Weight; AXON_TYPES]) -> &mut Self {
        self.weights = weights;
        self
    }

    /// Makes synaptic integration for one axon type stochastic.
    pub fn stochastic_synapse(&mut self, ty: AxonType, stochastic: bool) -> &mut Self {
        self.stochastic_synapse[ty.index()] = stochastic;
        self
    }

    /// Sets the signed per-tick leak.
    pub fn leak(&mut self, leak: i32) -> &mut Self {
        self.leak = leak;
        self
    }

    /// Makes the leak direction follow the sign of the potential.
    ///
    /// With a *negative* leak this produces decay toward zero from either
    /// side; with a *positive* leak, divergence away from zero.
    pub fn leak_reversal(&mut self, enabled: bool) -> &mut Self {
        self.leak_reversal = enabled;
        self
    }

    /// Makes the leak stochastic: `sign(λ)` is added with probability `|λ|/256`.
    pub fn stochastic_leak(&mut self, enabled: bool) -> &mut Self {
        self.stochastic_leak = enabled;
        self
    }

    /// Sets the positive firing threshold `α` (must be ≥ 1).
    pub fn threshold(&mut self, threshold: u32) -> &mut Self {
        self.threshold = threshold;
        self
    }

    /// Enables stochastic threshold with a jitter mask of the given width.
    ///
    /// Each tick the effective threshold is `α + draw`, where `draw` is a
    /// uniform value in `0..2^bits`.
    pub fn threshold_mask_bits(&mut self, bits: u32) -> &mut Self {
        self.threshold_mask_bits = bits;
        self
    }

    /// Sets the negative threshold magnitude `β`.
    pub fn negative_threshold(&mut self, beta: u32) -> &mut Self {
        self.negative_threshold = beta;
        self
    }

    /// Sets the behaviour at the negative threshold.
    pub fn negative_mode(&mut self, mode: NegativeThresholdMode) -> &mut Self {
        self.negative_mode = mode;
        self
    }

    /// Sets the behaviour at the positive threshold.
    pub fn reset_mode(&mut self, mode: ResetMode) -> &mut Self {
        self.reset_mode = mode;
        self
    }

    /// Sets the reset potential `R` used by [`ResetMode::Absolute`].
    pub fn reset_potential(&mut self, reset: i32) -> &mut Self {
        self.reset_potential = reset;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::ZeroThreshold`] if the threshold is 0.
    /// * [`ConfigError::MaskTooWide`] if the jitter mask exceeds 17 bits.
    /// * [`ConfigError::ResetAboveThreshold`] if an absolute reset would land
    ///   at or above the threshold (instant re-fire loop).
    pub fn build(&self) -> Result<NeuronConfig, ConfigError> {
        if self.threshold == 0 {
            return Err(ConfigError::ZeroThreshold);
        }
        if self.threshold_mask_bits > 17 {
            return Err(ConfigError::MaskTooWide(self.threshold_mask_bits));
        }
        if self.reset_mode == ResetMode::Absolute
            && self.reset_potential as i64 >= self.threshold as i64
        {
            return Err(ConfigError::ResetAboveThreshold {
                reset: self.reset_potential,
                threshold: self.threshold,
            });
        }
        Ok(NeuronConfig {
            weights: self.weights,
            stochastic_synapse: self.stochastic_synapse,
            leak: self.leak,
            leak_reversal: self.leak_reversal,
            stochastic_leak: self.stochastic_leak,
            threshold: self.threshold,
            threshold_mask_bits: self.threshold_mask_bits,
            negative_threshold: self.negative_threshold,
            negative_mode: self.negative_mode,
            reset_mode: self.reset_mode,
            reset_potential: self.reset_potential,
        })
    }
}

impl Default for NeuronConfigBuilder {
    fn default() -> Self {
        NeuronConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_quiet() {
        let config = NeuronConfig::default();
        assert_eq!(config.threshold(), 1);
        assert_eq!(config.leak(), 0);
        assert_eq!(config.weight(AxonType::A0).value(), 1);
        assert_eq!(config.weight(AxonType::A3).value(), -1);
    }

    #[test]
    fn zero_threshold_rejected() {
        let err = NeuronConfig::builder().threshold(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroThreshold);
    }

    #[test]
    fn wide_mask_rejected() {
        let err = NeuronConfig::builder()
            .threshold_mask_bits(18)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::MaskTooWide(18));
    }

    #[test]
    fn absolute_reset_at_threshold_rejected() {
        let err = NeuronConfig::builder()
            .threshold(10)
            .reset_potential(10)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ResetAboveThreshold { .. }));
    }

    #[test]
    fn linear_reset_allows_high_reset_potential_field() {
        // The reset potential is unused by Linear mode, so it is not validated.
        let config = NeuronConfig::builder()
            .threshold(10)
            .reset_mode(ResetMode::Linear)
            .reset_potential(10)
            .build()
            .unwrap();
        assert_eq!(config.reset_mode(), ResetMode::Linear);
    }

    #[test]
    fn builder_sets_all_fields() {
        let config = NeuronConfig::builder()
            .weight(AxonType::A1, Weight::new(-3).unwrap())
            .stochastic_synapse(AxonType::A1, true)
            .leak(-2)
            .leak_reversal(true)
            .stochastic_leak(true)
            .threshold(100)
            .threshold_mask_bits(4)
            .negative_threshold(50)
            .negative_mode(NegativeThresholdMode::Reset)
            .reset_mode(ResetMode::Linear)
            .reset_potential(5)
            .build()
            .unwrap();
        assert_eq!(config.weight(AxonType::A1).value(), -3);
        assert!(config.is_stochastic_synapse(AxonType::A1));
        assert!(!config.is_stochastic_synapse(AxonType::A0));
        assert_eq!(config.leak(), -2);
        assert!(config.leak_reversal());
        assert!(config.stochastic_leak());
        assert_eq!(config.threshold(), 100);
        assert_eq!(config.threshold_mask_bits(), 4);
        assert_eq!(config.negative_threshold(), 50);
        assert_eq!(config.negative_mode(), NegativeThresholdMode::Reset);
        assert_eq!(config.reset_mode(), ResetMode::Linear);
        assert_eq!(config.reset_potential(), 5);
    }

    #[test]
    fn config_serde_round_trip() {
        let config = NeuronConfig::builder()
            .threshold(42)
            .leak(-1)
            .build()
            .unwrap();
        let json = serde_json_like(&config);
        assert!(json.contains("42"));
    }

    // serde_json is not in the dependency set; smoke-test Serialize via the
    // debug formatter instead and rely on derive correctness.
    fn serde_json_like(config: &NeuronConfig) -> String {
        format!("{config:?}")
    }
}
