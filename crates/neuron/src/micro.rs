//! A tiny multi-neuron harness with delayed synapses.
//!
//! [`MicroNet`] wires a handful of neurons together with axonal delays
//! (1–15 ticks, like the core scheduler) without pulling in the full
//! crossbar machinery. It exists for two reasons:
//!
//! * the canonical biological behaviours (see [`crate::behavior`]) are
//!   realised by one-to-three neuron circuits, exactly as they are on the
//!   silicon;
//! * it provides a minimal, easily-auditable reference for the delay
//!   semantics the core scheduler must honour.
//!
//! # Example
//!
//! ```
//! use brainsim_neuron::micro::{MicroNet, Source};
//! use brainsim_neuron::{AxonType, NeuronConfig, Weight};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = MicroNet::new(1);
//! let config = NeuronConfig::builder()
//!     .threshold(10)
//!     .weight(AxonType::A0, Weight::new(10)?)
//!     .build()?;
//! let n = net.add_neuron(config);
//! net.connect(Source::External(0), n, AxonType::A0, 1)?;
//!
//! let fired = net.step(&[true]); // input presented at tick 0...
//! assert!(!fired[n]);
//! let fired = net.step(&[false]); // ...arrives after the 1-tick delay
//! assert!(fired[n]);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::config::NeuronConfig;
use crate::lfsr::Lfsr;
use crate::neuron::Neuron;
use crate::weight::AxonType;

/// Maximum axonal delay in ticks (the scheduler wheel is 16 deep; a delay of
/// 0 would mean same-tick delivery, which the architecture forbids).
pub const MAX_DELAY: u8 = 15;

/// Where a synapse originates: an external input channel or another neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// External input channel, indexed from 0.
    External(usize),
    /// A neuron inside the net, by index.
    Neuron(usize),
}

/// Error for invalid [`MicroNet`] wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Delay must be in `1..=MAX_DELAY`.
    BadDelay(u8),
    /// Referenced neuron index does not exist.
    NoSuchNeuron(usize),
    /// Referenced external channel is beyond the declared channel count.
    NoSuchChannel(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadDelay(d) => write!(f, "axonal delay {d} outside 1..={MAX_DELAY}"),
            WireError::NoSuchNeuron(i) => write!(f, "neuron index {i} does not exist"),
            WireError::NoSuchChannel(c) => write!(f, "external channel {c} does not exist"),
        }
    }
}

impl std::error::Error for WireError {}

#[derive(Debug, Clone)]
struct Synapse {
    source: Source,
    target: usize,
    ty: AxonType,
    delay: u8,
}

/// A small network of neurons with delayed synapses and external inputs.
#[derive(Debug, Clone)]
pub struct MicroNet {
    neurons: Vec<Neuron>,
    synapses: Vec<Synapse>,
    channels: usize,
    rng: Lfsr,
    /// 16-slot delivery wheel: `wheel[t % 16]` holds `(target, axon type)`
    /// events due for integration at tick `t`.
    wheel: [Vec<(usize, AxonType)>; 16],
    now: u64,
}

impl MicroNet {
    /// Creates an empty net with the given number of external input channels.
    pub fn new(channels: usize) -> MicroNet {
        MicroNet {
            neurons: Vec::new(),
            synapses: Vec::new(),
            channels,
            rng: Lfsr::new(0x5EED),
            wheel: Default::default(),
            now: 0,
        }
    }

    /// Replaces the stochastic-mode random stream seed.
    pub fn seed(&mut self, seed: u32) {
        self.rng = Lfsr::new(seed);
    }

    /// Adds a neuron and returns its index.
    pub fn add_neuron(&mut self, config: NeuronConfig) -> usize {
        self.neurons.push(Neuron::new(config));
        self.neurons.len() - 1
    }

    /// Wires `source → target` with the given axon type and delay.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the delay is outside `1..=15` or either
    /// endpoint does not exist.
    pub fn connect(
        &mut self,
        source: Source,
        target: usize,
        ty: AxonType,
        delay: u8,
    ) -> Result<(), WireError> {
        if delay == 0 || delay > MAX_DELAY {
            return Err(WireError::BadDelay(delay));
        }
        if target >= self.neurons.len() {
            return Err(WireError::NoSuchNeuron(target));
        }
        match source {
            Source::Neuron(i) if i >= self.neurons.len() => return Err(WireError::NoSuchNeuron(i)),
            Source::External(c) if c >= self.channels => return Err(WireError::NoSuchChannel(c)),
            _ => {}
        }
        self.synapses.push(Synapse {
            source,
            target,
            ty,
            delay,
        });
        Ok(())
    }

    /// Number of neurons in the net.
    pub fn len(&self) -> usize {
        self.neurons.len()
    }

    /// Whether the net has no neurons.
    pub fn is_empty(&self) -> bool {
        self.neurons.is_empty()
    }

    /// Read access to a neuron (e.g. to inspect its potential in tests).
    pub fn neuron(&self, index: usize) -> Option<&Neuron> {
        self.neurons.get(index)
    }

    /// The current tick counter.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances one tick.
    ///
    /// `external[c]` is whether channel `c` carries a spike *this* tick; it
    /// reaches its targets after each synapse's delay. Returns which neurons
    /// fired this tick.
    ///
    /// # Panics
    ///
    /// Panics if `external` is shorter than the declared channel count.
    pub fn step(&mut self, external: &[bool]) -> Vec<bool> {
        assert!(
            external.len() >= self.channels,
            "expected {} external channels, got {}",
            self.channels,
            external.len()
        );
        // 1. Integrate events scheduled for this tick.
        let slot = (self.now % 16) as usize;
        let due = std::mem::take(&mut self.wheel[slot]);
        for (target, ty) in due {
            self.neurons[target].integrate(ty, &mut self.rng);
        }

        // 2. Leak + threshold + reset.
        let mut fired = vec![false; self.neurons.len()];
        for (i, neuron) in self.neurons.iter_mut().enumerate() {
            fired[i] = neuron.finish_tick(&mut self.rng).fired();
        }

        // 3. Schedule deliveries from this tick's spikes and inputs.
        for syn in &self.synapses {
            let active = match syn.source {
                Source::External(c) => external[c],
                Source::Neuron(i) => fired[i],
            };
            if active {
                let at = ((self.now + syn.delay as u64) % 16) as usize;
                self.wheel[at].push((syn.target, syn.ty));
            }
        }

        self.now += 1;
        fired
    }

    /// Runs `ticks` steps with a stimulus function mapping tick → channel
    /// spikes, recording the observed neuron's spike train.
    pub fn run<F>(&mut self, ticks: u64, observe: usize, mut stimulus: F) -> Vec<bool>
    where
        F: FnMut(u64) -> Vec<bool>,
    {
        let mut raster = Vec::with_capacity(ticks as usize);
        for t in 0..ticks {
            let input = stimulus(t);
            let fired = self.step(&input);
            raster.push(fired[observe]);
        }
        raster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::Weight;

    fn fire_on_one(threshold: u32, w: i32) -> NeuronConfig {
        NeuronConfig::builder()
            .threshold(threshold)
            .weight(AxonType::A0, Weight::new(w).unwrap())
            .weight(AxonType::A3, Weight::new(-w).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn delay_semantics_exact() {
        let mut net = MicroNet::new(1);
        let n = net.add_neuron(fire_on_one(5, 5));
        net.connect(Source::External(0), n, AxonType::A0, 3)
            .unwrap();
        let mut spikes = Vec::new();
        for t in 0..8 {
            let fired = net.step(&[t == 0]);
            spikes.push(fired[n]);
        }
        // Input at tick 0 with delay 3 integrates at tick 3.
        assert_eq!(
            spikes,
            vec![false, false, false, true, false, false, false, false]
        );
    }

    #[test]
    fn neuron_to_neuron_chain() {
        let mut net = MicroNet::new(1);
        let a = net.add_neuron(fire_on_one(5, 5));
        let b = net.add_neuron(fire_on_one(5, 5));
        net.connect(Source::External(0), a, AxonType::A0, 1)
            .unwrap();
        net.connect(Source::Neuron(a), b, AxonType::A0, 1).unwrap();
        let mut raster_b = Vec::new();
        for t in 0..5 {
            let fired = net.step(&[t == 0]);
            raster_b.push(fired[b]);
        }
        // input@0 → a fires @1 → b fires @2.
        assert_eq!(raster_b, vec![false, false, true, false, false]);
    }

    #[test]
    fn inhibition_cancels_excitation() {
        let mut net = MicroNet::new(2);
        let n = net.add_neuron(fire_on_one(5, 5));
        net.connect(Source::External(0), n, AxonType::A0, 1)
            .unwrap();
        net.connect(Source::External(1), n, AxonType::A3, 1)
            .unwrap();
        for _ in 0..10 {
            let fired = net.step(&[true, true]);
            assert!(!fired[n]);
        }
        assert_eq!(net.neuron(n).unwrap().potential(), 0);
    }

    #[test]
    fn wiring_validation() {
        let mut net = MicroNet::new(1);
        let n = net.add_neuron(fire_on_one(1, 1));
        assert_eq!(
            net.connect(Source::External(0), n, AxonType::A0, 0),
            Err(WireError::BadDelay(0))
        );
        assert_eq!(
            net.connect(Source::External(0), n, AxonType::A0, 16),
            Err(WireError::BadDelay(16))
        );
        assert_eq!(
            net.connect(Source::External(1), n, AxonType::A0, 1),
            Err(WireError::NoSuchChannel(1))
        );
        assert_eq!(
            net.connect(Source::Neuron(5), n, AxonType::A0, 1),
            Err(WireError::NoSuchNeuron(5))
        );
        assert_eq!(
            net.connect(Source::External(0), 9, AxonType::A0, 1),
            Err(WireError::NoSuchNeuron(9))
        );
    }

    #[test]
    #[should_panic(expected = "external channels")]
    fn step_panics_on_short_input() {
        let mut net = MicroNet::new(2);
        net.add_neuron(fire_on_one(1, 1));
        net.step(&[true]);
    }

    #[test]
    fn run_records_observed_neuron() {
        let mut net = MicroNet::new(1);
        let n = net.add_neuron(fire_on_one(5, 5));
        net.connect(Source::External(0), n, AxonType::A0, 1)
            .unwrap();
        let raster = net.run(6, n, |t| vec![t % 2 == 0]);
        // Inputs at 0,2,4 → spikes at 1,3,5.
        assert_eq!(raster, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn wheel_wraps_past_16_ticks() {
        let mut net = MicroNet::new(1);
        let n = net.add_neuron(fire_on_one(5, 5));
        net.connect(Source::External(0), n, AxonType::A0, 15)
            .unwrap();
        let mut fired_at = Vec::new();
        for t in 0..40 {
            let fired = net.step(&[t == 0 || t == 20]);
            if fired[n] {
                fired_at.push(t);
            }
        }
        assert_eq!(fired_at, vec![15, 35]);
    }
}
