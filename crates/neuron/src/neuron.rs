//! The augmented leaky integrate-and-fire neuron evaluation.

use serde::{Deserialize, Serialize};

use crate::config::{NegativeThresholdMode, NeuronConfig, ResetMode};
use crate::lfsr::Lfsr;
use crate::weight::AxonType;

/// Upper saturation bound of the membrane potential (signed 20-bit, as on
/// silicon): `2^19 − 1`.
pub const POTENTIAL_MAX: i32 = (1 << 19) - 1;
/// Lower saturation bound of the membrane potential: `−2^19`.
pub const POTENTIAL_MIN: i32 = -(1 << 19);

/// The result of one tick of neuron evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickOutcome {
    fired: bool,
    potential: i32,
}

impl TickOutcome {
    /// Whether the neuron emitted a spike this tick.
    #[inline]
    pub const fn fired(self) -> bool {
        self.fired
    }

    /// The membrane potential after leak, threshold and reset.
    #[inline]
    pub const fn potential(self) -> i32 {
        self.potential
    }
}

/// A neuron: a parameter block plus its one word of state, the membrane
/// potential.
///
/// Per tick the evaluation order is fixed (and matches the token-controller
/// sequencing of the silicon):
///
/// 1. **Synaptic integration** — zero or more [`integrate`] calls, one per
///    active synapse, in axon order.
/// 2. **Leak** — applied once inside [`finish_tick`].
/// 3. **Threshold, fire, reset** — also inside [`finish_tick`].
///
/// [`integrate`]: Neuron::integrate
/// [`finish_tick`]: Neuron::finish_tick
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Neuron {
    config: NeuronConfig,
    potential: i32,
}

impl Neuron {
    /// Creates a neuron at rest (`V = 0`).
    pub fn new(config: NeuronConfig) -> Neuron {
        Neuron {
            config,
            potential: 0,
        }
    }

    /// Creates a neuron with an explicit initial potential (clamped to the
    /// representable range).
    pub fn with_potential(config: NeuronConfig, potential: i32) -> Neuron {
        Neuron {
            config,
            potential: potential.clamp(POTENTIAL_MIN, POTENTIAL_MAX),
        }
    }

    /// The neuron's parameter block.
    #[inline]
    pub fn config(&self) -> &NeuronConfig {
        &self.config
    }

    /// The current membrane potential.
    #[inline]
    pub fn potential(&self) -> i32 {
        self.potential
    }

    /// Forces the membrane potential (clamped), e.g. when restoring a snapshot.
    pub fn set_potential(&mut self, potential: i32) {
        self.potential = potential.clamp(POTENTIAL_MIN, POTENTIAL_MAX);
    }

    /// Integrates one synaptic event arriving on an axon of type `ty`.
    ///
    /// Deterministic synapses add the signed weight; stochastic synapses add
    /// only the weight's sign, with probability `|w|/256` drawn from `rng`.
    #[inline]
    pub fn integrate(&mut self, ty: AxonType, rng: &mut Lfsr) {
        let weight = self.config.weights[ty.index()];
        let delta = if self.config.stochastic_synapse[ty.index()] {
            if rng.bernoulli_256(weight.magnitude()) {
                weight.signum()
            } else {
                0
            }
        } else {
            weight.value()
        };
        self.add(delta);
    }

    /// Integrates `count` synaptic events of the same axon type at once.
    ///
    /// Deterministic synapses integrate `count · w` in a single saturating
    /// step; stochastic synapses perform `count` independent draws. This is
    /// the canonical batched form used by the core evaluator: because events
    /// of one type are interchangeable, batching is observationally
    /// equivalent to `count` separate [`integrate`](Neuron::integrate) calls
    /// in deterministic mode, and consumes exactly `count` draws in
    /// stochastic mode.
    pub fn integrate_count(&mut self, ty: AxonType, count: u32, rng: &mut Lfsr) {
        if count == 0 {
            return;
        }
        let weight = self.config.weights[ty.index()];
        if self.config.stochastic_synapse[ty.index()] {
            let mut delta = 0i64;
            for _ in 0..count {
                if rng.bernoulli_256(weight.magnitude()) {
                    delta += weight.signum() as i64;
                }
            }
            self.add_wide(delta);
        } else {
            self.add_wide(weight.value() as i64 * count as i64);
        }
    }

    /// Integrates an arbitrary signed amount directly (saturating).
    ///
    /// This bypasses the axon-type weight table; it exists for golden
    /// interpreters and tests that model per-synapse weights exactly,
    /// while reusing this neuron's leak/threshold/reset semantics.
    #[inline]
    pub fn inject_raw(&mut self, delta: i32) {
        self.add(delta);
    }

    /// Applies leak, evaluates the thresholds, fires and resets.
    ///
    /// Call exactly once per tick, after all [`integrate`](Neuron::integrate)
    /// calls for the tick.
    pub fn finish_tick(&mut self, rng: &mut Lfsr) -> TickOutcome {
        self.apply_leak(rng);

        // Positive threshold. The jitter draw must be consumed every tick in
        // stochastic-threshold mode to stay aligned with the silicon stream.
        let alpha = self.config.threshold as i64;
        let effective = if self.config.threshold_mask_bits > 0 {
            alpha + rng.next_masked(self.config.threshold_mask_bits) as i64
        } else {
            alpha
        };

        let fired = (self.potential as i64) >= effective;
        if fired {
            match self.config.reset_mode {
                ResetMode::Absolute => self.potential = self.config.reset_potential,
                ResetMode::Linear => {
                    self.potential = (self.potential as i64 - alpha)
                        .clamp(POTENTIAL_MIN as i64, POTENTIAL_MAX as i64)
                        as i32
                }
                ResetMode::None => {}
            }
        }

        // Negative threshold floor.
        let beta = self.config.negative_threshold as i64;
        if (self.potential as i64) < -beta {
            self.potential = match self.config.negative_mode {
                NegativeThresholdMode::Saturate => (-beta) as i32,
                NegativeThresholdMode::Reset => -self.config.reset_potential,
            };
        }

        TickOutcome {
            fired,
            potential: self.potential,
        }
    }

    /// Resets the potential to zero without touching the configuration.
    pub fn reset_state(&mut self) {
        self.potential = 0;
    }

    /// True when one further tick with **no synaptic input** is a provable
    /// no-op for this neuron: the membrane potential does not move, no spike
    /// can fire, and — critically for lock-step determinism — no pseudo-random
    /// draw is consumed from the core's LFSR.
    ///
    /// The conditions, matching [`Neuron::finish_tick`] step by step:
    ///
    /// * no stochastic threshold jitter (`threshold_mask_bits == 0`), which
    ///   would draw from the LFSR every tick;
    /// * the leak is a fixed point: either `leak == 0` (no draw, no change),
    ///   or leak reversal is on, the leak is deterministic, and the potential
    ///   rests exactly at 0 (this simulator's `sgn(0) = 0` convention);
    /// * the potential sits strictly below the positive threshold and at or
    ///   above the negative floor, so neither crossing can trigger.
    ///
    /// This is the per-neuron half of the core quiescence contract used by
    /// the chip's active-core scheduler: a core whose neurons all satisfy it
    /// (and whose scheduler holds no pending events) may have its tick
    /// skipped with bit-identical results.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        let c = &self.config;
        if c.threshold_mask_bits > 0 {
            return false;
        }
        let leak_fixed =
            c.leak == 0 || (c.leak_reversal && !c.stochastic_leak && self.potential == 0);
        leak_fixed
            && (self.potential as i64) < c.threshold as i64
            && (self.potential as i64) >= -(c.negative_threshold as i64)
    }

    #[inline]
    fn apply_leak(&mut self, rng: &mut Lfsr) {
        let leak = self.config.leak;
        if leak == 0 {
            return;
        }
        // Leak reversal multiplies by the sign of V (zero potential leaks
        // positively, matching the silicon's Ω = sign-extension convention
        // where sgn(0) = +1 keeps quiescent neurons biased by +λ only if
        // they sit exactly at 0; we use the mathematically cleaner sgn with
        // sgn(0) = 0 so resting neurons stay at rest).
        let direction = if self.config.leak_reversal {
            leak * self.potential.signum()
        } else {
            leak
        };
        let delta = if self.config.stochastic_leak {
            if rng.bernoulli_256(direction.unsigned_abs()) {
                direction.signum()
            } else {
                0
            }
        } else {
            direction
        };
        self.add(delta);
    }

    #[inline]
    fn add(&mut self, delta: i32) {
        self.potential = self
            .potential
            .saturating_add(delta)
            .clamp(POTENTIAL_MIN, POTENTIAL_MAX);
    }

    #[inline]
    fn add_wide(&mut self, delta: i64) {
        self.potential = (self.potential as i64 + delta)
            .clamp(POTENTIAL_MIN as i64, POTENTIAL_MAX as i64) as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeuronConfig;
    use crate::weight::Weight;

    fn rng() -> Lfsr {
        Lfsr::new(0xC0FFEE)
    }

    fn simple(threshold: u32, weight: i32) -> Neuron {
        let config = NeuronConfig::builder()
            .threshold(threshold)
            .weight(AxonType::A0, Weight::new(weight).unwrap())
            .build()
            .unwrap();
        Neuron::new(config)
    }

    #[test]
    fn integrates_deterministic_weight() {
        let mut n = simple(100, 7);
        let mut r = rng();
        n.integrate(AxonType::A0, &mut r);
        n.integrate(AxonType::A0, &mut r);
        assert_eq!(n.potential(), 14);
    }

    #[test]
    fn fires_at_threshold_and_resets_absolute() {
        let mut n = simple(10, 5);
        let mut r = rng();
        n.integrate(AxonType::A0, &mut r);
        assert!(!n.finish_tick(&mut r).fired());
        n.integrate(AxonType::A0, &mut r);
        let out = n.finish_tick(&mut r);
        assert!(out.fired());
        assert_eq!(out.potential(), 0);
    }

    #[test]
    fn linear_reset_preserves_surplus() {
        let config = NeuronConfig::builder()
            .threshold(10)
            .weight(AxonType::A0, Weight::new(13).unwrap())
            .reset_mode(ResetMode::Linear)
            .build()
            .unwrap();
        let mut n = Neuron::new(config);
        let mut r = rng();
        n.integrate(AxonType::A0, &mut r);
        let out = n.finish_tick(&mut r);
        assert!(out.fired());
        assert_eq!(out.potential(), 3);
    }

    #[test]
    fn non_reset_mode_keeps_firing() {
        let config = NeuronConfig::builder()
            .threshold(5)
            .weight(AxonType::A0, Weight::new(6).unwrap())
            .reset_mode(ResetMode::None)
            .build()
            .unwrap();
        let mut n = Neuron::new(config);
        let mut r = rng();
        n.integrate(AxonType::A0, &mut r);
        assert!(n.finish_tick(&mut r).fired());
        // No further input, potential unchanged, still above threshold.
        assert!(n.finish_tick(&mut r).fired());
        assert_eq!(n.potential(), 6);
    }

    #[test]
    fn negative_threshold_saturates() {
        let config = NeuronConfig::builder()
            .threshold(100)
            .weight(AxonType::A3, Weight::new(-50).unwrap())
            .negative_threshold(30)
            .build()
            .unwrap();
        let mut n = Neuron::new(config);
        let mut r = rng();
        n.integrate(AxonType::A3, &mut r);
        let out = n.finish_tick(&mut r);
        assert_eq!(out.potential(), -30);
    }

    #[test]
    fn negative_threshold_reset_mode() {
        let config = NeuronConfig::builder()
            .threshold(100)
            .weight(AxonType::A3, Weight::new(-50).unwrap())
            .negative_threshold(30)
            .negative_mode(NegativeThresholdMode::Reset)
            .reset_potential(7)
            .build()
            .unwrap();
        let mut n = Neuron::new(config);
        let mut r = rng();
        n.integrate(AxonType::A3, &mut r);
        assert_eq!(n.finish_tick(&mut r).potential(), -7);
    }

    #[test]
    fn leak_decays_with_reversal() {
        let config = NeuronConfig::builder()
            .threshold(1000)
            .weight(AxonType::A0, Weight::new(100).unwrap())
            .leak(-10)
            .leak_reversal(true)
            .build()
            .unwrap();
        let mut n = Neuron::new(config);
        let mut r = rng();
        n.integrate(AxonType::A0, &mut r);
        n.finish_tick(&mut r);
        assert_eq!(n.potential(), 90);
        // From below zero the reversal flips the leak sign: decay toward 0.
        n.set_potential(-40);
        n.finish_tick(&mut r);
        assert_eq!(n.potential(), -30);
        // Resting neurons stay at rest.
        n.set_potential(0);
        n.finish_tick(&mut r);
        assert_eq!(n.potential(), 0);
    }

    #[test]
    fn plain_leak_is_unconditional_drive() {
        let config = NeuronConfig::builder()
            .threshold(25)
            .leak(10)
            .build()
            .unwrap();
        let mut n = Neuron::new(config);
        let mut r = rng();
        assert!(!n.finish_tick(&mut r).fired()); // V = 10
        assert!(!n.finish_tick(&mut r).fired()); // V = 20
        assert!(n.finish_tick(&mut r).fired()); // V = 30 >= 25
    }

    #[test]
    fn stochastic_synapse_rate_tracks_probability() {
        let config = NeuronConfig::builder()
            .threshold(1)
            .weight(AxonType::A0, Weight::new(64).unwrap())
            .stochastic_synapse(AxonType::A0, true)
            .build()
            .unwrap();
        let mut n = Neuron::new(config);
        let mut r = rng();
        let trials = 20_000;
        let mut fires = 0;
        for _ in 0..trials {
            n.integrate(AxonType::A0, &mut r);
            if n.finish_tick(&mut r).fired() {
                fires += 1;
            }
            n.reset_state();
        }
        let p = fires as f64 / trials as f64;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn stochastic_threshold_fires_probabilistically_between_bounds() {
        let config = NeuronConfig::builder()
            .threshold(10)
            .threshold_mask_bits(4) // effective threshold in 10..=25
            .weight(AxonType::A0, Weight::new(18).unwrap())
            .build()
            .unwrap();
        let mut n = Neuron::new(config);
        let mut r = rng();
        let trials = 10_000;
        let mut fires = 0;
        for _ in 0..trials {
            n.integrate(AxonType::A0, &mut r); // V = 18
            if n.finish_tick(&mut r).fired() {
                fires += 1;
            }
            n.reset_state();
        }
        // Fires iff draw <= 8, i.e. 9 of 16 mask values.
        let p = fires as f64 / trials as f64;
        assert!((p - 9.0 / 16.0).abs() < 0.03, "p = {p}");
    }

    #[test]
    fn integrate_count_matches_repeated_integrate_deterministic() {
        let mut a = simple(1_000_000, 7);
        let mut b = a.clone();
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..13 {
            a.integrate(AxonType::A0, &mut r1);
        }
        b.integrate_count(AxonType::A0, 13, &mut r2);
        assert_eq!(a.potential(), b.potential());
    }

    #[test]
    fn integrate_count_consumes_one_draw_per_event_stochastic() {
        let config = NeuronConfig::builder()
            .threshold(1_000_000)
            .weight(AxonType::A0, Weight::new(128).unwrap())
            .stochastic_synapse(AxonType::A0, true)
            .build()
            .unwrap();
        let mut a = Neuron::new(config.clone());
        let mut b = Neuron::new(config);
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..20 {
            a.integrate(AxonType::A0, &mut r1);
        }
        b.integrate_count(AxonType::A0, 20, &mut r2);
        assert_eq!(a.potential(), b.potential());
        assert_eq!(r1.state(), r2.state());
    }

    #[test]
    fn integrate_count_zero_is_noop_and_consumes_no_draws() {
        let mut n = simple(10, 5);
        let mut r = rng();
        let before = r.state();
        n.integrate_count(AxonType::A0, 0, &mut r);
        assert_eq!(n.potential(), 0);
        assert_eq!(r.state(), before);
    }

    #[test]
    fn potential_saturates_at_bounds() {
        let config = NeuronConfig::builder()
            .threshold(u32::MAX)
            .weight(AxonType::A0, Weight::MAX)
            .build();
        // Threshold u32::MAX is fine (never fires in i32 range).
        let mut n = Neuron::new(config.unwrap());
        n.set_potential(POTENTIAL_MAX);
        let mut r = rng();
        n.integrate(AxonType::A0, &mut r);
        assert_eq!(n.potential(), POTENTIAL_MAX);
        n.set_potential(POTENTIAL_MIN);
        n.integrate(AxonType::A3, &mut r);
        assert_eq!(n.potential(), POTENTIAL_MIN);
    }

    #[test]
    fn quiescence_tracks_leak_threshold_and_stochastic_modes() {
        // Leak-free below threshold: quiescent.
        let n = simple(10, 5);
        assert!(n.is_quiescent());
        // At or above threshold: would fire with zero input.
        let mut hot = simple(10, 5);
        hot.set_potential(10);
        assert!(!hot.is_quiescent());
        // Nonzero plain leak drives the potential every tick.
        let leaky = Neuron::new(
            NeuronConfig::builder()
                .threshold(10)
                .leak(1)
                .build()
                .unwrap(),
        );
        assert!(!leaky.is_quiescent());
        // Leak reversal at rest is a fixed point (sgn(0) = 0 convention)...
        let mut reversal = Neuron::new(
            NeuronConfig::builder()
                .threshold(10)
                .leak(-2)
                .leak_reversal(true)
                .build()
                .unwrap(),
        );
        assert!(reversal.is_quiescent());
        // ...but not once displaced from zero.
        reversal.set_potential(3);
        assert!(!reversal.is_quiescent());
        // Stochastic threshold draws jitter from the LFSR every tick.
        let jitter = Neuron::new(
            NeuronConfig::builder()
                .threshold(10)
                .threshold_mask_bits(2)
                .build()
                .unwrap(),
        );
        assert!(!jitter.is_quiescent());
        // Stochastic leak draws from the LFSR even when the reversal
        // direction is zero, so it can never be skipped.
        let stoch_leak = Neuron::new(
            NeuronConfig::builder()
                .threshold(10)
                .leak(-2)
                .leak_reversal(true)
                .stochastic_leak(true)
                .build()
                .unwrap(),
        );
        assert!(!stoch_leak.is_quiescent());
    }

    #[test]
    fn quiescent_tick_is_a_bitwise_noop() {
        // For a quiescent neuron, finish_tick changes neither the potential
        // nor the RNG stream — the invariant the chip's skip path relies on.
        let mut n = simple(10, 5);
        n.set_potential(7);
        assert!(n.is_quiescent());
        let mut r = rng();
        let state = r.state();
        let out = n.finish_tick(&mut r);
        assert!(!out.fired());
        assert_eq!(n.potential(), 7);
        assert_eq!(r.state(), state);
    }

    #[test]
    fn with_potential_clamps() {
        let n = Neuron::with_potential(NeuronConfig::default(), i32::MAX);
        assert_eq!(n.potential(), POTENTIAL_MAX);
    }
}
