//! The deterministic neuron update as a pure function.
//!
//! A neuron whose synaptic, leak and threshold modes are all deterministic
//! never touches the per-core LFSR: its whole per-tick evaluation factors
//! into a pure function of `(parameters, potential, per-type event counts)`.
//! The core's struct-of-arrays fast path detects such neurons once at build
//! time ([`NeuronConfig::is_deterministic`]), extracts their parameters into
//! flat arrays ([`NeuronConfig::deterministic_params`]) and drives
//! [`deterministic_tick`] over them — bit-identical, step by step, to one
//! [`crate::Neuron::integrate_count`] call per axon type followed by
//! [`crate::Neuron::finish_tick`], including the saturation point after each
//! type's contribution.

use crate::config::{NegativeThresholdMode, NeuronConfig, ResetMode};
use crate::neuron::{POTENTIAL_MAX, POTENTIAL_MIN};
use crate::weight::AXON_TYPES;

/// The parameter block of a fully deterministic neuron, flattened for the
/// struct-of-arrays fast path. Produced by
/// [`NeuronConfig::deterministic_params`]; the stochastic flags are gone by
/// construction and the thresholds are pre-widened to the `i64` domain the
/// comparisons run in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicParams {
    /// Signed weight value per axon type.
    pub weights: [i32; AXON_TYPES],
    /// Signed per-tick leak.
    pub leak: i32,
    /// Whether the leak direction follows the sign of the potential.
    pub leak_reversal: bool,
    /// Positive firing threshold `α`, pre-widened.
    pub threshold: i64,
    /// The negative floor `−β`, pre-widened and pre-negated.
    pub neg_floor: i64,
    /// Behaviour at the negative floor.
    pub negative_mode: NegativeThresholdMode,
    /// Behaviour at the positive threshold.
    pub reset_mode: ResetMode,
    /// Reset potential `R`.
    pub reset_potential: i32,
}

impl NeuronConfig {
    /// True when evaluating this neuron consumes no LFSR draws on any path:
    /// no stochastic synapse on any axon type, no threshold jitter, and the
    /// leak is either zero (never applied) or deterministic.
    ///
    /// This is the per-neuron half of the core fast-path eligibility
    /// contract: a core whose neurons are all deterministic can integrate
    /// through flat arrays without touching — or desynchronising — the
    /// core's LFSR stream.
    pub fn is_deterministic(&self) -> bool {
        self.stochastic_synapse.iter().all(|&s| !s)
            && self.threshold_mask_bits == 0
            && (self.leak == 0 || !self.stochastic_leak)
    }

    /// The flattened parameter block, or `None` if any mode is stochastic
    /// (see [`NeuronConfig::is_deterministic`]).
    pub fn deterministic_params(&self) -> Option<DeterministicParams> {
        if !self.is_deterministic() {
            return None;
        }
        let mut weights = [0i32; AXON_TYPES];
        for (slot, w) in weights.iter_mut().zip(&self.weights) {
            *slot = w.value();
        }
        Some(DeterministicParams {
            weights,
            leak: self.leak,
            leak_reversal: self.leak_reversal,
            threshold: self.threshold as i64,
            neg_floor: -(self.negative_threshold as i64),
            negative_mode: self.negative_mode,
            reset_mode: self.reset_mode,
            reset_potential: self.reset_potential,
        })
    }
}

/// One full deterministic neuron tick as a pure function: integrate the
/// per-type event counts (saturating after each type's contribution,
/// exactly like one batched `integrate_count` call per type), apply the
/// leak, evaluate the thresholds, fire and reset. Returns the new membrane
/// potential and whether the neuron fired.
#[inline]
pub fn deterministic_tick(
    p: &DeterministicParams,
    potential: i32,
    counts: &[u32; AXON_TYPES],
) -> (i32, bool) {
    const LO: i64 = POTENTIAL_MIN as i64;
    const HI: i64 = POTENTIAL_MAX as i64;
    let mut v = potential as i64;
    // The scalar path saturates once per `integrate_count` call — i.e. once
    // per axon type — not once per tick; clamping after every contribution
    // (a zero count contributes zero, so the clamp is a no-op there) keeps
    // the two bit-identical near the rails.
    for (w, &c) in p.weights.iter().zip(counts) {
        v = (v + *w as i64 * c as i64).clamp(LO, HI);
    }
    if p.leak != 0 {
        let direction = if p.leak_reversal {
            p.leak as i64 * v.signum()
        } else {
            p.leak as i64
        };
        v = (v + direction).clamp(LO, HI);
    }
    let fired = v >= p.threshold;
    if fired {
        match p.reset_mode {
            ResetMode::Absolute => v = p.reset_potential as i64,
            ResetMode::Linear => v = (v - p.threshold).clamp(LO, HI),
            ResetMode::None => {}
        }
    }
    if v < p.neg_floor {
        v = match p.negative_mode {
            NegativeThresholdMode::Saturate => p.neg_floor,
            NegativeThresholdMode::Reset => -(p.reset_potential as i64),
        };
    }
    (v as i32, fired)
}

impl DeterministicParams {
    /// Whether this parameter block is safe for the narrow-arithmetic
    /// uniform scan ([`deterministic_scan_uniform`]).
    ///
    /// Two invariants make the i32 rewrite exact: every intermediate must
    /// fit `i32` (bounded leak; per-type event counts are bounded by the
    /// core's axon count ≤ 256 rows), and every *stored* potential must
    /// stay within the hardware rails so the scan's saturated threshold
    /// comparisons remain exact — reset assignments are the one unclamped
    /// write, so their magnitude must not exceed [`POTENTIAL_MAX`]. Any
    /// practically configurable neuron passes; the per-neuron `i64` path
    /// remains as the fallback.
    pub fn scan_safe(&self) -> bool {
        const LEAK_BOUND: i64 = 1 << 21;
        (self.leak as i64).abs() <= LEAK_BOUND
            && (self.reset_potential as i64).abs() <= POTENTIAL_MAX as i64
    }
}

/// Flag bit set in a [`deterministic_scan_uniform`] output byte when the
/// neuron fired this tick.
pub const SCAN_FIRED: u8 = 1;
/// Flag bit set in a [`deterministic_scan_uniform`] output byte when the
/// neuron is *not* at its zero-input fixed point after the update (the
/// negation of [`deterministic_quiescent`]).
pub const SCAN_UNSETTLED: u8 = 2;

/// One deterministic tick over a whole population sharing a single
/// parameter block — the hot loop of a uniform core's fast path.
///
/// `counts` is type-major planar: plane `ty` is `counts[ty*n..(ty+1)*n]`
/// where `n = potentials.len()`. The `u16` lanes are exact — a count is
/// bounded by the core's axon count (≤ 256) — and half-width count traffic
/// matters: the scan is memory-bound once vectorised. Each output byte of
/// `flags` carries [`SCAN_FIRED`] and [`SCAN_UNSETTLED`].
///
/// Bit-identical to calling [`deterministic_tick`] per neuron: the loop
/// body is the same update rewritten branch-free over `i32` (legal because
/// [`DeterministicParams::scan_safe`] bounds every intermediate), which
/// lets the compiler vectorise the scan — per-type saturation becomes
/// lane-wise min/max, the reset and floor rules become lane selects.
///
/// # Panics
///
/// Panics if the slice lengths disagree, if `counts` is not `4 * n` long,
/// or (debug only) if the parameters fail
/// [`DeterministicParams::scan_safe`].
pub fn deterministic_scan_uniform(
    p: &DeterministicParams,
    potentials: &mut [i32],
    counts: &[u16],
    flags: &mut [u8],
) {
    let n = potentials.len();
    assert_eq!(counts.len(), AXON_TYPES * n, "counts must be 4 planar rows");
    assert_eq!(flags.len(), n, "one flag byte per neuron");
    debug_assert!(p.scan_safe(), "parameters out of scan range");
    let consts = ScanConsts::new(p);
    let (c0, rest) = counts.split_at(n);
    let (c1, rest) = rest.split_at(n);
    let (c2, c3) = rest.split_at(n);
    consts.scan(potentials, c0, c1, c2, c3, flags);
}

/// The loop-invariant constants of the uniform scan, hoisted once per
/// call: saturated i32 thresholds and the branch-free lane-selector masks.
/// Shared verbatim by the solo scan and the batched lane sweep so the two
/// are the same update, not two implementations that happen to agree.
struct ScanConsts {
    w0: i32,
    w1: i32,
    w2: i32,
    w3: i32,
    th: i32,
    floor: i32,
    leak: i32,
    leak_zero: bool,
    reversal: bool,
    abs_mask: i32,
    lin_mask: i32,
    none_mask: i32,
    reversal_mask: i32,
    under_value: i32,
    reset: i32,
}

impl ScanConsts {
    fn new(p: &DeterministicParams) -> ScanConsts {
        const LO: i32 = POTENTIAL_MIN;
        const HI: i32 = POTENTIAL_MAX;
        let [w0, w1, w2, w3] = p.weights;
        // Saturating the widened thresholds back into the i32 domain
        // preserves every comparison: a threshold above `HI` can never be
        // crossed (v ≤ HI < HI+1), and a floor at or below `LO − 1` can
        // never be undershot.
        let th = p.threshold.min(HI as i64 + 1) as i32;
        let floor = p.neg_floor.max(LO as i64 - 1) as i32;
        let leak = p.leak;
        let reversal = p.leak_reversal;
        let mode_abs = p.reset_mode == ResetMode::Absolute;
        let mode_lin = p.reset_mode == ResetMode::Linear;
        let neg_sat = p.negative_mode == NegativeThresholdMode::Saturate;
        let reset = p.reset_potential;
        // The scalar path computes `-(reset as i64)` and truncates to i32;
        // wrapping negation reproduces that truncation at the i32::MIN edge.
        let neg_reset = reset.wrapping_neg();
        // Loop-invariant lane selectors, hoisted as all-ones/all-zero masks
        // so the loop body is pure straight-line lane arithmetic.
        let abs_mask = -(i32::from(mode_abs));
        let lin_mask = -(i32::from(mode_lin));
        ScanConsts {
            w0,
            w1,
            w2,
            w3,
            th,
            floor,
            leak,
            leak_zero: leak == 0,
            reversal,
            abs_mask,
            lin_mask,
            none_mask: !(abs_mask | lin_mask),
            reversal_mask: -(i32::from(reversal)),
            under_value: if neg_sat { floor } else { neg_reset },
            reset,
        }
    }

    /// The vectorisable inner loop over one contiguous run of neurons.
    /// Pure per-neuron arithmetic: scanning a population in any slicing
    /// (whole, or 64-neuron blocks interleaved across lanes) produces
    /// bit-identical results.
    #[inline]
    fn scan(
        &self,
        potentials: &mut [i32],
        c0: &[u16],
        c1: &[u16],
        c2: &[u16],
        c3: &[u16],
        flags: &mut [u8],
    ) {
        const LO: i32 = POTENTIAL_MIN;
        const HI: i32 = POTENTIAL_MAX;
        let lanes = potentials
            .iter_mut()
            .zip(c0)
            .zip(c1)
            .zip(c2)
            .zip(c3)
            .zip(flags.iter_mut());
        for (((((slot, &ca), &cb), &cc), &cd), flag) in lanes {
            let mut v = *slot;
            // Same contribution order and per-type saturation points as the
            // scalar `integrate_count` sequence, in lane-friendly i32.
            v = (v + self.w0 * i32::from(ca)).clamp(LO, HI);
            v = (v + self.w1 * i32::from(cb)).clamp(LO, HI);
            v = (v + self.w2 * i32::from(cc)).clamp(LO, HI);
            v = (v + self.w3 * i32::from(cd)).clamp(LO, HI);
            // A zero leak contributes zero and the clamp is a no-op (v is
            // already in range), so applying it unconditionally is identical
            // to the scalar `if leak != 0` guard. Under reversal the leak is
            // steered by sign(v); the mask select keeps both shapes
            // branchless.
            let s = (v.signum() & self.reversal_mask) | (1 & !self.reversal_mask);
            v = (v + self.leak * s).clamp(LO, HI);
            let fired = v >= self.th;
            // When fired, th equals the exact threshold (≤ v ≤ HI), so the
            // linear reset is exact; when not fired the value is discarded.
            let lin = (v - self.th).clamp(LO, HI);
            let v_fire =
                (self.abs_mask & self.reset) | (self.lin_mask & lin) | (self.none_mask & v);
            v = if fired { v_fire } else { v };
            v = if v < self.floor { self.under_value } else { v };
            *slot = v;
            let leak_fixed = self.leak_zero | (self.reversal & (v == 0));
            let quiescent = leak_fixed & (v < self.th) & (v >= self.floor);
            *flag = u8::from(fired) | (u8::from(!quiescent) << 1);
        }
    }
}

/// One replica lane's state views for the batched uniform scan
/// ([`deterministic_scan_uniform_lanes`]): the lane's membrane potentials,
/// its type-major planar counts (`4 × n`), and its output flag bytes.
#[derive(Debug)]
pub struct LaneScan<'a> {
    /// The lane's membrane potentials, updated in place.
    pub potentials: &'a mut [i32],
    /// The lane's planar per-type event counts (`counts[ty*n..(ty+1)*n]`).
    pub counts: &'a [u16],
    /// One [`SCAN_FIRED`]/[`SCAN_UNSETTLED`] flag byte per neuron, written.
    pub flags: &'a mut [u8],
}

/// The batched-lane uniform scan: one deterministic tick over `lanes`
/// replica populations that share a single parameter block, sweeping every
/// lane's copy of a 64-neuron block before moving to the next block — the
/// chip-major traversal that keeps the batch's working set of one block
/// resident across lanes.
///
/// Bit-identical per lane to [`deterministic_scan_uniform`] on that lane
/// alone: the inner loop is the same `ScanConsts::scan` body, and the
/// update is pure per neuron, so block order cannot change any result.
///
/// # Panics
///
/// Panics if the lanes disagree on population size, a lane's slice lengths
/// disagree, or (debug only) if the parameters fail
/// [`DeterministicParams::scan_safe`].
pub fn deterministic_scan_uniform_lanes(p: &DeterministicParams, lanes: &mut [LaneScan<'_>]) {
    let Some(first) = lanes.first() else {
        return;
    };
    let n = first.potentials.len();
    for lane in lanes.iter() {
        assert_eq!(lane.potentials.len(), n, "lanes must agree on population");
        assert_eq!(
            lane.counts.len(),
            AXON_TYPES * n,
            "counts must be 4 planar rows"
        );
        assert_eq!(lane.flags.len(), n, "one flag byte per neuron");
    }
    debug_assert!(p.scan_safe(), "parameters out of scan range");
    let consts = ScanConsts::new(p);
    let mut start = 0;
    while start < n {
        let end = (start + 64).min(n);
        for lane in lanes.iter_mut() {
            let (c0, rest) = lane.counts.split_at(n);
            let (c1, rest) = rest.split_at(n);
            let (c2, c3) = rest.split_at(n);
            consts.scan(
                &mut lane.potentials[start..end],
                &c0[start..end],
                &c1[start..end],
                &c2[start..end],
                &c3[start..end],
                &mut lane.flags[start..end],
            );
        }
        start = end;
    }
}

/// The zero-input fixed-point test for a deterministic neuron, matching
/// [`crate::Neuron::is_quiescent`] for every config that passes
/// [`NeuronConfig::is_deterministic`]: the leak must be a fixed point
/// (zero, or reversal-directed at a resting potential) and the potential
/// must sit strictly below the positive threshold and at or above the
/// negative floor.
#[inline]
pub fn deterministic_quiescent(p: &DeterministicParams, potential: i32) -> bool {
    let leak_fixed = p.leak == 0 || (p.leak_reversal && potential == 0);
    leak_fixed && (potential as i64) < p.threshold && (potential as i64) >= p.neg_floor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;
    use crate::neuron::Neuron;
    use crate::weight::{AxonType, Weight};

    fn config(leak: i32, reversal: bool, reset: ResetMode) -> NeuronConfig {
        NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(7))
            .weight(AxonType::A1, Weight::saturating(2))
            .weight(AxonType::A2, Weight::saturating(-3))
            .weight(AxonType::A3, Weight::saturating(-11))
            .threshold(23)
            .leak(leak)
            .leak_reversal(reversal)
            .reset_mode(reset)
            .negative_threshold(40)
            .build()
            .unwrap()
    }

    #[test]
    fn classification_rejects_every_stochastic_mode() {
        assert!(NeuronConfig::default().is_deterministic());
        let stoch_syn = NeuronConfig::builder()
            .stochastic_synapse(AxonType::A2, true)
            .build()
            .unwrap();
        assert!(!stoch_syn.is_deterministic());
        assert!(stoch_syn.deterministic_params().is_none());
        let jitter = NeuronConfig::builder()
            .threshold(4)
            .threshold_mask_bits(1)
            .build()
            .unwrap();
        assert!(!jitter.is_deterministic());
        let stoch_leak = NeuronConfig::builder()
            .leak(-1)
            .stochastic_leak(true)
            .build()
            .unwrap();
        assert!(!stoch_leak.is_deterministic());
        // A stochastic-leak flag with zero leak never draws: deterministic.
        let zero_leak = NeuronConfig::builder()
            .leak(0)
            .stochastic_leak(true)
            .build()
            .unwrap();
        assert!(zero_leak.is_deterministic());
    }

    /// The pure function against the scalar `Neuron` over a dense grid of
    /// potentials and count patterns, for every reset mode and leak shape.
    #[test]
    fn pure_tick_matches_scalar_neuron_exactly() {
        let configs = [
            config(0, false, ResetMode::Absolute),
            config(-2, true, ResetMode::Linear),
            config(3, false, ResetMode::None),
            config(-1, true, ResetMode::Absolute),
        ];
        let count_patterns: [[u32; AXON_TYPES]; 6] = [
            [0, 0, 0, 0],
            [1, 0, 0, 0],
            [3, 1, 2, 1],
            [0, 0, 0, 9],
            [64, 64, 64, 64],
            [200_000, 0, 0, 200_000],
        ];
        for cfg in &configs {
            let p = cfg.deterministic_params().expect("deterministic config");
            for v0 in [
                POTENTIAL_MIN,
                POTENTIAL_MIN + 1,
                -41,
                -40,
                -1,
                0,
                1,
                22,
                23,
                24,
                POTENTIAL_MAX - 1,
                POTENTIAL_MAX,
            ] {
                for counts in &count_patterns {
                    let mut scalar = Neuron::new(cfg.clone());
                    scalar.set_potential(v0);
                    let mut rng = Lfsr::new(0xFEED);
                    let state_before = rng.state();
                    for ty in AxonType::ALL {
                        scalar.integrate_count(ty, counts[ty.index()], &mut rng);
                    }
                    let outcome = scalar.finish_tick(&mut rng);
                    assert_eq!(
                        rng.state(),
                        state_before,
                        "deterministic path must not draw"
                    );
                    let (v, fired) = deterministic_tick(&p, v0, counts);
                    assert_eq!(
                        (v, fired),
                        (outcome.potential(), outcome.fired()),
                        "cfg {cfg:?} v0 {v0} counts {counts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pure_quiescence_matches_scalar_neuron() {
        for cfg in [
            config(0, false, ResetMode::Absolute),
            config(-2, true, ResetMode::Linear),
            config(3, false, ResetMode::None),
        ] {
            let p = cfg.deterministic_params().expect("deterministic config");
            for v in [-41, -40, -3, 0, 2, 22, 23, 50] {
                let mut scalar = Neuron::new(cfg.clone());
                scalar.set_potential(v);
                assert_eq!(
                    deterministic_quiescent(&p, v),
                    scalar.is_quiescent(),
                    "cfg {cfg:?} v {v}"
                );
            }
        }
    }

    /// The uniform scan against per-neuron [`deterministic_tick`] over a
    /// pseudo-random sweep of scan-safe parameter blocks, potentials, and
    /// planar count patterns — potentials, fired flags, and quiescence
    /// flags must all agree bit-for-bit.
    #[test]
    fn uniform_scan_matches_per_neuron_tick() {
        let mut rng = Lfsr::new(0xABCD);
        for round in 0..200 {
            let reset_modes = [ResetMode::Absolute, ResetMode::Linear, ResetMode::None];
            let neg_modes = [
                NegativeThresholdMode::Saturate,
                NegativeThresholdMode::Reset,
            ];
            let threshold = 1 + rng.next_u32() % 2_000_000;
            let neg_threshold = rng.next_u32() % 2_000_000;
            let reset = (rng.next_u32() % threshold.min(POTENTIAL_MAX as u32 + 1)) as i32
                * if rng.next_u32().is_multiple_of(2) {
                    1
                } else {
                    -1
                };
            let cfg = NeuronConfig::builder()
                .weight(
                    AxonType::A0,
                    Weight::saturating(rng.next_u32() as i32 % 256),
                )
                .weight(
                    AxonType::A1,
                    Weight::saturating(-(rng.next_u32() as i32 % 256)),
                )
                .weight(
                    AxonType::A2,
                    Weight::saturating(rng.next_u32() as i32 % 256),
                )
                .weight(
                    AxonType::A3,
                    Weight::saturating(-(rng.next_u32() as i32 % 256)),
                )
                .threshold(threshold)
                .leak(rng.next_u32() as i32 % 1000 - 500)
                .leak_reversal(rng.next_u32().is_multiple_of(2))
                .reset_mode(reset_modes[rng.next_u32() as usize % 3])
                .negative_mode(neg_modes[rng.next_u32() as usize % 2])
                .negative_threshold(neg_threshold)
                .reset_potential(reset)
                .build()
                .unwrap();
            let p = cfg.deterministic_params().expect("deterministic");
            assert!(p.scan_safe(), "round {round}: config should be scan-safe");
            let n = 1 + rng.next_u32() as usize % 97;
            let mut potentials: Vec<i32> = (0..n)
                .map(|_| {
                    let span = (POTENTIAL_MAX as i64 - POTENTIAL_MIN as i64 + 1) as u32;
                    POTENTIAL_MIN + (rng.next_u32() % span) as i32
                })
                .collect();
            let counts: Vec<u16> = (0..AXON_TYPES * n)
                .map(|_| (rng.next_u32() % 300) as u16)
                .collect();
            let mut flags = vec![0u8; n];
            let mut expected = potentials.clone();
            let mut expected_flags = vec![0u8; n];
            for i in 0..n {
                let c = [
                    u32::from(counts[i]),
                    u32::from(counts[n + i]),
                    u32::from(counts[2 * n + i]),
                    u32::from(counts[3 * n + i]),
                ];
                let (v, fired) = deterministic_tick(&p, expected[i], &c);
                expected[i] = v;
                expected_flags[i] = (u8::from(fired) * SCAN_FIRED)
                    | (u8::from(!deterministic_quiescent(&p, v)) * SCAN_UNSETTLED);
            }
            deterministic_scan_uniform(&p, &mut potentials, &counts, &mut flags);
            assert_eq!(potentials, expected, "round {round} potentials");
            assert_eq!(flags, expected_flags, "round {round} flags");
        }
    }

    /// The batched lane sweep against the solo scan, lane by lane: with
    /// random scan-safe parameters and per-lane random state, every lane's
    /// potentials and flags must match an independent solo scan exactly —
    /// across ragged population sizes that exercise partial 64-blocks.
    #[test]
    fn lane_sweep_matches_solo_scan_per_lane() {
        let mut rng = Lfsr::new(0xBEEF);
        for round in 0..50 {
            let cfg = NeuronConfig::builder()
                .weight(
                    AxonType::A0,
                    Weight::saturating(rng.next_u32() as i32 % 256),
                )
                .weight(
                    AxonType::A1,
                    Weight::saturating(-(rng.next_u32() as i32 % 256)),
                )
                .threshold(1 + rng.next_u32() % 10_000)
                .leak(rng.next_u32() as i32 % 9 - 4)
                .leak_reversal(rng.next_u32().is_multiple_of(2))
                .reset_mode(
                    [ResetMode::Absolute, ResetMode::Linear, ResetMode::None]
                        [rng.next_u32() as usize % 3],
                )
                .negative_threshold(rng.next_u32() % 10_000)
                .build()
                .unwrap();
            let p = cfg.deterministic_params().expect("deterministic");
            let lanes_n = [1usize, 2, 3, 8][round % 4];
            let n = 1 + rng.next_u32() as usize % 193;
            let span = (POTENTIAL_MAX as i64 - POTENTIAL_MIN as i64 + 1) as u32;
            let mut potentials: Vec<Vec<i32>> = (0..lanes_n)
                .map(|_| {
                    (0..n)
                        .map(|_| POTENTIAL_MIN + (rng.next_u32() % span) as i32)
                        .collect()
                })
                .collect();
            let counts: Vec<Vec<u16>> = (0..lanes_n)
                .map(|_| {
                    (0..AXON_TYPES * n)
                        .map(|_| (rng.next_u32() % 300) as u16)
                        .collect()
                })
                .collect();
            let mut flags: Vec<Vec<u8>> = vec![vec![0u8; n]; lanes_n];
            let mut expected_potentials = potentials.clone();
            let mut expected_flags = flags.clone();
            for lane in 0..lanes_n {
                deterministic_scan_uniform(
                    &p,
                    &mut expected_potentials[lane],
                    &counts[lane],
                    &mut expected_flags[lane],
                );
            }
            let mut views: Vec<LaneScan<'_>> = potentials
                .iter_mut()
                .zip(&counts)
                .zip(flags.iter_mut())
                .map(|((potentials, counts), flags)| LaneScan {
                    potentials,
                    counts,
                    flags,
                })
                .collect();
            deterministic_scan_uniform_lanes(&p, &mut views);
            assert_eq!(potentials, expected_potentials, "round {round} potentials");
            assert_eq!(flags, expected_flags, "round {round} flags");
        }
    }

    #[test]
    fn scan_safety_gate_rejects_extreme_params() {
        let ok = config(-2, true, ResetMode::Linear)
            .deterministic_params()
            .unwrap();
        assert!(ok.scan_safe());
        let mut big_leak = ok;
        big_leak.leak = 1 << 22;
        assert!(!big_leak.scan_safe());
        let mut big_reset = ok;
        big_reset.reset_potential = POTENTIAL_MAX + 1;
        assert!(!big_reset.scan_safe());
    }

    #[test]
    fn negative_floor_modes_match() {
        let saturate = config(0, false, ResetMode::Absolute);
        let reset = NeuronConfig::builder()
            .weight(AxonType::A3, Weight::saturating(-50))
            .threshold(100)
            .negative_threshold(30)
            .negative_mode(NegativeThresholdMode::Reset)
            .reset_potential(7)
            .build()
            .unwrap();
        for cfg in [saturate, reset] {
            let p = cfg.deterministic_params().expect("deterministic config");
            let counts = [0, 0, 0, 2];
            let mut scalar = Neuron::new(cfg.clone());
            let mut rng = Lfsr::new(1);
            for ty in AxonType::ALL {
                scalar.integrate_count(ty, counts[ty.index()], &mut rng);
            }
            let outcome = scalar.finish_tick(&mut rng);
            let (v, fired) = deterministic_tick(&p, 0, &counts);
            assert_eq!((v, fired), (outcome.potential(), outcome.fired()));
        }
    }
}
