//! The deterministic pseudo-random source used by the stochastic neuron modes.

use serde::{Deserialize, Serialize};

/// A 32-bit Galois linear-feedback shift register.
///
/// Neurosynaptic cores use a hardware LFSR per core rather than a software
/// RNG: every stochastic draw must be cheap, reproducible, and identical
/// between the simulator and the silicon. The taps implement the maximal
/// polynomial `x^32 + x^22 + x^2 + x + 1`, giving a period of `2^32 - 1`.
///
/// # Example
///
/// ```
/// use brainsim_neuron::Lfsr;
///
/// let mut a = Lfsr::new(42);
/// let mut b = Lfsr::new(42);
/// assert_eq!(a.next_u8(), b.next_u8()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lfsr {
    state: u32,
}

/// Taps for the maximal-length polynomial `x^32 + x^22 + x^2 + x + 1`.
const TAPS: u32 = 0x8020_0003;

/// One Galois step as a const fn, shared by [`Lfsr::next_u32`]'s runtime
/// path and the compile-time jump tables below.
const fn step(s: u32) -> u32 {
    let lsb = s & 1;
    (s >> 1) ^ (TAPS & lsb.wrapping_neg())
}

/// `JUMP_STATE[lo]` is `S^8(lo)` where `S` is one Galois step: the state an
/// LFSR seeded with just the low byte `lo` reaches after eight steps.
///
/// The Galois step is linear over GF(2), so for any state `s`,
/// `S^8(s) = S^8(s & 0xFF) ^ S^8(s & !0xFF)`. A state with zero low byte
/// never fires the feedback in its first eight steps (each step's LSB is one
/// of the original bits 0..=7, all zero), so `S^8(s & !0xFF) = s >> 8` and
/// the full 8-step jump collapses to `(s >> 8) ^ JUMP_STATE[s & 0xFF]` —
/// one table load per eight draws instead of eight dependent shift/xor pairs.
const JUMP_STATE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut lo = 0usize;
    while lo < 256 {
        let mut s = lo as u32;
        let mut i = 0;
        while i < 8 {
            s = step(s);
            i += 1;
        }
        table[lo] = s;
        lo += 1;
    }
    table
};

/// `JUMP_DRAWS[lo]` packs the eight intermediate draw bytes produced while
/// jumping a state equal to just the low byte `lo`: byte `i-1` holds
/// `S^i(lo) & 0xFF` for `i = 1..=8`. XORed with [`JUMP_HI`] this yields the
/// exact `next_u8` stream of the scalar path, again by GF(2) linearity.
const JUMP_DRAWS: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut lo = 0usize;
    while lo < 256 {
        let mut s = lo as u32;
        let mut packed = 0u64;
        let mut i = 0;
        while i < 8 {
            s = step(s);
            packed |= ((s & 0xFF) as u64) << (8 * i);
            i += 1;
        }
        table[lo] = packed;
        lo += 1;
    }
    table
};

/// `JUMP_HI[b1]` packs the high-part contribution to the eight draw bytes.
///
/// For a state with zero low byte, step `i` just shifts: its low draw byte
/// is bits `i..i+7` of the original state. Bits `i..=7` are zero, so only
/// byte 1 of the state (bits 8..=15) ever reaches the draw window within
/// eight steps; draw `i`'s byte is `(b1 << (8 - i)) & 0xFF`.
const JUMP_HI: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut b1 = 0usize;
    while b1 < 256 {
        let mut packed = 0u64;
        let mut i = 1;
        while i <= 8 {
            let byte = ((b1 as u32) << (8 - i)) & 0xFF;
            packed |= (byte as u64) << (8 * (i - 1));
            i += 1;
        }
        table[b1] = packed;
        b1 += 1;
    }
    table
};

/// Compares each byte of `draws` against `numerator`, returning a bitmask
/// with bit `i` set iff byte `i` is strictly less (the Bernoulli hit
/// condition). Branch-free SWAR: split into even/odd byte lanes so each
/// 16-bit lane has headroom for the add, steal the carry out of bit 8 as a
/// ≥ indicator, then gather the per-byte indicator bits with a multiply.
#[inline]
fn byte_lt_mask(draws: u64, numerator: u32) -> u64 {
    if numerator >= 256 {
        return 0xFF;
    }
    const LO: u64 = 0x00FF_00FF_00FF_00FF;
    const IND: u64 = 0x0080_0080_0080_0080;
    let k = (0x100 - numerator as u64) * 0x0001_0001_0001_0001;
    let even = draws & LO;
    let odd = (draws >> 8) & LO;
    let ge_even = (((even + k) >> 1) & IND) | ((((odd + k) >> 1) & IND) << 8);
    let ge8 = ge_even.wrapping_mul(0x0002_0408_1020_4081) >> 56;
    !ge8 & 0xFF
}

impl Lfsr {
    /// Creates an LFSR from a seed.
    ///
    /// A zero seed is remapped to a fixed non-zero constant: the all-zero
    /// state is the one fixed point of an LFSR and would never advance.
    #[inline]
    pub const fn new(seed: u32) -> Lfsr {
        let state = if seed == 0 { 0xDEAD_BEEF } else { seed };
        Lfsr { state }
    }

    /// Advances one step and returns the full 32-bit state.
    ///
    /// Branchless: the feedback bit is 50/50, so a conditional XOR would
    /// mispredict every other draw — measurable in injection-heavy
    /// workloads that draw thousands of Bernoulli samples per tick.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let lsb = self.state & 1;
        self.state = (self.state >> 1) ^ (TAPS & lsb.wrapping_neg());
        self.state
    }

    /// Draws 8 pseudo-random bits.
    ///
    /// This is the draw width used by stochastic synapse and leak modes,
    /// which compare against a weight magnitude in `0..=256`.
    #[inline]
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u32() & 0xFF) as u8
    }

    /// Draws a value masked to the low `bits` bits (`bits <= 32`).
    ///
    /// Used by the stochastic-threshold mode, where the mask width sets the
    /// amount of threshold jitter.
    #[inline]
    pub fn next_masked(&mut self, bits: u32) -> u32 {
        debug_assert!(bits <= 32);
        if bits == 0 {
            return 0;
        }
        let mask = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        self.next_u32() & mask
    }

    /// A Bernoulli draw: `true` with probability `numerator / 256`.
    ///
    /// `numerator` values of 256 or more always return `true`.
    #[inline]
    pub fn bernoulli_256(&mut self, numerator: u32) -> bool {
        (self.next_u8() as u32) < numerator
    }

    /// `lanes` Bernoulli draws batched into a bitmask, bit `i` = draw `i`.
    ///
    /// Consumes exactly `lanes` draws from the stream and produces exactly
    /// the mask a `bernoulli_256` loop would build in ascending bit order —
    /// verified bit-for-bit in tests. Internally it jumps the LFSR eight
    /// steps at a time via the precomputed GF(2) tables and compares all
    /// eight draw bytes with one SWAR pass, turning the scalar path's eight
    /// dependent shift/xor chains into one table load per byte of mask.
    /// Injection-heavy benches draw one sample per axon per tick, so this
    /// is the difference between the drive loop costing ~2 ns/draw and
    /// disappearing into the noise.
    #[inline]
    pub fn bernoulli_mask(&mut self, numerator: u32, lanes: usize) -> u64 {
        debug_assert!(lanes <= 64);
        let mut mask = 0u64;
        let mut lane = 0;
        while lane + 8 <= lanes {
            let lo = (self.state & 0xFF) as usize;
            let b1 = ((self.state >> 8) & 0xFF) as usize;
            let draws = JUMP_DRAWS[lo] ^ JUMP_HI[b1];
            self.state = (self.state >> 8) ^ JUMP_STATE[lo];
            mask |= byte_lt_mask(draws, numerator) << lane;
            lane += 8;
        }
        while lane < lanes {
            mask |= u64::from(self.bernoulli_256(numerator)) << lane;
            lane += 1;
        }
        mask
    }

    /// The current internal state (for snapshotting).
    #[inline]
    pub const fn state(&self) -> u32 {
        self.state
    }
}

impl Default for Lfsr {
    fn default() -> Self {
        Lfsr::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = Lfsr::new(0);
        // Must advance rather than sticking at zero.
        let first = z.next_u32();
        assert_ne!(first, (0xDEAD_BEEF >> 1)); // advanced
        assert_ne!(z.state(), 0);
    }

    #[test]
    fn deterministic_stream() {
        let mut a = Lfsr::new(7);
        let mut b = Lfsr::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lfsr::new(7);
        let mut b = Lfsr::new(8);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5, "streams should differ almost everywhere");
    }

    #[test]
    fn never_reaches_zero_state() {
        let mut rng = Lfsr::new(123);
        for _ in 0..100_000 {
            assert_ne!(rng.next_u32(), 0);
        }
    }

    #[test]
    fn u8_draws_cover_range_roughly_uniformly() {
        let mut rng = Lfsr::new(99);
        let mut histogram = [0u32; 256];
        let draws = 256 * 400;
        for _ in 0..draws {
            histogram[rng.next_u8() as usize] += 1;
        }
        let expected = draws as f64 / 256.0;
        for (value, &count) in histogram.iter().enumerate() {
            let ratio = count as f64 / expected;
            assert!(
                (0.5..2.0).contains(&ratio),
                "value {value} count {count} far from expected {expected}"
            );
        }
    }

    #[test]
    fn bernoulli_probability_matches_numerator() {
        let mut rng = Lfsr::new(5);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.bernoulli_256(64)).count();
        let p = hits as f64 / trials as f64;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Lfsr::new(5);
        assert!(!(0..1000).any(|_| rng.bernoulli_256(0)));
        assert!((0..1000).all(|_| rng.bernoulli_256(256)));
    }

    #[test]
    fn bernoulli_mask_matches_scalar_loop() {
        // The batched path must be indistinguishable from the scalar loop:
        // same mask bits AND same post-call LFSR state, for every lane
        // count (full words, 8-multiples, ragged tails) and rate extremes.
        let mut seed_rng = Lfsr::new(0xC0FF_EE01);
        for _ in 0..200 {
            let seed = seed_rng.next_u32();
            for &rate in &[0u32, 1, 7, 64, 128, 255, 256, 300] {
                for &lanes in &[0usize, 1, 7, 8, 9, 16, 37, 63, 64] {
                    let mut fast = Lfsr::new(seed);
                    let mut slow = Lfsr::new(seed);
                    let got = fast.bernoulli_mask(rate, lanes);
                    let mut want = 0u64;
                    for b in 0..lanes {
                        want |= u64::from(slow.bernoulli_256(rate)) << b;
                    }
                    assert_eq!(got, want, "seed {seed:#x} rate {rate} lanes {lanes}");
                    assert_eq!(
                        fast.state(),
                        slow.state(),
                        "state diverged: seed {seed:#x} rate {rate} lanes {lanes}"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_draw_respects_mask() {
        let mut rng = Lfsr::new(17);
        for _ in 0..1000 {
            assert!(rng.next_masked(4) < 16);
        }
        assert_eq!(rng.next_masked(0), 0);
    }
}
